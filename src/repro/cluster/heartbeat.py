"""Heartbeat-based AP failure detection with explicit simulated time.

Every AP in a cluster beats on a fixed interval over the backhaul /
side-channel; the detector declares an AP dead after
``miss_threshold`` consecutive intervals with no beat.  Detection is
therefore *not* instant — a crashed AP strands its nodes for up to
``detection_latency_s`` before failover can begin, which is exactly
the window the chaos-failover experiment measures.

Time is always passed in by the caller (the simulation clock), so the
detector is deterministic and can never hang a test waiting on a wall
clock.
"""

from __future__ import annotations

__all__ = [
    "HeartbeatMonitor",
    "NODE_ACTIVE",
    "NODE_DORMANT",
    "NODE_LIVENESS",
    "NODE_SILENT",
    "NodeLivenessTracker",
]

NODE_ACTIVE = "active"
"""The AP has decoded an uplink from this node within the threshold."""

NODE_DORMANT = "dormant"
"""The node declared energy-gated sleep (duty-cycle recharge): silence
is *expected* and must not feed AP-outage suspicion."""

NODE_SILENT = "silent"
"""The node has been quiet past the threshold with no declared reason —
the only liveness code that counts as evidence of trouble."""

NODE_LIVENESS = (NODE_ACTIVE, NODE_DORMANT, NODE_SILENT)
"""Every reason code :meth:`NodeLivenessTracker.classify` can return."""


class HeartbeatMonitor:
    """Tracks last-heard times and declares silence after a threshold."""

    def __init__(self, interval_s: float = 0.5, miss_threshold: int = 3):
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("need at least one missed beat to declare death")
        self.interval_s = interval_s
        self.miss_threshold = miss_threshold
        self._last_beat_s: dict[int, float] = {}
        self._declared_dead: set[int] = set()

    @property
    def detection_latency_s(self) -> float:
        """Worst-case time from crash to a death declaration."""
        return self.interval_s * self.miss_threshold

    def watch(self, ap_id: int, now_s: float) -> None:
        """Start tracking an AP (counts as an immediate beat)."""
        self.beat(ap_id, now_s)

    def beat(self, ap_id: int, now_s: float) -> None:
        """Record one heartbeat; a beating AP is never dead."""
        previous = self._last_beat_s.get(ap_id)
        if previous is not None and now_s < previous:
            raise ValueError("heartbeats must arrive in time order")
        self._last_beat_s[ap_id] = float(now_s)
        self._declared_dead.discard(ap_id)

    def is_alive(self, ap_id: int, now_s: float) -> bool:
        """Whether an AP's silence is still within the threshold."""
        last = self._last_beat_s.get(ap_id)
        if last is None:
            raise KeyError(f"AP {ap_id} is not being watched")
        return now_s - last < self.detection_latency_s

    def newly_dead(self, now_s: float) -> list[int]:
        """APs whose silence just crossed the threshold (each reported
        once, until a fresh beat revives them)."""
        dead = []
        for ap_id in sorted(self._last_beat_s):
            if ap_id in self._declared_dead:
                continue
            if not self.is_alive(ap_id, now_s):
                self._declared_dead.add(ap_id)
                dead.append(ap_id)
        return dead

    def watched(self) -> list[int]:
        """Every AP currently being tracked (sorted)."""
        return sorted(self._last_beat_s)


class NodeLivenessTracker:
    """Classifies per-node silence with an explicit *reason code*.

    The AP heartbeat above answers "is the AP up?"; this tracker
    answers the subtler question "why is this *node* quiet?".  A
    feedback-free mmX node never acknowledges anything, so the only
    uplink signal is decoded frames — and a duty-cycled harvesting node
    legitimately stops producing them for whole recharge windows.
    Without a reason code, a fleet going to sleep at once is
    indistinguishable from an AP-side outage and triggers a failover
    stampede onto APs that were never broken.

    The contract:

    * :meth:`heard` — an uplink decoded now; the node is
      :data:`NODE_ACTIVE` and any dormancy declaration is cleared
      (a transmitting node is by definition awake).
    * :meth:`mark_dormant` — the energy layer (duty-cycle scheduler /
      link supervisor ``dormant-hold``) declares the node asleep;
      silence is expected until the next :meth:`heard`.
    * :meth:`classify` — :data:`NODE_ACTIVE` within the threshold,
      :data:`NODE_DORMANT` when declared asleep, :data:`NODE_SILENT`
      only for *unexplained* silence past the threshold.
    """

    def __init__(self, interval_s: float = 0.5, miss_threshold: int = 3):
        if interval_s <= 0:
            raise ValueError("liveness interval must be positive")
        if miss_threshold < 1:
            raise ValueError("need at least one missed interval "
                             "to declare silence")
        self.interval_s = interval_s
        self.miss_threshold = miss_threshold
        self._last_heard_s: dict[int, float] = {}
        self._dormant: set[int] = set()

    @property
    def detection_latency_s(self) -> float:
        """Silence past this (with no dormancy declared) is suspicious."""
        return self.interval_s * self.miss_threshold

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._last_heard_s

    def watch(self, node_id: int, now_s: float) -> None:
        """Start tracking a node (counts as an immediate uplink)."""
        self.heard(node_id, now_s)

    def heard(self, node_id: int, now_s: float) -> None:
        """Record one decoded uplink; wakes a dormant node."""
        previous = self._last_heard_s.get(node_id)
        if previous is not None and now_s < previous:
            raise ValueError("uplinks must arrive in time order")
        self._last_heard_s[node_id] = float(now_s)
        self._dormant.discard(node_id)

    def mark_dormant(self, node_id: int) -> None:
        """Declare energy-gated sleep: silence is expected from here
        until the next :meth:`heard`."""
        if node_id not in self._last_heard_s:
            raise KeyError(f"node {node_id} is not being watched")
        self._dormant.add(node_id)

    def is_dormant(self, node_id: int) -> bool:
        """Whether the node currently has dormancy declared."""
        return node_id in self._dormant

    def classify(self, node_id: int, now_s: float) -> str:
        """Reason code for this node's current (lack of) chatter."""
        last = self._last_heard_s.get(node_id)
        if last is None:
            raise KeyError(f"node {node_id} is not being watched")
        if node_id in self._dormant:
            return NODE_DORMANT
        if now_s - last < self.detection_latency_s:
            return NODE_ACTIVE
        return NODE_SILENT

    def classify_all(self, now_s: float) -> dict[int, str]:
        """Reason codes for every watched node (sorted by id)."""
        return {node_id: self.classify(node_id, now_s)
                for node_id in sorted(self._last_heard_s)}

    def silent_nodes(self, now_s: float) -> list[int]:
        """Nodes whose silence has *no* declared reason (sorted)."""
        return [n for n, code in self.classify_all(now_s).items()
                if code == NODE_SILENT]

    def forget(self, node_id: int) -> None:
        """Stop tracking a node (deregistration)."""
        self._last_heard_s.pop(node_id, None)
        self._dormant.discard(node_id)

    def watched(self) -> list[int]:
        """Every node currently being tracked (sorted)."""
        return sorted(self._last_heard_s)
