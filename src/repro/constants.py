"""Physical constants and paper-quoted calibration numbers for mmX.

Every number here is either a physical constant or is quoted directly from
Mazaheri et al., "A Millimeter Wave Network for Billions of Things"
(SIGCOMM 2019).  Section references are given inline so each constant can be
traced back to the paper text.
"""

from __future__ import annotations

# --- Physical constants -------------------------------------------------

SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in vacuum [m/s]."""

BOLTZMANN = 1.380_649e-23
"""Boltzmann constant [J/K]."""

ROOM_TEMPERATURE_K = 290.0
"""Standard noise reference temperature [K]."""

THERMAL_NOISE_DBM_PER_HZ = -174.0
"""Thermal noise floor at 290 K [dBm/Hz]; kT in dBm."""

# --- Spectrum (paper section 7a) ----------------------------------------

ISM_24GHZ_LOW_HZ = 24.0e9
ISM_24GHZ_HIGH_HZ = 24.25e9
ISM_24GHZ_BANDWIDTH_HZ = ISM_24GHZ_HIGH_HZ - ISM_24GHZ_LOW_HZ
"""The 24 GHz ISM band is 250 MHz wide (paper section 7a)."""

ISM_60GHZ_BANDWIDTH_HZ = 7.0e9
"""Unlicensed bandwidth available at 60 GHz (paper section 7a)."""

CARRIER_FREQUENCY_HZ = 24.125e9
"""Mid-band default carrier used throughout the reproduction."""

# --- Attenuation bands (paper section 6.1, citing [4]) ------------------

NLOS_EXCESS_LOSS_DB = (10.0, 20.0)
"""NLoS paths typically see 10-20 dB more attenuation than the LoS path."""

BLOCKAGE_EXCESS_LOSS_DB = (10.0, 15.0)
"""A blocked path typically sees 10-15 dB more attenuation than NLoS."""

BLOCKED_PATH_TOTAL_EXCESS_DB = (20.0, 35.0)
"""Total excess of a *blocked LoS* path over the clear LoS path: the
NLoS band (10-20 dB) plus the blockage band (10-15 dB), per section 6.1.
This is what a human body costs a 24 GHz ray that passes through it."""

# --- Node hardware (paper sections 8.1, 9.1) ----------------------------

NODE_EIRP_DBM = 10.0
"""Radiated power of the mmX node, FCC compliant (section 8.1)."""

VCO_MAX_OUTPUT_DBM = 12.0
"""HMC533 VCO maximum output power (section 8.1)."""

VCO_TUNE_VOLTAGE_RANGE_V = (3.5, 4.9)
"""Control-voltage range that sweeps the full ISM band (Fig. 7)."""

VCO_FREQ_RANGE_HZ = (23.95e9, 24.25e9)
"""VCO output range over the tuning voltage range (Fig. 7)."""

SWITCH_MAX_RATE_HZ = 100e6
"""ADRF5020 maximum switching rate; caps node bitrate at 100 Mbps."""

SWITCH_INSERTION_LOSS_DB = 2.0
"""ADRF5020 insertion loss (<2 dB, section 8.1)."""

SWITCH_ISOLATION_DB = 65.0
"""ADRF5020 isolation between output ports (section 8.1)."""

NODE_POWER_W = 1.1
"""Measured node power consumption (section 9.1)."""

NODE_MAX_BITRATE_BPS = 100e6
"""Maximum node data rate, limited by the RF switch (section 9.1)."""

NODE_ENERGY_PER_BIT_J = NODE_POWER_W / NODE_MAX_BITRATE_BPS
"""11 nJ/bit at 100 Mbps (section 9.1)."""

NODE_COST_USD = 110.0
"""Current mmX node BOM cost (footnote 4)."""

# --- Node antenna (paper sections 6.2, 8.1, 9.1) ------------------------

NODE_AZIMUTH_3DB_BEAMWIDTH_DEG = 40.0
"""Azimuth 3 dB beamwidth of each node beam (section 9.1)."""

NODE_ELEVATION_3DB_BEAMWIDTH_DEG = 65.0
"""Elevation beamwidth, similar to a single patch (section 9.1)."""

NODE_FIELD_OF_VIEW_DEG = 120.0
"""Node field of view on its front side (section 9.1)."""

BEAM0_PEAK_DEG = 30.0
"""Beam 0 has two peaks at about +-30 degrees (sections 6.2, 8.1)."""

NODE_MAX_RANGE_M = 18.0
"""Maximum demonstrated range (sections 1, 9.4)."""

# --- AP hardware (paper section 8.2) -------------------------------------

AP_LNA_GAIN_DB = 25.0
"""HMC751 LNA gain at 24 GHz (section 8.2)."""

AP_LNA_NOISE_FIGURE_DB = 2.0
"""HMC751 LNA noise figure (section 8.2)."""

AP_FILTER_INSERTION_LOSS_DB = 5.0
"""Coupled-line microstrip filter passband insertion loss (section 8.2)."""

AP_LO_FREQUENCY_HZ = 10.0e9
"""ADF5356 LO output, doubled by the sub-harmonic mixer (section 8.2)."""

AP_IF_FREQUENCY_HZ = 4.0e9
"""Intermediate frequency after down-conversion: 24 GHz - 2*10 GHz."""

AP_ANTENNA_GAIN_DBI = 5.0
"""AP dipole antenna gain (section 8.2)."""

AP_ANTENNA_3DB_BEAMWIDTH_DEG = 62.0
"""AP dipole 3 dB beamwidth (section 8.2)."""

# --- Evaluation setup (paper section 9) ----------------------------------

EVAL_ROOM_WIDTH_M = 4.0
EVAL_ROOM_LENGTH_M = 6.0
"""Experiments in section 9.2 ran in a 6 m x 4 m room."""

EVAL_ORIENTATION_RANGE_DEG = (-60.0, 60.0)
"""Node orientation w.r.t. the AP drawn from -60..60 degrees (section 9.2)."""

EVAL_NODE_CHANNEL_BANDWIDTH_HZ = 25e6
"""Each node occupied 25 MHz in the multi-node experiment (section 9.5)."""

AMBIGUOUS_AMPLITUDE_PROBABILITY = 0.10
"""Empirical chance that both beams see similar loss (<10%, section 6.3)."""

HD_VIDEO_BITRATE_BPS = 10e6
"""HD video streaming needs 8-10 Mbps application bitrate (footnote 1)."""
