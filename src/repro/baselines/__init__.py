"""Baselines mmX is compared against.

Two families: (1) beam-management alternatives — exhaustive and
hierarchical phased-array search with AP feedback, and the naive
fixed-beam node (section 6's strawmen); (2) whole-platform comparators
for Table 1 — MiRa, OpenMili/Pasternack, 802.11n WiFi and Bluetooth.
"""

from .beam_search import (
    BeamSearchResult,
    ExhaustiveBeamSearch,
    HierarchicalBeamSearch,
    FeedbackBeamSelection,
)
from .fixed_beam import FixedBeamNode
from .platforms import PlatformSpec, PLATFORMS, mmx_platform, comparison_table
from .spectrum import WifiChannelModel, MmxCapacityModel, iot_device_capacity

__all__ = [
    "BeamSearchResult",
    "ExhaustiveBeamSearch",
    "FeedbackBeamSelection",
    "FixedBeamNode",
    "HierarchicalBeamSearch",
    "MmxCapacityModel",
    "PLATFORMS",
    "PlatformSpec",
    "WifiChannelModel",
    "comparison_table",
    "iot_device_capacity",
    "mmx_platform",
]
