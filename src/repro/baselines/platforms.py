"""Platform comparator specs for Table 1 (§10).

Every row of the paper's Table 1 as a :class:`PlatformSpec`.  The mmX row
is *derived* from the hardware models (cost ledger, power ledger, switch
bitrate cap, energy/bit) rather than hard-coded — that is the point of
the reproduction — while the other platforms are spec-sheet constants
exactly as the paper tabulates them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.chains import NodeHardware

__all__ = ["PlatformSpec", "PLATFORMS", "mmx_platform", "comparison_table"]


@dataclass(frozen=True)
class PlatformSpec:
    """One wireless platform's comparison row."""

    name: str
    carrier_ghz: float
    cost_usd: float
    power_w: float
    tx_power_dbm: float
    bandwidth_hz: float
    bitrate_bps: float
    range_m: float

    @property
    def energy_per_bit_j(self) -> float:
        """Energy efficiency [J/bit] = power / bitrate."""
        return self.power_w / self.bitrate_bps

    @property
    def is_mmwave(self) -> bool:
        """Whether the platform operates above 20 GHz."""
        return self.carrier_ghz >= 20.0


def mmx_platform(hardware: NodeHardware | None = None) -> PlatformSpec:
    """The mmX row, derived from the node hardware models."""
    hw = hardware or NodeHardware()
    return PlatformSpec(
        name="mmX",
        carrier_ghz=24.0,
        cost_usd=hw.total_cost_usd,
        power_w=hw.total_power_w,
        tx_power_dbm=hw.radiated_eirp_dbm,
        bandwidth_hz=250e6,
        bitrate_bps=hw.max_bitrate_bps,
        range_m=18.0,
    )


# Non-mmX rows of Table 1, verbatim from the paper.
PLATFORMS: dict[str, PlatformSpec] = {
    "MiRa": PlatformSpec(
        name="MiRa", carrier_ghz=24.0, cost_usd=7000.0, power_w=11.6,
        tx_power_dbm=10.0, bandwidth_hz=250e6, bitrate_bps=1e9,
        range_m=100.0),
    "OpenMili": PlatformSpec(
        name="OpenMili/Pasternack", carrier_ghz=60.0, cost_usd=8000.0,
        power_w=5.0, tx_power_dbm=12.0, bandwidth_hz=1e9,
        bitrate_bps=1.3e9, range_m=11.0),
    "WiFi": PlatformSpec(
        name="WiFi (802.11n)", carrier_ghz=2.4, cost_usd=10.0, power_w=2.1,
        tx_power_dbm=30.0, bandwidth_hz=70e6, bitrate_bps=120e6,
        range_m=50.0),
    "Bluetooth": PlatformSpec(
        name="Bluetooth", carrier_ghz=2.4, cost_usd=10.0, power_w=0.029,
        tx_power_dbm=5.0, bandwidth_hz=1e6, bitrate_bps=1e6,
        range_m=10.0),
}


def comparison_table(hardware: NodeHardware | None = None
                     ) -> list[PlatformSpec]:
    """All Table 1 rows, mmX first — the paper's column order."""
    return [mmx_platform(hardware), PLATFORMS["MiRa"], PLATFORMS["OpenMili"],
            PLATFORMS["WiFi"], PLATFORMS["Bluetooth"]]
