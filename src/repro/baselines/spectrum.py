"""Spectrum-congestion motivation model (paper §1).

The paper's opening argument: billions of low-power IoT devices on
WiFi "transmit at rates much lower than channel capacity, and since
these devices use omni-directional antennas, they are very inefficient
in their use of shared spectrum".  This module makes the argument
quantitative with a standard airtime model:

* On a shared WiFi channel, a device that joins at PHY rate ``r`` to
  carry offered load ``l`` consumes airtime ``l / r`` — and because the
  medium is shared omni-directionally, airtimes add across devices
  until the channel saturates.
* On mmX, directionality buys spatial reuse and the 250 MHz ISM band is
  split by FDM, so each admitted device consumes its own channel and
  nobody else's airtime.

The capacity headroom comparison feeds the motivation example and an
extension benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import ISM_24GHZ_BANDWIDTH_HZ
from ..network.fdm import FdmAllocator, SpectrumExhausted

__all__ = ["WifiChannelModel", "MmxCapacityModel", "iot_device_capacity"]


@dataclass
class WifiChannelModel:
    """A shared WiFi channel under CSMA-style airtime accounting.

    Attributes
    ----------
    capacity_bps:
        Channel PHY capacity (e.g. 120 Mbps for clean 802.11n).
    efficiency:
        Fraction of airtime that carries payload once contention,
        preambles and ACKs are paid; 0.6 is generous for dense cells.
    low_rate_phy_bps:
        The PHY rate cheap IoT devices actually use — the paper's
        point: low-power radios run slow modulations, so a 2 Mbps
        stream can consume 2/6 of the channel, not 2/120.
    """

    capacity_bps: float = 120e6
    efficiency: float = 0.6
    low_rate_phy_bps: float = 6e6

    def __post_init__(self):
        if self.capacity_bps <= 0 or self.low_rate_phy_bps <= 0:
            raise ValueError("rates must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        self._airtime_used = 0.0

    @property
    def airtime_used(self) -> float:
        """Fraction of the channel's usable airtime committed."""
        return self._airtime_used

    def airtime_for(self, offered_load_bps: float,
                    phy_rate_bps: float | None = None) -> float:
        """Airtime fraction one device's load costs at its PHY rate."""
        if offered_load_bps < 0:
            raise ValueError("load cannot be negative")
        rate = phy_rate_bps or self.low_rate_phy_bps
        return offered_load_bps / (rate * self.efficiency)

    def admit(self, offered_load_bps: float,
              phy_rate_bps: float | None = None) -> bool:
        """Try to admit a device; False once the channel saturates."""
        needed = self.airtime_for(offered_load_bps, phy_rate_bps)
        if self._airtime_used + needed > 1.0:
            return False
        self._airtime_used += needed
        return True

    def reset(self) -> None:
        """Release all airtime."""
        self._airtime_used = 0.0


@dataclass
class MmxCapacityModel:
    """How many IoT devices the mmX AP absorbs, FDM first then SDM.

    ``sdm_reuse`` is the spatial-reuse factor once FDM is exhausted —
    how many co-channel node sets the TMA can separate (bounded by its
    element count in the paper's design).
    """

    band_width_hz: float = ISM_24GHZ_BANDWIDTH_HZ
    sdm_reuse: int = 4

    def __post_init__(self):
        if self.band_width_hz <= 0:
            raise ValueError("band width must be positive")
        if self.sdm_reuse < 1:
            raise ValueError("need at least reuse factor 1")

    def capacity(self, per_device_rate_bps: float) -> int:
        """Devices supported at a per-device offered rate."""
        allocator = FdmAllocator(band_low_hz=0.0,
                                 band_high_hz=self.band_width_hz)
        fdm = 0
        try:
            while True:
                allocator.allocate(fdm, per_device_rate_bps)
                fdm += 1
        except SpectrumExhausted:
            pass
        return fdm * self.sdm_reuse


def iot_device_capacity(per_device_rate_bps: float = 1e6,
                        wifi: WifiChannelModel | None = None,
                        mmx: MmxCapacityModel | None = None
                        ) -> dict[str, int]:
    """Devices-per-AP comparison at a given IoT load (default 1 Mbps).

    Returns counts for a WiFi channel (airtime-limited at the low IoT
    PHY rate) and for mmX (FDM x SDM).  The gap — typically an order of
    magnitude — is §1's "huge strain on today's WiFi spectrum" argument
    in one number.
    """
    wifi = wifi or WifiChannelModel()
    mmx = mmx or MmxCapacityModel()
    wifi.reset()
    wifi_count = 0
    while wifi.admit(per_device_rate_bps):
        wifi_count += 1
        if wifi_count > 100_000:
            break
    return {"wifi": wifi_count, "mmx": mmx.capacity(per_device_rate_bps)}
