"""Phased-array beam searching — what mmX exists to avoid (§2, §3, §6).

These baselines quantify the costs the paper holds against conventional
beam management: search *time* (symbols spent probing instead of
transmitting), *feedback* (every probe needs an AP response, burning node
energy), and *hardware* (a phased array's power/cost, charged via
:class:`repro.antenna.PhasedArray`).  The ablation benchmark puts them
head-to-head with OTAM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..antenna.phased_array import PhasedArray

__all__ = [
    "BeamSearchResult",
    "ExhaustiveBeamSearch",
    "HierarchicalBeamSearch",
    "FeedbackBeamSelection",
]


@dataclass(frozen=True)
class BeamSearchResult:
    """Outcome of one beam-search run."""

    best_direction_rad: float
    best_metric_db: float
    probes: int
    feedback_messages: int

    def overhead_s(self, probe_duration_s: float,
                   feedback_duration_s: float) -> float:
        """Wall-clock alignment overhead for given per-message costs."""
        if probe_duration_s < 0 or feedback_duration_s < 0:
            raise ValueError("durations cannot be negative")
        return (self.probes * probe_duration_s
                + self.feedback_messages * feedback_duration_s)

    def node_energy_j(self, probe_duration_s: float,
                      feedback_duration_s: float,
                      tx_power_w: float, rx_power_w: float) -> float:
        """Node energy burned on alignment (probing Tx + listening Rx)."""
        return (self.probes * probe_duration_s * tx_power_w
                + self.feedback_messages * feedback_duration_s * rx_power_w)


class ExhaustiveBeamSearch:
    """Probe every codebook beam; the AP feeds back a metric per probe.

    This is the 802.11ad-style sector sweep the paper calls "not fast
    enough to enable mobile applications" — O(N) probes, O(N) feedback.
    """

    def __init__(self, array: PhasedArray, num_beams: int | None = None):
        self.array = array
        self.directions = array.codebook_directions_rad(num_beams)

    def search(self, metric_fn) -> BeamSearchResult:
        """Run the sweep; ``metric_fn(direction_rad) -> SNR dB`` at the AP."""
        metrics = np.asarray([float(metric_fn(d)) for d in self.directions])
        best = int(np.argmax(metrics))
        return BeamSearchResult(
            best_direction_rad=float(self.directions[best]),
            best_metric_db=float(metrics[best]),
            probes=len(self.directions),
            feedback_messages=len(self.directions),
        )


class HierarchicalBeamSearch:
    """Coarse-to-fine search: O(k log N) probes, still O(log N) feedback.

    The compressive/hierarchical family ([6, 19, 24] in the paper) —
    faster, but every level still needs AP feedback, and the node still
    needs a phased array that can widen its beams.
    """

    def __init__(self, array: PhasedArray, levels: int = 3,
                 beams_per_level: int = 4):
        if levels < 1 or beams_per_level < 2:
            raise ValueError("need >=1 level and >=2 beams per level")
        self.array = array
        self.levels = levels
        self.beams_per_level = beams_per_level

    def search(self, metric_fn) -> BeamSearchResult:
        """Refine around the best beam of each level."""
        lo, hi = -np.pi / 2, np.pi / 2
        probes = 0
        best_dir, best_metric = 0.0, float("-inf")
        for _ in range(self.levels):
            candidates = np.linspace(lo, hi, self.beams_per_level + 2)[1:-1]
            metrics = np.asarray([float(metric_fn(d)) for d in candidates])
            probes += candidates.size
            idx = int(np.argmax(metrics))
            best_dir, best_metric = float(candidates[idx]), float(metrics[idx])
            width = (hi - lo) / self.beams_per_level
            lo, hi = best_dir - width, best_dir + width
        return BeamSearchResult(
            best_direction_rad=best_dir,
            best_metric_db=best_metric,
            probes=probes,
            feedback_messages=self.levels,
        )


class FeedbackBeamSelection:
    """Section 6's second strawman: fixed multi-beam node + AP feedback.

    The node has a handful of fixed beams (like mmX's two) and asks the
    AP which one to use.  Cheap hardware, but "due to mobility and
    environmental change, the AP needs to provide continuous feedback" —
    modelled as one feedback exchange per coherence interval.
    """

    def __init__(self, beam_directions_rad):
        self.directions = np.asarray(beam_directions_rad, dtype=float)
        if self.directions.size < 2:
            raise ValueError("need at least two fixed beams")

    def select(self, metric_fn) -> BeamSearchResult:
        """Probe each fixed beam once and take the AP's pick."""
        metrics = np.asarray([float(metric_fn(d)) for d in self.directions])
        best = int(np.argmax(metrics))
        return BeamSearchResult(
            best_direction_rad=float(self.directions[best]),
            best_metric_db=float(metrics[best]),
            probes=self.directions.size,
            feedback_messages=self.directions.size,
        )

    def feedback_rate_hz(self, coherence_time_s: float) -> float:
        """Feedback exchanges per second to track a changing channel."""
        if coherence_time_s <= 0:
            raise ValueError("coherence time must be positive")
        return self.directions.size / coherence_time_s
