"""Section 6's first strawman: a single fixed beam pointed by the user.

"One naive approach is to use an antenna array with a fixed beam, and
then ask the user to point the device towards the access point.
Unfortunately... when the line-of-sight path gets blocked, the signal
will be completely lost."  This node is mmX minus OTAM minus the second
beam — it quantifies what the second beam buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..antenna.orthogonal import measured_mmx_beams
from ..channel.multipath import beam_channel_gain
from ..channel.raytrace import trace_paths
from ..sim.placement import Placement
from ..units import amplitude_to_db

__all__ = ["FixedBeamNode"]


@dataclass
class FixedBeamNode:
    """A node that always transmits OOK through one broadside beam."""

    frequency_hz: float = 24.125e9
    beams: object = None

    def __post_init__(self):
        if self.beams is None:
            self.beams = measured_mmx_beams()

    def channel_gain(self, placement: Placement, room, ap_element,
                     max_bounces: int = 1) -> complex:
        """Complex channel gain through the single fixed beam (Beam 1)."""
        paths = trace_paths(placement.node_position, placement.ap_position,
                            room, max_bounces=max_bounces)
        return beam_channel_gain(
            paths,
            tx_field=lambda theta: self.beams.field(1, theta),
            rx_field=ap_element.field,
            tx_orientation_rad=placement.node_orientation_rad,
            rx_orientation_rad=placement.ap_orientation_rad,
            frequency_hz=self.frequency_hz,
        )

    def outage(self, placement: Placement, room, ap_element,
               noise_dbm: float, eirp_dbm: float = 10.0,
               ap_gain_dbi: float = 5.0,
               implementation_loss_db: float = 10.0,
               required_snr_db: float = 10.0) -> tuple[float, bool]:
        """(SNR dB, in-outage?) for this placement.

        The interesting cases are blocked-LoS placements, where the fixed
        beam has nothing to fall back on and drops into outage.
        """
        gain = abs(self.channel_gain(placement, room, ap_element))
        if gain <= 0.0:
            return float("-inf"), True
        level = (eirp_dbm + ap_gain_dbi - implementation_loss_db
                 + float(amplitude_to_db(gain)))
        snr = level - noise_dbm
        return snr, snr < required_snr_db
