"""Composable fault injection driven by the simulation timeline.

The seed repo evaluates only frozen placements; this package makes the
environment hostile on purpose.  Fault *processes* (blocker crossings,
VCO thermal drift, a welded SPDT, power brown-outs, side-channel
outages, in-band ISM interferers, whole-AP crashes) emit
:class:`FaultEvent` schedules; a
seeded :class:`FaultInjector` composes them reproducibly; and the
resulting per-instant :class:`LinkDisturbance` perturbs the analytic
link state wherever the stack evaluates it (``OtamLink.snr_breakdown``,
``TimelineSimulator``, the chaos experiment).
"""

from .events import FAULT_KINDS, NO_DISTURBANCE, FaultEvent, LinkDisturbance
from .injector import (
    SCENARIOS,
    FaultInjector,
    FaultSchedule,
    scenario_injector,
)
from .processes import (
    ApCrashProcess,
    EnergyOutageProcess,
    InterfererProcess,
    NodeDropoutProcess,
    PersistentBlockerProcess,
    SideChannelOutageProcess,
    StuckBeamProcess,
    TransientBlockerProcess,
    VcoDriftProcess,
)

__all__ = [
    "ApCrashProcess",
    "EnergyOutageProcess",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "InterfererProcess",
    "LinkDisturbance",
    "NO_DISTURBANCE",
    "NodeDropoutProcess",
    "PersistentBlockerProcess",
    "SCENARIOS",
    "SideChannelOutageProcess",
    "StuckBeamProcess",
    "TransientBlockerProcess",
    "VcoDriftProcess",
    "scenario_injector",
]
