"""Seeded composition of fault processes into reproducible schedules.

:class:`FaultInjector` owns the RNG discipline: one master seed spawns
one independent child stream per process (the same
``np.random.SeedSequence`` pattern as :class:`repro.sim.runner.
MonteCarloRunner`), so adding, removing or reordering one process never
perturbs the draws of another, and an entire chaos campaign regenerates
bit-identically from a single integer.

:class:`FaultSchedule` is the materialised result: a sorted event list
that can be queried for the composed :class:`LinkDisturbance` at any
instant, from the point of view of a victim on any FDM channel.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..units import dbm_to_milliwatts, milliwatts_to_dbm
from .events import NO_DISTURBANCE, FaultEvent, LinkDisturbance
from .processes import (
    EnergyOutageProcess,
    InterfererProcess,
    NodeDropoutProcess,
    PersistentBlockerProcess,
    SideChannelOutageProcess,
    StuckBeamProcess,
    TransientBlockerProcess,
    VcoDriftProcess,
)

__all__ = ["FaultSchedule", "FaultInjector", "SCENARIOS", "scenario_injector"]

NLOS_BLOCKAGE_FRACTION = 0.25
"""How much of a LoS blocker's loss the NLoS beam pays.

A body parked on the direct path only grazes the reflected path — the
whole reason OTAM's second beam exists (section 6.1)."""


class FaultSchedule:
    """An immutable, queryable set of scheduled fault events."""

    def __init__(self, events, duration_s: float):
        if duration_s <= 0:
            raise ValueError("schedule duration must be positive")
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.start_s, e.kind)))
        self.duration_s = float(duration_s)
        for event in self.events:
            if event.start_s >= self.duration_s:
                raise ValueError("event starts after the schedule ends")

    def __len__(self) -> int:
        return len(self.events)

    def active_at(self, time_s: float) -> tuple[FaultEvent, ...]:
        """All events in force at an instant."""
        return tuple(e for e in self.events if e.active_at(time_s))

    def kinds(self) -> tuple[str, ...]:
        """The distinct fault classes this schedule exercises (sorted)."""
        return tuple(sorted({e.kind for e in self.events}))

    def last_fault_end_s(self) -> float:
        """When the final fault clears (0 for an empty schedule)."""
        if not self.events:
            return 0.0
        return min(max(e.end_s for e in self.events), self.duration_s)

    def disturbance_at(self, time_s: float,
                       channel_index: int | None = None) -> LinkDisturbance:
        """Compose every active event into one link disturbance.

        ``channel_index`` is the victim's current FDM channel:
        interference events only land on a victim sharing the
        interferer's channel (``None`` matches any — the conservative
        single-link view).  Blockage losses add in dB (bodies stack),
        interference powers add linearly, drift offsets add, the most
        recent stuck-beam event wins, and energy-outage severities
        (harvest fractions lost) compose multiplicatively on the
        surviving harvest scale.
        """
        active = self.active_at(time_s)
        if not active:
            return NO_DISTURBANCE
        beam1_loss = 0.0
        beam0_loss = 0.0
        vco_offset = 0.0
        stuck: int | None = None
        node_down = False
        side_up = True
        interference_lin = 0.0
        harvest_scale = 1.0
        kinds = []
        for event in active:
            kinds.append(event.kind)
            if event.kind == "blockage":
                beam1_loss += event.severity * event.profile(time_s)
                beam0_loss += (NLOS_BLOCKAGE_FRACTION * event.severity
                               * event.profile(time_s))
            elif event.kind == "vco_drift":
                vco_offset += event.severity * event.profile(time_s)
            elif event.kind == "stuck_beam":
                stuck = int(event.severity)
            elif event.kind == "dropout":
                node_down = True
            elif event.kind == "side_channel_outage":
                side_up = False
            elif event.kind == "interference":
                if channel_index is None \
                        or event.channel_index == channel_index:
                    interference_lin += float(dbm_to_milliwatts(event.severity))
            elif event.kind == "energy_outage":
                harvest_scale *= 1.0 - event.severity
        interference_dbm = (float(milliwatts_to_dbm(interference_lin))
                            if interference_lin > 0 else float("-inf"))
        return LinkDisturbance(
            beam1_extra_loss_db=beam1_loss,
            beam0_extra_loss_db=beam0_loss,
            vco_offset_hz=vco_offset,
            stuck_beam=stuck,
            node_down=node_down,
            side_channel_up=side_up,
            interference_dbm=float(interference_dbm),
            harvest_scale=harvest_scale,
            active_kinds=tuple(sorted(set(kinds))),
        )

    def disturbance_series(self, times_s,
                           channel_index: int | None = None
                           ) -> list[LinkDisturbance]:
        """Disturbances for a whole sampling grid."""
        return [self.disturbance_at(float(t), channel_index)
                for t in times_s]


class FaultInjector:
    """Composes fault processes into seeded, reproducible schedules."""

    def __init__(self, processes, master_seed: int = 0):
        self.processes = tuple(processes)
        self.master_seed = int(master_seed)

    def schedule(self, duration_s: float,
                 quiet_tail_s: float = 0.0) -> FaultSchedule:
        """Materialise one run's schedule.

        Every process gets its own child generator spawned from the
        master seed, so the draw streams are independent and stable
        under process list edits (matching ``MonteCarloRunner``'s
        discipline).

        ``quiet_tail_s`` reserves a fault-free window at the end of the
        run (events are generated over the shortened horizon and
        clipped to it) so recovery — post-fault SNR returning to the
        clean baseline — is always measurable.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 <= quiet_tail_s < duration_s:
            raise ValueError("quiet tail must fit inside the run")
        horizon = duration_s - quiet_tail_s
        ss = np.random.SeedSequence(self.master_seed)
        children = ss.spawn(len(self.processes))
        events: list[FaultEvent] = []
        for process, child in zip(self.processes, children):
            rng = np.random.default_rng(child)
            for event in process.events(rng, horizon):
                if event.end_s > horizon:
                    event = replace(event,
                                    duration_s=horizon - event.start_s)
                events.append(event)
        return FaultSchedule(events, duration_s)


def _blockage_processes():
    return [
        TransientBlockerProcess(rate_per_minute=8.0),
        PersistentBlockerProcess(start_s=8.0, duration_s=8.0),
    ]


def _interference_processes():
    return [InterfererProcess(start_s=5.0, duration_s=15.0,
                              power_dbm=-60.0, channel_index=0)]


def _dropout_processes():
    return [
        NodeDropoutProcess(rate_per_minute=4.0),
        SideChannelOutageProcess(start_s=10.0, duration_s=4.0),
    ]


def _stuck_beam_processes():
    return [StuckBeamProcess(start_s=6.0, duration_s=12.0, beam=1)]


def _drift_processes():
    return [VcoDriftProcess(start_s=5.0, duration_s=14.0,
                            peak_offset_hz=0.6e6)]


def _energy_outage_processes():
    return [EnergyOutageProcess(start_s=6.0, duration_s=12.0,
                                severity=1.0)]


def _kitchen_sink_processes():
    return [
        TransientBlockerProcess(rate_per_minute=6.0),
        PersistentBlockerProcess(start_s=4.0, duration_s=6.0),
        VcoDriftProcess(start_s=12.0, duration_s=6.0,
                        peak_offset_hz=0.5e6),
        StuckBeamProcess(start_s=20.0, duration_s=5.0, beam=1),
        NodeDropoutProcess(rate_per_minute=2.0),
        SideChannelOutageProcess(start_s=27.0, duration_s=2.0),
        InterfererProcess(start_s=14.0, duration_s=8.0,
                          power_dbm=-60.0, channel_index=0),
    ]


SCENARIOS = {
    "blockage": _blockage_processes,
    "interference": _interference_processes,
    "dropout": _dropout_processes,
    "stuck-beam": _stuck_beam_processes,
    "drift": _drift_processes,
    "energy-outage": _energy_outage_processes,
    "kitchen-sink": _kitchen_sink_processes,
}
"""Named fault scenarios the chaos experiment and CLI expose."""


def scenario_injector(name: str, master_seed: int = 0) -> FaultInjector:
    """Build the injector for a named scenario."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from "
            f"{', '.join(sorted(SCENARIOS))}") from None
    return FaultInjector(builder(), master_seed=master_seed)
