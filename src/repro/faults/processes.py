"""Fault processes: generators of :class:`FaultEvent` schedules.

Each process knows how to emit the events of one fault class over a run
of a given duration.  Stochastic processes (Poisson blocker crossings,
random brown-outs) draw every random quantity from the generator they
are *handed* — they own no RNG state — so the :class:`~repro.faults.
injector.FaultInjector` can apply the same one-master-seed, one-child-
stream-per-process discipline as :class:`repro.sim.runner.
MonteCarloRunner` and every chaos run regenerates bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .events import FaultEvent

__all__ = [
    "TransientBlockerProcess",
    "PersistentBlockerProcess",
    "VcoDriftProcess",
    "StuckBeamProcess",
    "NodeDropoutProcess",
    "SideChannelOutageProcess",
    "InterfererProcess",
    "ApCrashProcess",
    "EnergyOutageProcess",
]


def _check_window(start_s: float, duration_s: float) -> None:
    if start_s < 0:
        raise ValueError("fault window cannot start before the run")
    if duration_s <= 0:
        raise ValueError("fault window must have positive duration")


@dataclass(frozen=True)
class TransientBlockerProcess:
    """Poisson stream of people walking through the line of sight.

    Each crossing blocks the LoS beam for 0.5-2 s (a person at walking
    pace spans the first Fresnel zone for about that long) and costs
    a draw from the paper's 20-35 dB blocked-path excess band.
    """

    rate_per_minute: float = 6.0
    crossing_s: tuple[float, float] = (0.5, 2.0)
    loss_db: tuple[float, float] = (20.0, 35.0)

    def __post_init__(self):
        if self.rate_per_minute <= 0:
            raise ValueError("crossing rate must be positive")
        if not 0 < self.crossing_s[0] <= self.crossing_s[1]:
            raise ValueError("invalid crossing duration range")
        if not 0 < self.loss_db[0] <= self.loss_db[1]:
            raise ValueError("invalid blockage loss range")

    def events(self, rng: np.random.Generator,
               duration_s: float) -> list[FaultEvent]:
        """Draw one run's crossings."""
        events = []
        t = float(rng.exponential(60.0 / self.rate_per_minute))
        while t < duration_s:
            events.append(FaultEvent(
                kind="blockage", start_s=t,
                duration_s=float(rng.uniform(*self.crossing_s)),
                severity=float(rng.uniform(*self.loss_db)),
                label="transient blocker"))
            t += float(rng.exponential(60.0 / self.rate_per_minute))
        return events


@dataclass(frozen=True)
class PersistentBlockerProcess:
    """One person parking in the LoS for a fixed window (§9.2 protocol)."""

    start_s: float = 5.0
    duration_s: float = 10.0
    loss_db: float = 27.5

    def __post_init__(self):
        _check_window(self.start_s, self.duration_s)
        if self.loss_db <= 0:
            raise ValueError("blockage loss must be positive")

    def events(self, rng: np.random.Generator,
               duration_s: float) -> list[FaultEvent]:
        """The single deterministic blockage window (RNG unused)."""
        if self.start_s >= duration_s:
            return []
        return [FaultEvent(kind="blockage", start_s=self.start_s,
                           duration_s=self.duration_s,
                           severity=self.loss_db,
                           label="persistent blocker")]


@dataclass(frozen=True)
class VcoDriftProcess:
    """Thermal frequency drift of the node's free-running VCO.

    The node has no feedback path, so nothing corrects the drift; the
    FSK tones walk off the AP's Goertzel bins and back as the die heats
    and cools (triangular profile, see :meth:`FaultEvent.profile`).
    """

    start_s: float = 5.0
    duration_s: float = 10.0
    peak_offset_hz: float = 0.5e6

    def __post_init__(self):
        _check_window(self.start_s, self.duration_s)
        if self.peak_offset_hz <= 0:
            raise ValueError("peak drift must be positive")

    def events(self, rng: np.random.Generator,
               duration_s: float) -> list[FaultEvent]:
        """The single deterministic drift window (RNG unused)."""
        if self.start_s >= duration_s:
            return []
        return [FaultEvent(kind="vco_drift", start_s=self.start_s,
                           duration_s=self.duration_s,
                           severity=self.peak_offset_hz,
                           label="VCO thermal drift")]


@dataclass(frozen=True)
class StuckBeamProcess:
    """The SPDT welds onto one port for a window.

    With the switch stuck, every bit radiates through the same beam:
    the received amplitude no longer depends on the data and the ASK
    contrast collapses to zero.  The FSK dimension survives — the VCO
    nudge still happens — which is exactly the joint-modulation
    redundancy argument of section 6.3.
    """

    start_s: float = 5.0
    duration_s: float = 10.0
    beam: int = 1

    def __post_init__(self):
        _check_window(self.start_s, self.duration_s)
        if self.beam not in (0, 1):
            raise ValueError("beam index must be 0 or 1")

    def events(self, rng: np.random.Generator,
               duration_s: float) -> list[FaultEvent]:
        """The single deterministic stuck-switch window (RNG unused)."""
        if self.start_s >= duration_s:
            return []
        return [FaultEvent(kind="stuck_beam", start_s=self.start_s,
                           duration_s=self.duration_s,
                           severity=float(self.beam),
                           label=f"SPDT stuck on beam {self.beam}")]


@dataclass(frozen=True)
class NodeDropoutProcess:
    """Random node power brown-outs (battery sag, harvester starvation).

    While down the node radiates nothing and — like a real cold boot —
    forgets its channel assignment, so it must re-initialize over the
    side channel before transmitting again.
    """

    rate_per_minute: float = 1.0
    outage_s: tuple[float, float] = (1.0, 4.0)

    def __post_init__(self):
        if self.rate_per_minute <= 0:
            raise ValueError("dropout rate must be positive")
        if not 0 < self.outage_s[0] <= self.outage_s[1]:
            raise ValueError("invalid outage duration range")

    def events(self, rng: np.random.Generator,
               duration_s: float) -> list[FaultEvent]:
        """Draw one run's brown-outs."""
        events = []
        t = float(rng.exponential(60.0 / self.rate_per_minute))
        while t < duration_s:
            width = float(rng.uniform(*self.outage_s))
            events.append(FaultEvent(kind="dropout", start_s=t,
                                     duration_s=width,
                                     label="power dropout"))
            t += width + float(rng.exponential(60.0 / self.rate_per_minute))
        return events


@dataclass(frozen=True)
class SideChannelOutageProcess:
    """The WiFi/BLE control link goes down for a window."""

    start_s: float = 5.0
    duration_s: float = 5.0

    def __post_init__(self):
        _check_window(self.start_s, self.duration_s)

    def events(self, rng: np.random.Generator,
               duration_s: float) -> list[FaultEvent]:
        """The single deterministic outage window (RNG unused)."""
        if self.start_s >= duration_s:
            return []
        return [FaultEvent(kind="side_channel_outage", start_s=self.start_s,
                           duration_s=self.duration_s,
                           label="side-channel outage")]


@dataclass(frozen=True)
class InterfererProcess:
    """An in-band ISM transmitter lands on one FDM channel.

    The 24 GHz ISM band is unlicensed; a radar sensor or another
    network can key up on spectrum the AP already allocated.  The
    interferer raises the victim channel's noise floor by its received
    power at the AP until it stops — or until the AP moves the victim
    to a clean channel (the resilience layer's job).
    """

    start_s: float = 5.0
    duration_s: float = 10.0
    power_dbm: float = -65.0
    channel_index: int = 0

    def __post_init__(self):
        _check_window(self.start_s, self.duration_s)
        if self.channel_index < 0:
            raise ValueError("channel index cannot be negative")

    def events(self, rng: np.random.Generator,
               duration_s: float) -> list[FaultEvent]:
        """The single deterministic interference window (RNG unused)."""
        if self.start_s >= duration_s:
            return []
        return [FaultEvent(kind="interference", start_s=self.start_s,
                           duration_s=self.duration_s,
                           severity=self.power_dbm,
                           channel_index=self.channel_index,
                           label="in-band ISM interferer")]


@dataclass(frozen=True)
class EnergyOutageProcess:
    """The harvesting field collapses for a window.

    Someone parks a forklift in front of the power illuminator, the
    illuminator reboots, or the facility sheds its wireless-power
    budget: every harvesting node in the field loses ``severity`` of
    its harvested power for the window (Khan et al. treat illuminator
    availability as the dominant outage mode — a rectenna has no
    battery truck to fall back on).  Unlike a ``dropout`` this does
    not silence the node instantly: the store drains, the node goes
    *dormant*, and it must be recognised as sleeping-not-dead by the
    resilience and cluster layers.
    """

    start_s: float = 5.0
    duration_s: float = 10.0
    severity: float = 1.0
    """Fraction of harvested power lost, in (0, 1]."""

    def __post_init__(self):
        _check_window(self.start_s, self.duration_s)
        if not 0.0 < self.severity <= 1.0:
            raise ValueError("severity is the harvest fraction lost, "
                             "in (0, 1]")

    def events(self, rng: np.random.Generator,
               duration_s: float) -> list[FaultEvent]:
        """The single deterministic outage window (RNG unused)."""
        if self.start_s >= duration_s:
            return []
        return [FaultEvent(kind="energy_outage", start_s=self.start_s,
                           duration_s=self.duration_s,
                           severity=self.severity,
                           label="harvesting field outage")]


@dataclass(frozen=True)
class ApCrashProcess:
    """One access point goes down hard for a window.

    A power cut or firmware panic takes the *whole* control plane with
    it: every registration, the FDM spectrum map, the TMA assignments.
    The node-side faults above degrade one link; this one strands every
    node the AP serves — which is why it is handled by
    :class:`repro.cluster.Cluster` (heartbeat detection + failover +
    checkpointed reboot) rather than the link-level disturbance model.
    """

    start_s: float = 5.0
    duration_s: float = 10.0
    ap_index: int = 0

    def __post_init__(self):
        _check_window(self.start_s, self.duration_s)
        if self.ap_index < 0:
            raise ValueError("AP index cannot be negative")

    def events(self, rng: np.random.Generator,
               duration_s: float) -> list[FaultEvent]:
        """The single deterministic crash window (RNG unused)."""
        if self.start_s >= duration_s:
            return []
        return [FaultEvent(kind="ap_crash", start_s=self.start_s,
                           duration_s=self.duration_s,
                           severity=float(self.ap_index),
                           label=f"AP {self.ap_index} crash")]
