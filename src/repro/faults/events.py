"""Fault events and the per-timestep link disturbance they compose into.

The seed repository scores every link at one frozen SNR; nothing ever
fails mid-run.  Real short-range mmWave deployments live in a transient
fault regime — people cross the beam, oscillators drift with
temperature, switches stick, batteries brown out, the unlicensed band
fills with other radios (Shokri-Ghadikolaei et al. on mmWave MAC design;
the paper's own section 9.2 blockage protocol).  This module defines the
vocabulary for that regime:

* :class:`FaultEvent` — one fault of a given *kind* occupying a time
  window with a kind-specific severity.
* :class:`LinkDisturbance` — the *composition* of all faults active at
  one instant, expressed as perturbations of the analytic link state
  (per-beam excess loss, VCO frequency offset, a welded SPDT, a dead
  node, a dead side channel, in-band interference power).

Both are plain frozen dataclasses with no dependency on the rest of the
package, so every layer (core link, timeline, resilience) can consume
them without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FAULT_KINDS", "FaultEvent", "LinkDisturbance", "NO_DISTURBANCE"]


FAULT_KINDS = (
    "blockage",
    "vco_drift",
    "stuck_beam",
    "dropout",
    "side_channel_outage",
    "interference",
    "ap_crash",
    "energy_outage",
)
"""Every fault class the injector knows how to schedule.

========================  ====================================================
blockage                  A body crossing (or parking in) the LoS; severity is
                          the excess loss [dB] the LoS beam pays.
vco_drift                 Thermal frequency drift of the node's free-running
                          VCO; severity is the peak carrier offset [Hz].
stuck_beam                The SPDT welds to one port; severity is the beam
                          index (0.0 or 1.0) the switch is stuck on.
dropout                   Node power brown-out: the carrier disappears
                          entirely and the channel assignment is lost.
side_channel_outage       The WiFi/BLE control link is down; no (re-)
                          initialization can complete while active.
interference              An in-band ISM transmitter lands on one FDM
                          channel; severity is its received power [dBm] at
                          the AP, ``channel_index`` says which channel.
ap_crash                  An entire access point goes down (power cut, kernel
                          panic); severity is the integer index of the AP in
                          its cluster.  Handled by the control plane
                          (:mod:`repro.cluster`), not the link model —
                          :meth:`FaultSchedule.disturbance_at` passes it
                          through untouched in ``active_kinds``.
energy_outage             The harvesting field collapses (illuminator blocked
                          or powered off); severity is the *fraction of
                          harvested power lost*, in [0, 1].  Consumed by the
                          energy layer (:mod:`repro.energy`) via the
                          ``harvest_scale`` disturbance field — the link
                          budget itself is untouched until the node's store
                          actually runs dry and it goes dormant.
========================  ====================================================
"""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault occupying ``[start_s, start_s + duration_s)``."""

    kind: str
    start_s: float
    duration_s: float
    severity: float = 1.0
    channel_index: int | None = None
    label: str = ""

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.start_s < 0:
            raise ValueError("fault cannot start before the run")
        if self.duration_s <= 0:
            raise ValueError("fault duration must be positive")
        if self.kind == "stuck_beam" and self.severity not in (0.0, 1.0):
            raise ValueError("stuck_beam severity is the beam index (0 or 1)")
        if self.kind == "interference" and self.channel_index is None:
            raise ValueError("interference events must name a channel")
        if self.kind == "ap_crash" and (
                self.severity < 0 or self.severity != int(self.severity)):
            raise ValueError("ap_crash severity is a non-negative AP index")
        if self.kind == "energy_outage" and not 0.0 <= self.severity <= 1.0:
            raise ValueError("energy_outage severity is the harvested-"
                             "power fraction lost, in [0, 1]")

    @property
    def end_s(self) -> float:
        """First instant the fault is no longer active."""
        return self.start_s + self.duration_s

    def active_at(self, time_s: float) -> bool:
        """Whether the fault is in force at an instant."""
        return self.start_s <= time_s < self.end_s

    def profile(self, time_s: float) -> float:
        """Severity scaling at an instant (0 when inactive).

        Most faults are rectangular (full severity for the whole
        window).  Thermal VCO drift ramps up and back down — a
        triangular profile peaking mid-window — because the oscillator
        walks away from and back to its calibration point as the die
        heats and cools.
        """
        if not self.active_at(time_s):
            return 0.0
        if self.kind == "vco_drift":
            phase = (time_s - self.start_s) / self.duration_s
            return 2.0 * min(phase, 1.0 - phase)
        return 1.0


@dataclass(frozen=True)
class LinkDisturbance:
    """All fault effects in force at one instant, composed.

    Field semantics match how :func:`repro.core.link.perturb_breakdown`
    applies them: losses subtract from the clean per-beam received
    levels, ``vco_offset_hz`` detunes both FSK tones off their Goertzel
    bins, ``stuck_beam`` collapses the ASK contrast (both symbols
    radiate through the welded port), ``interference_dbm`` adds to the
    victim's noise floor, and ``node_down`` silences everything.
    """

    beam1_extra_loss_db: float = 0.0
    beam0_extra_loss_db: float = 0.0
    vco_offset_hz: float = 0.0
    stuck_beam: int | None = None
    node_down: bool = False
    side_channel_up: bool = True
    interference_dbm: float = float("-inf")
    harvest_scale: float = 1.0
    """Multiplier on harvested power in force at this instant (1.0 =
    the field is intact, 0.0 = total energy outage).  Consumed by the
    :mod:`repro.energy` battery layer, not the link budget —
    :func:`repro.core.link.perturb_breakdown` ignores it, the same
    control-plane pass-through treatment ``ap_crash`` gets."""

    active_kinds: tuple[str, ...] = field(default=())

    def __post_init__(self):
        if self.beam1_extra_loss_db < 0 or self.beam0_extra_loss_db < 0:
            raise ValueError("excess loss cannot be negative")
        if self.stuck_beam not in (None, 0, 1):
            raise ValueError("stuck beam must be None, 0 or 1")
        if not 0.0 <= self.harvest_scale <= 1.0:
            raise ValueError("harvest scale must be in [0, 1]")

    @property
    def is_clear(self) -> bool:
        """Whether this instant perturbs nothing (field-wise, not by
        ``active_kinds`` — a hand-built disturbance need not tag them)."""
        return (self.beam1_extra_loss_db == 0.0
                and self.beam0_extra_loss_db == 0.0
                and self.vco_offset_hz == 0.0
                and self.stuck_beam is None
                and not self.node_down
                and self.side_channel_up
                and not self.has_interference
                and self.harvest_scale == 1.0)

    @property
    def has_interference(self) -> bool:
        """Whether in-band interference is landing on the victim."""
        return self.interference_dbm != float("-inf")


NO_DISTURBANCE = LinkDisturbance()
"""The fault-free disturbance (shared immutable instance)."""
