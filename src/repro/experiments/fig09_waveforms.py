"""Fig. 9 + the section 6.3 claim: ASK-decodable vs FSK-decodable captures.

Fig. 9(a): the two beams' paths differ, the envelope carries the bits —
ASK demodulation works.  Fig. 9(b): the paths happen to match, the
envelope is flat, and only the joint modulation's frequency dimension
recovers the bits.  Section 6.3 claims the ambiguous case occurs for
<10 % of placements; the Monte-Carlo half of this experiment measures
that probability with the ray-traced channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channel.multipath import ChannelResponse
from ..core.ask_fsk import AskFskConfig
from ..core.demodulator import JointDemodulator
from ..core.link import OtamLink
from ..core.otam import OtamModulator
from ..phy.bits import random_bits
from ..phy.preamble import default_preamble_bits
from ..phy.waveform import Waveform
from ..sim.environment import default_lab_room
from ..sim.mobility import los_blocker_between
from ..sim.placement import PlacementSampler
from ..units import db_to_amplitude, db_to_linear
from .report import format_table

__all__ = ["WaveformExample", "Fig9Result", "run", "render"]

#: Decision SNR below which a branch cannot decode reliably.
DECODE_SNR_DB = 10.0

#: Levels within this gap count as "the same loss" (section 6.3).
AMBIGUITY_CONTRAST_DB = 1.0


@dataclass(frozen=True)
class WaveformExample:
    """One synthetic capture with its demodulation outcome."""

    label: str
    bits: np.ndarray
    envelope: np.ndarray
    decoded_branch: str
    bit_errors: int
    ask_snr_db: float
    fsk_snr_db: float


@dataclass(frozen=True)
class Fig9Result:
    """The two showcase captures plus the ambiguity statistics."""

    ask_case: WaveformExample
    fsk_case: WaveformExample
    ambiguous_fraction: float
    ambiguous_decoded_fraction: float
    num_placements: int


def _example(label: str, channel: ChannelResponse, rng: np.random.Generator,
             config: AskFskConfig, snr_setup_db: float = 30.0
             ) -> WaveformExample:
    modulator = OtamModulator(config, eirp_dbm=0.0)
    demod = JointDemodulator(config)
    bits = np.concatenate([default_preamble_bits(),
                           random_bits(64, rng)])
    clean = modulator.received_waveform(bits, channel)
    # Noise set relative to the stronger level so both cases see the same
    # receiver floor.
    strong = max(abs(channel.h1), abs(channel.h0))
    noise_power = strong**2 / float(db_to_linear(snr_setup_db))
    noise = (np.sqrt(noise_power / 2)
             * (rng.standard_normal(len(clean))
                + 1j * rng.standard_normal(len(clean))))
    wave = Waveform(clean.samples + noise, clean.sample_rate_hz)
    result = demod.demodulate(wave)
    n = min(bits.size, result.bits.size)
    errors = int(np.count_nonzero(bits[:n] != result.bits[:n]))
    return WaveformExample(
        label=label,
        bits=bits,
        envelope=np.abs(wave.samples),
        decoded_branch=result.branch,
        bit_errors=errors,
        ask_snr_db=result.ask_snr_db,
        fsk_snr_db=result.fsk_snr_db,
    )


def run(seed: int = 0, num_placements: int = 300) -> Fig9Result:
    """Build the two Fig. 9 captures and measure the ambiguity rate."""
    rng = np.random.default_rng(seed)
    config = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)

    # (a) distinct beam losses: NLoS beam 15 dB below the LoS beam.
    distinct = ChannelResponse(h1=1.0 + 0.0j,
                               h0=float(db_to_amplitude(-15.0)) + 0.0j,
                               paths=())
    ask_case = _example("Fig 9a (decode via ASK)", distinct, rng, config)

    # (b) equal losses: amplitudes match, only frequency separates bits.
    equal = ChannelResponse(h1=0.5 + 0.0j, h0=0.5 * np.exp(1j * 0.7),
                            paths=())
    fsk_case = _example("Fig 9b (decode via FSK)", equal, rng, config)

    # Monte-Carlo ambiguity probability over ray-traced placements with a
    # person near the LoS half the time (the situation that equalises
    # the beams).  "Same loss" means the two received levels sit within
    # AMBIGUITY_CONTRAST_DB of each other.
    ambiguous = 0
    ambiguous_with_signal = 0
    ambiguous_decoded = 0
    room = default_lab_room()
    sampler = PlacementSampler(room, rng)
    for _ in range(num_placements):
        placement = sampler.sample()
        room.clear_blockers()
        if rng.random() < 0.5:
            room.add_blocker(los_blocker_between(
                placement.node_position, placement.ap_position,
                fraction=float(rng.uniform(0.2, 0.8)), rng=rng))
        link = OtamLink(placement=placement, room=room)
        breakdown = link.snr_breakdown()
        if breakdown.ask_contrast_db < AMBIGUITY_CONTRAST_DB:
            ambiguous += 1
            # Joint decode succeeds via FSK whenever the placement is
            # not simply in outage (some signal actually arrives).
            stronger = max(breakdown.beam1_level_dbm,
                           breakdown.beam0_level_dbm)
            if stronger - breakdown.noise_dbm >= DECODE_SNR_DB:
                ambiguous_with_signal += 1
                if breakdown.fsk_snr_db >= DECODE_SNR_DB:
                    ambiguous_decoded += 1
    room.clear_blockers()
    return Fig9Result(
        ask_case=ask_case,
        fsk_case=fsk_case,
        ambiguous_fraction=ambiguous / num_placements,
        ambiguous_decoded_fraction=(
            ambiguous_decoded / ambiguous_with_signal
            if ambiguous_with_signal else 1.0),
        num_placements=num_placements,
    )


def render(result: Fig9Result) -> str:
    """Summary table for both captures and the ambiguity statistics."""
    rows = []
    for case in (result.ask_case, result.fsk_case):
        rows.append([case.label, case.decoded_branch, case.bit_errors,
                     f"{case.ask_snr_db:.1f}", f"{case.fsk_snr_db:.1f}"])
    table = format_table(
        ["capture", "branch used", "bit errors", "ASK SNR [dB]",
         "FSK SNR [dB]"],
        rows, title="Fig. 9 — joint ASK-FSK decoding examples")
    stats = format_table(
        ["metric", "value", "paper"],
        [
            ["ambiguous-amplitude fraction",
             f"{result.ambiguous_fraction:.1%}", "<10%"],
            ["of those, decodable via FSK",
             f"{result.ambiguous_decoded_fraction:.1%}", "all"],
        ],
        title="Section 6.3 ambiguity statistics")
    return "\n\n".join([table, stats])
