"""Fig. 8: measured beam patterns of the mmX node.

Published shape: Beam 1 peaks at broadside, Beam 0 peaks at about ±30°,
each beam is nulled at the other's peaks, azimuth 3-dB beamwidth ~40°,
field of view 120°.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..antenna.orthogonal import design_mmx_beams
from ..antenna.patterns import (
    half_power_beamwidth_deg,
    pattern_orthogonality_db,
    peak_direction_deg,
)
from ..units import amplitude_to_db
from .report import format_table

__all__ = ["Fig8Result", "run", "render"]


@dataclass(frozen=True)
class Fig8Result:
    """Azimuth cuts of both beams plus the headline pattern metrics."""

    azimuth_deg: np.ndarray
    beam1_db: np.ndarray
    beam0_db: np.ndarray
    beam1_peak_deg: float
    beam0_peak_abs_deg: float
    beam1_beamwidth_deg: float
    beam0_depth_at_beam1_peak_db: float
    beam1_depth_at_beam0_peak_db: float


def run(num_points: int = 361) -> Fig8Result:
    """Evaluate the designed beam pair over the full azimuth circle."""
    beams = design_mmx_beams()
    az = np.linspace(-180.0, 180.0, num_points)
    theta = np.radians(az)
    # Use the pair's power-normalised fields so Beam 0's arms sit the
    # physical ~2-3 dB below Beam 1's peak, as in the measured figure.
    beam1_db = amplitude_to_db(np.maximum(beams.field(1, theta), 1e-12))
    beam0_db = amplitude_to_db(np.maximum(beams.field(0, theta), 1e-12))
    beam1_peak = peak_direction_deg(beams.beam1)
    beam0_peak = abs(peak_direction_deg(beams.beam0))
    return Fig8Result(
        azimuth_deg=az,
        beam1_db=beam1_db,
        beam0_db=beam0_db,
        beam1_peak_deg=beam1_peak,
        beam0_peak_abs_deg=beam0_peak,
        beam1_beamwidth_deg=half_power_beamwidth_deg(beams.beam1),
        beam0_depth_at_beam1_peak_db=pattern_orthogonality_db(
            beams.beam1, beams.beam0),
        beam1_depth_at_beam0_peak_db=pattern_orthogonality_db(
            beams.beam0, beams.beam1),
    )


def render(result: Fig8Result) -> str:
    """Headline metrics table plus a coarse pattern listing."""
    metrics = format_table(
        ["metric", "value", "paper"],
        [
            ["Beam 1 peak [deg]", result.beam1_peak_deg, 0],
            ["Beam 0 peak [deg]", result.beam0_peak_abs_deg, "~30"],
            ["Beam 1 3dB width [deg]", result.beam1_beamwidth_deg, "~40"],
            ["Beam 0 @ Beam 1 peak [dB]",
             result.beam0_depth_at_beam1_peak_db, "null"],
            ["Beam 1 @ Beam 0 peak [dB]",
             result.beam1_depth_at_beam0_peak_db, "null"],
        ],
        title="Fig. 8 — orthogonal beam pattern metrics")
    step = max(1, result.azimuth_deg.size // 25)
    rows = [[f"{a:.0f}", f"{b1:.1f}", f"{b0:.1f}"]
            for a, b1, b0 in zip(result.azimuth_deg[::step],
                                 result.beam1_db[::step],
                                 result.beam0_db[::step])]
    cuts = format_table(["azimuth [deg]", "Beam 1 [dB]", "Beam 0 [dB]"],
                        rows, title="Azimuth cuts (decimated)")
    return "\n\n".join([metrics, cuts])
