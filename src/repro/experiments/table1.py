"""Table 1: mmX vs MiRa, OpenMili/Pasternack, WiFi and Bluetooth (§10).

The mmX row is derived from the hardware models; the rest are the paper's
spec constants.  What matters for reproduction is the *ordering*: mmX is
the cheapest and lowest-power mmWave platform, its bitrate sits between
Bluetooth/WiFi and the Gbps platforms, and its energy per bit undercuts
WiFi and Bluetooth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.platforms import PlatformSpec, comparison_table
from .report import format_table

__all__ = ["Table1Result", "run", "render"]


@dataclass(frozen=True)
class Table1Result:
    """All platform rows plus derived ordering checks."""

    rows: list[PlatformSpec]

    def row(self, name_prefix: str) -> PlatformSpec:
        """Find a platform row by name prefix."""
        for spec in self.rows:
            if spec.name.lower().startswith(name_prefix.lower()):
                return spec
        raise KeyError(f"no platform named {name_prefix!r}")

    @property
    def mmx_cheapest_mmwave(self) -> bool:
        """mmX costs less than every other mmWave platform."""
        mmx = self.row("mmX")
        return all(mmx.cost_usd < s.cost_usd for s in self.rows
                   if s.is_mmwave and s.name != mmx.name)

    @property
    def mmx_lowest_power_mmwave(self) -> bool:
        """mmX draws less power than every other mmWave platform."""
        mmx = self.row("mmX")
        return all(mmx.power_w < s.power_w for s in self.rows
                   if s.is_mmwave and s.name != mmx.name)

    @property
    def mmx_beats_wifi_energy(self) -> bool:
        """mmX's nJ/bit is below 802.11n's (the headline in §1)."""
        return (self.row("mmX").energy_per_bit_j
                < self.row("WiFi").energy_per_bit_j)


def run() -> Table1Result:
    """Assemble the comparison rows."""
    return Table1Result(rows=comparison_table())


def render(result: Table1Result) -> str:
    """The full Table 1 plus the ordering checks."""
    rows = []
    for s in result.rows:
        rows.append([
            s.name,
            f"{s.carrier_ghz:.1f}",
            f"{s.cost_usd:,.0f}",
            f"{s.power_w:.3g}",
            f"{s.tx_power_dbm:.0f}",
            f"{s.bandwidth_hz/1e6:.0f}",
            f"{s.bitrate_bps/1e6:.0f}",
            f"{s.energy_per_bit_j*1e9:.1f}",
            f"{s.range_m:.0f}",
        ])
    table = format_table(
        ["platform", "carrier [GHz]", "cost [$]", "power [W]",
         "Tx [dBm]", "BW [MHz]", "bitrate [Mbps]", "energy [nJ/bit]",
         "range [m]"],
        rows, title="Table 1 — platform comparison")
    checks = format_table(
        ["ordering check", "holds"],
        [
            ["mmX cheapest mmWave platform",
             str(result.mmx_cheapest_mmwave)],
            ["mmX lowest-power mmWave platform",
             str(result.mmx_lowest_power_mmwave)],
            ["mmX energy/bit below WiFi",
             str(result.mmx_beats_wifi_energy)],
        ])
    return "\n\n".join([table, checks])
