"""Extension experiments beyond the paper's evaluation section.

Three studies the paper motivates but does not run:

1. **Mobility robustness** (§1: "works in both dynamic and stationary
   environments") — SNR traces while people walk through the link;
   outage statistics for OTAM vs the Beam-1-only baseline.
2. **Direction-aware SDM scheduling** (§7b leaves the policy open) —
   the AP assigns co-channel partners by angular separation; quantifies
   the SINR it buys over naive round-robin at 20 nodes.
3. **60 GHz scaling** (§7a: "the available unlicensed spectrum at ...
   60 GHz [is] 7 GHz wide") — device capacity and range if mmX moved to
   the 60 GHz band, where oxygen absorption also bites.

Plus the §1 motivation number (how many low-rate IoT devices a WiFi
channel absorbs versus one mmX AP), a §2 self-check (channel sparsity /
flat fading over the traced room), and an application-level streaming
study (frame latency and delivery through the MAC at each link SNR).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.spectrum import (
    MmxCapacityModel,
    iot_device_capacity,
)
from ..channel.pathloss import free_space_path_loss_db, oxygen_absorption_db
from ..channel.statistics import ChannelStats, characterize
from ..constants import ISM_24GHZ_BANDWIDTH_HZ, ISM_60GHZ_BANDWIDTH_HZ
from ..core.throughput import RateAdapter, frame_success_probability
from ..network.mac import UplinkSimulator
from ..network.network import MultiNodeNetwork
from ..network.sdm_scheduler import (
    AngularSdmScheduler,
    RoundRobinScheduler,
    assignment_min_separation_rad,
)
from ..sim.environment import default_lab_room
from ..sim.geometry import Point, Segment
from ..sim.mobility import LinearCrossing, WalkingBlocker, los_blocker_between
from ..sim.placement import Placement, PlacementSampler
from ..sim.timeline import TimelineSimulator
from .report import format_table

__all__ = [
    "MobilityResult",
    "SchedulerResult",
    "Band60Result",
    "StreamingResult",
    "run_mobility",
    "run_scheduler",
    "run_60ghz",
    "run_motivation",
    "run_channel_stats",
    "run_streaming",
    "render_mobility",
    "render_scheduler",
    "render_60ghz",
    "render_channel_stats",
    "render_streaming",
]


# --- 1. mobility robustness -------------------------------------------------

@dataclass(frozen=True)
class MobilityResult:
    """Outage statistics from a walked-through link."""

    duration_s: float
    mean_otam_snr_db: float
    mean_no_otam_snr_db: float
    otam_outage: float
    no_otam_outage: float
    polarity_flips: int
    mean_outage_duration_s: float


def run_mobility(seed: int = 0, duration_s: float = 60.0,
                 num_walkers: int = 2,
                 threshold_db: float = 10.0) -> MobilityResult:
    """People repeatedly crossing a 4 m link for a minute."""
    rng = np.random.default_rng(seed)
    room = default_lab_room()
    placement = Placement(Point(2.0, 4.2), -np.pi / 2,
                          Point(2.0, 0.15), np.pi / 2)
    walkers = []
    for k in range(num_walkers):
        y = 1.2 + 1.2 * k
        crossing = LinearCrossing(Segment(Point(0.4, y), Point(3.6, y)),
                                  speed_mps=float(rng.uniform(0.8, 1.4)))
        walkers.append(WalkingBlocker(
            los_blocker_between(placement.node_position,
                                placement.ap_position, rng=rng),
            crossing))
    simulator = TimelineSimulator(room, placement, walkers=walkers,
                                  time_step_s=0.2)
    trace = simulator.run(duration_s)
    return MobilityResult(
        duration_s=duration_s,
        mean_otam_snr_db=float(np.mean(trace.otam_snr_db)),
        mean_no_otam_snr_db=float(np.mean(trace.no_otam_snr_db)),
        otam_outage=trace.outage_fraction(threshold_db, with_otam=True),
        no_otam_outage=trace.outage_fraction(threshold_db, with_otam=False),
        polarity_flips=trace.polarity_flips(),
        mean_outage_duration_s=trace.mean_outage_duration_s(threshold_db),
    )


def render_mobility(result: MobilityResult) -> str:
    """Outage comparison table."""
    return format_table(
        ["metric", "with OTAM", "without OTAM"],
        [
            ["mean SNR [dB]", f"{result.mean_otam_snr_db:.1f}",
             f"{result.mean_no_otam_snr_db:.1f}"],
            ["outage fraction (<10 dB)", f"{result.otam_outage:.1%}",
             f"{result.no_otam_outage:.1%}"],
            ["polarity flips absorbed", result.polarity_flips, "n/a"],
            ["mean outage duration [s]",
             f"{result.mean_outage_duration_s:.2f}", "-"],
        ],
        title=f"Extension — mobility robustness over {result.duration_s:.0f} s "
              f"with people crossing")


# --- 2. direction-aware SDM scheduling ---------------------------------------

@dataclass(frozen=True)
class SchedulerResult:
    """Round-robin vs angular SDM assignment at a node count."""

    num_nodes: int
    mean_sinr_round_robin_db: float
    mean_sinr_angular_db: float
    min_separation_round_robin_deg: float
    min_separation_angular_deg: float

    @property
    def gain_db(self) -> float:
        """Mean-SINR gain the direction-aware policy buys."""
        return self.mean_sinr_angular_db - self.mean_sinr_round_robin_db


def run_scheduler(seed: int = 0, num_nodes: int = 20,
                  trials: int = 20) -> SchedulerResult:
    """Evaluate both policies on identical placements."""
    room = default_lab_room()
    network = MultiNodeNetwork(room, np.random.default_rng(seed))
    round_robin = RoundRobinScheduler(network.num_fdm_channels)
    angular = AngularSdmScheduler(network.num_fdm_channels)
    sinr_rr, sinr_ang, sep_rr, sep_ang = [], [], [], []
    for t in range(trials):
        sampler = PlacementSampler(room, np.random.default_rng(seed * 977 + t))
        placements = sampler.sample_many(num_nodes)
        sep_rr.append(assignment_min_separation_rad(
            placements, round_robin.assign(placements)))
        sep_ang.append(assignment_min_separation_rad(
            placements, angular.assign(placements)))
        sinr_rr.append(network.evaluate(num_nodes, placements=placements,
                                        scheduler=round_robin).mean_sinr_db)
        sinr_ang.append(network.evaluate(num_nodes, placements=placements,
                                         scheduler=angular).mean_sinr_db)
    return SchedulerResult(
        num_nodes=num_nodes,
        mean_sinr_round_robin_db=float(np.mean(sinr_rr)),
        mean_sinr_angular_db=float(np.mean(sinr_ang)),
        min_separation_round_robin_deg=float(np.degrees(np.mean(sep_rr))),
        min_separation_angular_deg=float(np.degrees(np.mean(sep_ang))),
    )


def render_scheduler(result: SchedulerResult) -> str:
    """Policy comparison table."""
    return format_table(
        ["policy", "mean SINR [dB]", "worst co-channel separation [deg]"],
        [
            ["round-robin", f"{result.mean_sinr_round_robin_db:.1f}",
             f"{result.min_separation_round_robin_deg:.1f}"],
            ["direction-aware", f"{result.mean_sinr_angular_db:.1f}",
             f"{result.min_separation_angular_deg:.1f}"],
        ],
        title=f"Extension — SDM scheduling policy at {result.num_nodes} nodes "
              f"(gain {result.gain_db:.1f} dB)")


# --- 3. the 60 GHz variant -----------------------------------------------------

@dataclass(frozen=True)
class Band60Result:
    """24 GHz vs 60 GHz trade-off for an mmX-style network."""

    capacity_24ghz: int
    capacity_60ghz: int
    extra_path_loss_db_at_18m: float
    oxygen_loss_db_at_18m: float

    @property
    def capacity_ratio(self) -> float:
        """How many more devices the 7 GHz band supports."""
        return self.capacity_60ghz / max(self.capacity_24ghz, 1)


def run_60ghz(per_device_rate_bps: float = 10e6,
              sdm_reuse: int = 4) -> Band60Result:
    """Capacity from bandwidth; range penalty from physics."""
    cap24 = MmxCapacityModel(band_width_hz=ISM_24GHZ_BANDWIDTH_HZ,
                             sdm_reuse=sdm_reuse)
    cap60 = MmxCapacityModel(band_width_hz=ISM_60GHZ_BANDWIDTH_HZ,
                             sdm_reuse=sdm_reuse)
    fspl_gap = (float(free_space_path_loss_db(18.0, 60e9))
                - float(free_space_path_loss_db(18.0, 24e9)))
    oxygen = float(oxygen_absorption_db(18.0, 60e9))
    return Band60Result(
        capacity_24ghz=cap24.capacity(per_device_rate_bps),
        capacity_60ghz=cap60.capacity(per_device_rate_bps),
        extra_path_loss_db_at_18m=fspl_gap,
        oxygen_loss_db_at_18m=oxygen,
    )


def render_60ghz(result: Band60Result) -> str:
    """Band trade-off table."""
    return format_table(
        ["quantity", "24 GHz", "60 GHz"],
        [
            ["devices per AP (10 Mbps each)", result.capacity_24ghz,
             result.capacity_60ghz],
            ["extra FSPL at 18 m [dB]", 0,
             f"{result.extra_path_loss_db_at_18m:.1f}"],
            ["oxygen absorption at 18 m [dB]", "~0",
             f"{result.oxygen_loss_db_at_18m:.3f}"],
        ],
        title="Extension — moving mmX to the 60 GHz band (section 7a)")


# --- 4. the section 1 motivation number ------------------------------------------

def run_motivation(per_device_rate_bps: float = 1e6) -> dict[str, int]:
    """Devices per AP: one WiFi channel vs one mmX AP (section 1)."""
    return iot_device_capacity(per_device_rate_bps)


# --- 5. channel self-check (§2's sparsity claims) ---------------------------

def run_channel_stats(seed: int = 0, num_placements: int = 60
                      ) -> ChannelStats:
    """Characterise the traced channel against §2's measurement claims."""
    room = default_lab_room()
    sampler = PlacementSampler(room, np.random.default_rng(seed))
    return characterize(room, sampler.sample_many(num_placements))


def render_channel_stats(stats: ChannelStats) -> str:
    """Channel-character table with the paper's qualitative claims."""
    return format_table(
        ["statistic", "value", "paper's claim"],
        [
            ["median path count", f"{stats.median_path_count:.0f}",
             "'typically there are a few paths' (§2)"],
            ["max path count", stats.max_path_count, "sparse"],
            ["median K-factor [dB]", f"{stats.median_k_factor_db:.1f}",
             "LoS dominates when clear"],
            ["median delay spread [ns]",
             f"{stats.median_delay_spread_ns:.2f}",
             "flat fading for ASK symbols"],
            ["median angular spread [deg]",
             f"{stats.median_angular_spread_deg:.0f}",
             "two fixed beams suffice"],
        ],
        title="Extension — channel self-check (section 2)")


# --- 6. application streaming through the MAC -------------------------------

@dataclass(frozen=True)
class StreamingResult:
    """HD-camera streaming quality per link SNR."""

    snr_points_db: tuple[float, ...]
    delivery_ratios: tuple[float, ...]
    p99_latencies_ms: tuple[float, ...]
    modes: tuple[str, ...]


def run_streaming(snr_points_db=(8.0, 10.0, 12.0, 16.0, 24.0),
                  link_rate_bps: float = 10e6,
                  frame_bytes: int = 4096,
                  frame_interval_s: float = 1.0 / 30.0,
                  seed: int = 0) -> StreamingResult:
    """A 30 fps camera streaming through the MAC at several SNRs.

    At each SNR the rate adapter picks the coding mode, the frame
    success probability follows from the BER table, and the uplink
    simulator produces delivery/latency statistics — HD video needs
    every frame inside ~100 ms to be watchable.
    """
    adapter = RateAdapter(bit_rate_bps=link_rate_bps,
                          payload_bytes=frame_bytes)
    ratios, latencies, modes = [], [], []
    for snr in snr_points_db:
        mode = adapter.select(float(snr))
        from ..phy import ber as ber_theory

        ber = float(ber_theory.ber_ask_table(float(snr)))
        p_frame = frame_success_probability(ber, frame_bytes, mode)
        frame_bits = mode.codec().frame_length_bits(frame_bytes)
        sim = UplinkSimulator(
            link_rate_bps=link_rate_bps, frame_bits=frame_bits,
            frame_success_probability=p_frame,
            rng=np.random.default_rng(seed))
        stats = sim.run(duration_s=10.0,
                        packet_interval_s=frame_interval_s,
                        packet_bytes=frame_bytes)
        ratios.append(stats.delivery_ratio)
        latencies.append(stats.p99_latency_s * 1e3)
        modes.append(mode.name)
    return StreamingResult(
        snr_points_db=tuple(float(s) for s in snr_points_db),
        delivery_ratios=tuple(ratios),
        p99_latencies_ms=tuple(latencies),
        modes=tuple(modes),
    )


def render_streaming(result: StreamingResult) -> str:
    """Streaming-quality table across link SNRs."""
    rows = [[f"{snr:.0f}", mode, f"{ratio:.1%}", f"{latency:.1f}"]
            for snr, mode, ratio, latency in zip(
                result.snr_points_db, result.modes,
                result.delivery_ratios, result.p99_latencies_ms)]
    return format_table(
        ["link SNR [dB]", "coding mode", "frames delivered",
         "p99 latency [ms]"],
        rows,
        title="Extension — 30 fps camera streaming through the MAC")
