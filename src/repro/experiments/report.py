"""Plain-text rendering helpers shared by the experiment modules."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["format_table", "format_series", "ascii_heatmap", "cdf_points"]


def format_table(headers: list[str], rows: list[list],
                 title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0 or (1e-3 <= abs(value) < 1e5):
            return f"{value:.3g}"
        return f"{value:.2e}"
    return str(value)


def format_series(x, y, x_label: str, y_label: str,
                  title: str | None = None) -> str:
    """Render paired series as a two-column table."""
    rows = [[xi, yi] for xi, yi in zip(x, y)]
    return format_table([x_label, y_label], rows, title=title)


def ascii_heatmap(grid: np.ndarray, low: float, high: float,
                  title: str | None = None) -> str:
    """Coarse ASCII rendering of a 2-D field (rows printed top-down).

    Values map onto a 10-step character ramp between ``low`` and
    ``high``; NaNs render as spaces.
    """
    ramp = " .:-=+*#%@"
    grid = np.asarray(grid, dtype=float)
    if high <= low:
        raise ValueError("need high > low")
    lines = [] if title is None else [title]
    for row in grid[::-1]:
        chars = []
        for v in row:
            if math.isnan(v):
                chars.append(" ")
                continue
            t = min(max((v - low) / (high - low), 0.0), 1.0)
            chars.append(ramp[min(int(t * len(ramp)), len(ramp) - 1)])
        lines.append("".join(chars))
    return "\n".join(lines)


def cdf_points(samples) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted values and cumulative probabilities."""
    x = np.sort(np.asarray(samples, dtype=float))
    if x.size == 0:
        raise ValueError("no samples")
    p = np.arange(1, x.size + 1) / x.size
    return x, p
