"""Fig. 6 / Eq. 1-4: the Time-Modulated Array's direction hashing (§7b).

Two nodes transmit on the same frequency channel from different
directions; the TMA's switched elements shift each arrival onto a
different harmonic of the switching frequency.  The experiment verifies
this at two levels: analytically (harmonic gains from Eq. 4) and in the
time domain (FFT of the switched-array output of Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.tma import TimeModulatedArray
from .report import format_table

__all__ = ["Fig6Result", "run", "render"]


@dataclass(frozen=True)
class Fig6Result:
    """Direction-to-harmonic mapping evidence."""

    arrival_degs: tuple[float, ...]
    dominant_harmonics: tuple[int, ...]
    image_suppressions_db: tuple[float, ...]
    spectrum_harmonic_bins: tuple[int, ...]
    """Per-arrival strongest harmonic measured from the time-domain FFT."""

    @property
    def directions_separated(self) -> bool:
        """Whether the two directions land on distinct harmonics."""
        return len(set(self.dominant_harmonics)) == len(self.dominant_harmonics)

    @property
    def analysis_matches_timedomain(self) -> bool:
        """Eq. 4 predictions vs the Eq. 1 time-domain simulation."""
        return self.dominant_harmonics == self.spectrum_harmonic_bins


def _measured_dominant_harmonic(tma: TimeModulatedArray, theta_rad: float,
                                sample_rate_hz: float, num_samples: int
                                ) -> int:
    """Strongest harmonic of a unit tone pushed through Eq. 1 + FFT."""
    x = np.ones(num_samples, dtype=np.complex128)
    y = tma.process(x, sample_rate_hz, theta_rad)
    spectrum = np.fft.fft(y) / num_samples
    freqs = np.fft.fftfreq(num_samples, d=1.0 / sample_rate_hz)
    # Collapse FFT bins onto harmonic orders of the switching rate.
    orders = np.round(freqs / tma.switching_rate_hz).astype(int)
    max_order = tma.num_elements
    powers = {}
    for m in range(-max_order, max_order + 1):
        mask = orders == m
        if mask.any():
            powers[m] = float(np.sum(np.abs(spectrum[mask]) ** 2))
    return max(powers, key=powers.get)


def run(arrival_degs=(0.0, 40.0), num_elements: int = 8,
        switching_rate_hz: float = 50e6) -> Fig6Result:
    """Check the hashing for a set of arrival directions.

    The default pair (0°, 40°) mirrors Fig. 6's two-arrow illustration:
    two co-channel signals from well-separated directions.
    """
    tma = TimeModulatedArray(num_elements=num_elements,
                             frequency_hz=24.125e9,
                             switching_rate_hz=switching_rate_hz)
    sample_rate = switching_rate_hz * tma.samples_per_period
    num_samples = tma.samples_per_period * 64
    dominant, suppression, measured = [], [], []
    for deg in arrival_degs:
        theta = np.radians(deg)
        dominant.append(tma.dominant_harmonic(theta))
        suppression.append(tma.image_suppression_db(theta))
        measured.append(_measured_dominant_harmonic(
            tma, theta, sample_rate, num_samples))
    return Fig6Result(
        arrival_degs=tuple(float(d) for d in arrival_degs),
        dominant_harmonics=tuple(dominant),
        image_suppressions_db=tuple(suppression),
        spectrum_harmonic_bins=tuple(measured),
    )


def render(result: Fig6Result) -> str:
    """Per-direction harmonic mapping table."""
    rows = [[f"{d:.0f}", m, mm, f"{s:.1f}"]
            for d, m, mm, s in zip(result.arrival_degs,
                                   result.dominant_harmonics,
                                   result.spectrum_harmonic_bins,
                                   result.image_suppressions_db)]
    table = format_table(
        ["arrival [deg]", "harmonic (Eq. 4)", "harmonic (FFT of Eq. 1)",
         "image suppression [dB]"],
        rows, title="Fig. 6 — TMA direction-to-harmonic hashing")
    checks = format_table(
        ["check", "value"],
        [
            ["directions on distinct harmonics",
             str(result.directions_separated)],
            ["analysis matches time domain",
             str(result.analysis_matches_timedomain)],
        ])
    return "\n\n".join([table, checks])
