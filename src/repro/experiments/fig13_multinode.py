"""Fig. 13: mean per-node SNR vs number of simultaneous nodes (§9.5).

Protocol: AP on one side of the room, N nodes at random locations and
orientations transmitting simultaneously, 100 runs, FDM across 25 MHz
channels with SDM (TMA) reuse once the band is full.

Published shape: the mean SNR decays only mildly with node count and
stays above ~29 dB even at 20 simultaneous nodes.

The sweep runs as a :mod:`repro.engine` campaign: one trial per
(node count, repetition) pair, each with its own child seed, so the
100-run protocol fans out across cores with the same statistics as the
serial default.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any

import numpy as np

from ..engine import Campaign, ResultStore, ShardExecutor
from ..network.network import MultiNodeNetwork
from ..sim.environment import default_lab_room
from .report import format_table

__all__ = ["Fig13Result", "run", "render", "NODE_COUNTS"]

NODE_COUNTS = (1, 2, 5, 10, 20)
"""The x-axis of the paper's Fig. 13."""


@dataclass(frozen=True)
class Fig13Result:
    """Mean-SINR samples per node count."""

    node_counts: tuple[int, ...]
    mean_sinr_db: np.ndarray
    std_sinr_db: np.ndarray

    @property
    def degradation_db(self) -> float:
        """SNR drop from the smallest to the largest node count."""
        return float(self.mean_sinr_db[0] - self.mean_sinr_db[-1])

    @property
    def sinr_at_max_nodes_db(self) -> float:
        """Mean SINR at the largest node count (paper: >29 dB at 20)."""
        return float(self.mean_sinr_db[-1])


def network_trial(rng: np.random.Generator, index: int,
                  node_counts: tuple[int, ...] = NODE_COUNTS,
                  trials_per_count: int = 30) -> dict[str, Any]:
    """One Fig. 13 trial: place N nodes, transmit simultaneously.

    The flat trial index maps onto the sweep as
    ``node_counts[index // trials_per_count]`` — the first
    ``trials_per_count`` trials run the smallest count, and so on.
    Each trial builds a fresh room and network from its own child
    generator, so a sample depends only on its seed, never on the
    trials (or shards) that ran before it.  Module-level so it pickles
    into :class:`~repro.engine.ProcessPool` workers.
    """
    count = int(node_counts[index // trials_per_count])
    network = MultiNodeNetwork(default_lab_room(), rng)
    snapshot = network.evaluate(count)
    return {"node_count": count,
            "mean_sinr_db": float(snapshot.mean_sinr_db)}


def run(seed: int = 0, node_counts=NODE_COUNTS,
        trials_per_count: int = 30,
        executor: ShardExecutor | None = None,
        num_shards: int | None = None,
        store: ResultStore | str | None = None) -> Fig13Result:
    """Sweep node counts with fresh random placements per trial.

    Runs as an engine campaign: serial by default, multi-core with
    ``executor=ProcessPool(...)``, resumable with ``store=``.  The
    per-count statistics depend only on ``seed`` and the sweep
    parameters.
    """
    counts = tuple(int(n) for n in node_counts)
    trial_fn = partial(network_trial, node_counts=counts,
                       trials_per_count=trials_per_count)
    if num_shards is None:
        num_shards = max(1, getattr(executor, "jobs", 1))
    outcome = Campaign(trial_fn, len(counts) * trials_per_count,
                       master_seed=seed, num_shards=num_shards,
                       executor=executor, store=store).run()
    samples = outcome.collect("mean_sinr_db").reshape(
        len(counts), trials_per_count)
    means = np.asarray([row.mean() for row in samples])
    stds = np.asarray([row.std() for row in samples])
    return Fig13Result(node_counts=counts,
                       mean_sinr_db=means, std_sinr_db=stds)


def render(result: Fig13Result) -> str:
    """Node-count sweep table plus the headline claim check."""
    rows = [[n, f"{m:.1f}", f"{s:.1f}"]
            for n, m, s in zip(result.node_counts, result.mean_sinr_db,
                               result.std_sinr_db)]
    table = format_table(
        ["simultaneous nodes", "mean SNR [dB]", "std [dB]"],
        rows, title="Fig. 13 — multi-node performance")
    summary = format_table(
        ["metric", "value", "paper"],
        [
            ["mean SNR at 20 nodes [dB]",
             f"{result.sinr_at_max_nodes_db:.1f}", ">29"],
            ["1 -> 20 node degradation [dB]",
             f"{result.degradation_db:.1f}", "slight"],
        ],
        title="Multi-node summary")
    return "\n\n".join([table, summary])
