"""Fig. 13: mean per-node SNR vs number of simultaneous nodes (§9.5).

Protocol: AP on one side of the room, N nodes at random locations and
orientations transmitting simultaneously, 100 runs, FDM across 25 MHz
channels with SDM (TMA) reuse once the band is full.

Published shape: the mean SNR decays only mildly with node count and
stays above ~29 dB even at 20 simultaneous nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.network import MultiNodeNetwork
from ..sim.environment import default_lab_room
from .report import format_table

__all__ = ["Fig13Result", "run", "render", "NODE_COUNTS"]

NODE_COUNTS = (1, 2, 5, 10, 20)
"""The x-axis of the paper's Fig. 13."""


@dataclass(frozen=True)
class Fig13Result:
    """Mean-SINR samples per node count."""

    node_counts: tuple[int, ...]
    mean_sinr_db: np.ndarray
    std_sinr_db: np.ndarray

    @property
    def degradation_db(self) -> float:
        """SNR drop from the smallest to the largest node count."""
        return float(self.mean_sinr_db[0] - self.mean_sinr_db[-1])

    @property
    def sinr_at_max_nodes_db(self) -> float:
        """Mean SINR at the largest node count (paper: >29 dB at 20)."""
        return float(self.mean_sinr_db[-1])


def run(seed: int = 0, node_counts=NODE_COUNTS,
        trials_per_count: int = 30) -> Fig13Result:
    """Sweep node counts with fresh random placements per trial."""
    rng = np.random.default_rng(seed)
    network = MultiNodeNetwork(default_lab_room(), rng)
    samples = network.sweep_node_counts(node_counts, trials_per_count)
    means = np.asarray([samples[n].mean() for n in node_counts])
    stds = np.asarray([samples[n].std() for n in node_counts])
    return Fig13Result(node_counts=tuple(int(n) for n in node_counts),
                       mean_sinr_db=means, std_sinr_db=stds)


def render(result: Fig13Result) -> str:
    """Node-count sweep table plus the headline claim check."""
    rows = [[n, f"{m:.1f}", f"{s:.1f}"]
            for n, m, s in zip(result.node_counts, result.mean_sinr_db,
                               result.std_sinr_db)]
    table = format_table(
        ["simultaneous nodes", "mean SNR [dB]", "std [dB]"],
        rows, title="Fig. 13 — multi-node performance")
    summary = format_table(
        ["metric", "value", "paper"],
        [
            ["mean SNR at 20 nodes [dB]",
             f"{result.sinr_at_max_nodes_db:.1f}", ">29"],
            ["1 -> 20 node degradation [dB]",
             f"{result.degradation_db:.1f}", "slight"],
        ],
        title="Multi-node summary")
    return "\n\n".join([table, summary])
