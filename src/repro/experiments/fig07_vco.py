"""Fig. 7 + section 9.1 microbenchmarks: VCO tuning and node headline numbers.

Paper facts reproduced here:
* VCO covers 23.95-24.25 GHz over 3.5-4.9 V — the whole 24 GHz ISM band.
* Small voltage changes give the small frequency nudges joint ASK-FSK needs.
* Switch limits the node to 100 Mbps; node draws 1.1 W -> 11 nJ/bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import ISM_24GHZ_HIGH_HZ, ISM_24GHZ_LOW_HZ
from ..hardware.chains import NodeHardware
from ..hardware.vco import HMC533VCO
from .report import format_series, format_table

__all__ = ["Fig7Result", "run", "render"]


@dataclass(frozen=True)
class Fig7Result:
    """Tuning curve plus the section 9.1 microbenchmark numbers."""

    voltages_v: np.ndarray
    frequencies_hz: np.ndarray
    covers_ism_band: bool
    max_bitrate_bps: float
    node_power_w: float
    energy_per_bit_j: float
    fsk_voltage_step_v: float

    @property
    def frequency_span_hz(self) -> float:
        """Total tuning span."""
        return float(self.frequencies_hz[-1] - self.frequencies_hz[0])


def run(num_points: int = 31,
        fsk_deviation_hz: float = 500e3) -> Fig7Result:
    """Sweep the VCO model and collect the node microbenchmarks.

    ``fsk_deviation_hz`` is used to report how small a control-voltage
    step implements the joint ASK-FSK frequency nudge at mid-band.
    """
    vco = HMC533VCO()
    voltages = np.linspace(3.4, 5.0, num_points)
    freqs = vco.frequency_hz(voltages)
    hw = NodeHardware()
    mid_v = 0.5 * (vco.v_min + vco.v_max)
    sensitivity = vco.tuning_sensitivity_hz_per_v(mid_v)
    return Fig7Result(
        voltages_v=voltages,
        frequencies_hz=np.asarray(freqs),
        covers_ism_band=vco.covers_ism_band(),
        max_bitrate_bps=hw.max_bitrate_bps,
        node_power_w=hw.total_power_w,
        energy_per_bit_j=hw.energy_per_bit_j(),
        fsk_voltage_step_v=fsk_deviation_hz / sensitivity,
    )


def render(result: Fig7Result) -> str:
    """Text rendering: the tuning curve plus the microbenchmark block."""
    curve = format_series(
        [f"{v:.2f}" for v in result.voltages_v],
        [f"{f/1e9:.4f}" for f in result.frequencies_hz],
        "tuning voltage [V]", "frequency [GHz]",
        title="Fig. 7 — VCO carrier frequency vs control voltage")
    micro = format_table(
        ["metric", "value", "paper"],
        [
            ["covers 24 GHz ISM band", str(result.covers_ism_band), "yes"],
            ["max bitrate [Mbps]", result.max_bitrate_bps / 1e6, 100],
            ["node power [W]", result.node_power_w, 1.1],
            ["energy/bit [nJ]", result.energy_per_bit_j * 1e9, 11],
            ["FSK nudge step [mV]", result.fsk_voltage_step_v * 1e3, "small"],
        ],
        title="Section 9.1 microbenchmarks")
    band = (f"ISM band: {ISM_24GHZ_LOW_HZ/1e9:.2f}-"
            f"{ISM_24GHZ_HIGH_HZ/1e9:.2f} GHz")
    return "\n\n".join([curve, micro, band])
