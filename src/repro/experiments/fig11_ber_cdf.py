"""Fig. 11: BER CDF with and without OTAM (section 9.3).

Method, verbatim from the paper: measure SNR at 30 random placements
(locations, heights, orientations) in the same testbed, then "compute the
BER by substituting the SNR measurements into standard BER tables based
on the ASK modulation".  We do exactly that with the simulated SNRs.

Published shape: without OTAM median BER ~1e-5 and 90th percentile ~0.3;
with OTAM median ~1e-12 and 90th percentile ~1e-3.

The sweep runs as a :mod:`repro.engine` campaign: each placement is one
independently-seeded trial, so ``run(..., executor=ProcessPool(4))``
fans the 30 placements out across cores (or thousands of placements,
for the dense-deployment studies the paper motivates) with results
identical to the serial default.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any

import numpy as np

from ..core.link import OtamLink
from ..engine import Campaign, ResultStore, ShardExecutor
from ..sim.environment import Blocker, default_lab_room
from ..sim.geometry import Point
from ..sim.placement import PlacementSampler
from .report import cdf_points, format_table

__all__ = ["Fig11Result", "run", "render"]

#: The paper floors its CDF axis at 1e-15 ("<10^-15" bucket).
BER_FLOOR = 1e-15


@dataclass(frozen=True)
class Fig11Result:
    """Per-placement BERs for both scenarios."""

    ber_with_otam: np.ndarray
    ber_without_otam: np.ndarray

    def median_with(self) -> float:
        """Median BER with OTAM."""
        return float(np.median(self.ber_with_otam))

    def median_without(self) -> float:
        """Median BER without OTAM."""
        return float(np.median(self.ber_without_otam))

    def p90_with(self) -> float:
        """90th percentile BER with OTAM."""
        return float(np.percentile(self.ber_with_otam, 90))

    def p90_without(self) -> float:
        """90th percentile BER without OTAM."""
        return float(np.percentile(self.ber_without_otam, 90))


def placement_trial(rng: np.random.Generator, index: int,
                    blocker_position: tuple[float, float] = (2.0, 1.2),
                    num_carriers: int = 3) -> dict[str, Any]:
    """One Fig. 11 trial: a random placement's BER for both scenarios.

    A person stands at ``blocker_position`` for the whole experiment,
    so placements whose LoS crosses them are blocked and the rest are
    clear — the mixture that produces the paper's long-tailed
    without-OTAM CDF.  BER is averaged over ``num_carriers`` carriers —
    each placement's channel was measured with frequency diversity, as
    in Fig. 10.  Module-level (and closed over only picklable
    parameters) so it runs under a :class:`~repro.engine.ProcessPool`.
    """
    room = default_lab_room()
    room.add_blocker(Blocker(Point(*blocker_position)))
    placement = PlacementSampler(room, rng).sample()
    carriers = np.linspace(24.0e9, 24.25e9, num_carriers + 2)[1:-1]
    ber_w, ber_wo = [], []
    for carrier in carriers:
        breakdown = OtamLink(placement=placement, room=room,
                             frequency_hz=float(carrier)).snr_breakdown()
        ber_w.append(breakdown.ber_with_otam())
        ber_wo.append(breakdown.ber_without_otam())
    return {
        "ber_with": max(float(np.mean(ber_w)), BER_FLOOR),
        "ber_without": max(float(np.mean(ber_wo)), BER_FLOOR),
    }


def run(seed: int = 0, num_placements: int = 30,
        blocker_position: tuple[float, float] = (2.0, 1.2),
        num_carriers: int = 3,
        executor: ShardExecutor | None = None,
        num_shards: int | None = None,
        store: ResultStore | str | None = None) -> Fig11Result:
    """Sample placements, convert SNR to BER via the closed-form tables.

    Runs as an engine campaign: serial by default, multi-core with
    ``executor=ProcessPool(...)``, resumable with ``store=``.  Results
    depend only on ``seed`` (and the sweep parameters), never on the
    executor or shard count.
    """
    trial_fn = partial(placement_trial,
                       blocker_position=(float(blocker_position[0]),
                                         float(blocker_position[1])),
                       num_carriers=num_carriers)
    if num_shards is None:
        num_shards = max(1, getattr(executor, "jobs", 1))
    outcome = Campaign(trial_fn, num_placements, master_seed=seed,
                       num_shards=num_shards, executor=executor,
                       store=store).run()
    return Fig11Result(
        ber_with_otam=outcome.collect("ber_with"),
        ber_without_otam=outcome.collect("ber_without"))


def render(result: Fig11Result) -> str:
    """CDF listing plus the paper's percentile comparisons."""
    x_w, p_w = cdf_points(result.ber_with_otam)
    x_wo, p_wo = cdf_points(result.ber_without_otam)
    rows = [[f"{b:.1e}", f"{p:.2f}"] for b, p in zip(x_w, p_w)]
    cdf_with = format_table(["BER", "CDF"], rows,
                            title="Fig. 11 — BER CDF with OTAM")
    rows = [[f"{b:.1e}", f"{p:.2f}"] for b, p in zip(x_wo, p_wo)]
    cdf_without = format_table(["BER", "CDF"], rows,
                               title="Fig. 11 — BER CDF without OTAM")
    stats = format_table(
        ["percentile", "with OTAM", "without OTAM",
         "paper (with)", "paper (without)"],
        [
            ["median", f"{result.median_with():.1e}",
             f"{result.median_without():.1e}", "1e-12", "1e-5"],
            ["90th", f"{result.p90_with():.1e}",
             f"{result.p90_without():.1e}", "1e-3", "0.3"],
        ],
        title="Percentile comparison")
    return "\n\n".join([stats, cdf_with, cdf_without])
