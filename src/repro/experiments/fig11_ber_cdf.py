"""Fig. 11: BER CDF with and without OTAM (section 9.3).

Method, verbatim from the paper: measure SNR at 30 random placements
(locations, heights, orientations) in the same testbed, then "compute the
BER by substituting the SNR measurements into standard BER tables based
on the ASK modulation".  We do exactly that with the simulated SNRs.

Published shape: without OTAM median BER ~1e-5 and 90th percentile ~0.3;
with OTAM median ~1e-12 and 90th percentile ~1e-3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.link import OtamLink
from ..sim.environment import Blocker, default_lab_room
from ..sim.geometry import Point
from ..sim.placement import PlacementSampler
from .report import cdf_points, format_table

__all__ = ["Fig11Result", "run", "render"]

#: The paper floors its CDF axis at 1e-15 ("<10^-15" bucket).
BER_FLOOR = 1e-15


@dataclass(frozen=True)
class Fig11Result:
    """Per-placement BERs for both scenarios."""

    ber_with_otam: np.ndarray
    ber_without_otam: np.ndarray

    def median_with(self) -> float:
        """Median BER with OTAM."""
        return float(np.median(self.ber_with_otam))

    def median_without(self) -> float:
        """Median BER without OTAM."""
        return float(np.median(self.ber_without_otam))

    def p90_with(self) -> float:
        """90th percentile BER with OTAM."""
        return float(np.percentile(self.ber_with_otam, 90))

    def p90_without(self) -> float:
        """90th percentile BER without OTAM."""
        return float(np.percentile(self.ber_without_otam, 90))


def run(seed: int = 0, num_placements: int = 30,
        blocker_position: tuple[float, float] = (2.0, 1.2),
        num_carriers: int = 3) -> Fig11Result:
    """Sample placements, convert SNR to BER via the closed-form tables.

    Same testbed as Fig. 10: a person stands at ``blocker_position``
    for the whole experiment, so the placements whose LoS crosses them
    are blocked and the rest are clear — the mixture that produces the
    paper's long-tailed without-OTAM CDF.
    """
    rng = np.random.default_rng(seed)
    room = default_lab_room()
    room.add_blocker(Blocker(Point(*blocker_position)))
    sampler = PlacementSampler(room, rng)
    with_otam, without = [], []
    carriers = np.linspace(24.0e9, 24.25e9, num_carriers + 2)[1:-1]
    for i in range(num_placements):
        placement = sampler.sample()
        # Average BER over carriers — each placement's channel was
        # measured with frequency diversity, as in Fig. 10.
        ber_w, ber_wo = [], []
        for carrier in carriers:
            breakdown = OtamLink(placement=placement, room=room,
                                 frequency_hz=float(carrier)).snr_breakdown()
            ber_w.append(breakdown.ber_with_otam())
            ber_wo.append(breakdown.ber_without_otam())
        with_otam.append(max(float(np.mean(ber_w)), BER_FLOOR))
        without.append(max(float(np.mean(ber_wo)), BER_FLOOR))
    room.clear_blockers()
    return Fig11Result(ber_with_otam=np.asarray(with_otam),
                       ber_without_otam=np.asarray(without))


def render(result: Fig11Result) -> str:
    """CDF listing plus the paper's percentile comparisons."""
    x_w, p_w = cdf_points(result.ber_with_otam)
    x_wo, p_wo = cdf_points(result.ber_without_otam)
    rows = [[f"{b:.1e}", f"{p:.2f}"] for b, p in zip(x_w, p_w)]
    cdf_with = format_table(["BER", "CDF"], rows,
                            title="Fig. 11 — BER CDF with OTAM")
    rows = [[f"{b:.1e}", f"{p:.2f}"] for b, p in zip(x_wo, p_wo)]
    cdf_without = format_table(["BER", "CDF"], rows,
                               title="Fig. 11 — BER CDF without OTAM")
    stats = format_table(
        ["percentile", "with OTAM", "without OTAM",
         "paper (with)", "paper (without)"],
        [
            ["median", f"{result.median_with():.1e}",
             f"{result.median_without():.1e}", "1e-12", "1e-5"],
            ["90th", f"{result.p90_with():.1e}",
             f"{result.p90_without():.1e}", "1e-3", "0.3"],
        ],
        title="Percentile comparison")
    return "\n\n".join([stats, cdf_with, cdf_without])
