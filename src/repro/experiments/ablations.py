"""Ablations for the design choices the paper argues for.

1. **Orthogonal vs non-orthogonal beams** (§6.2, Fig. 5): how often the
   two beams' path losses coincide under each design.
2. **ASK-only vs FSK-only vs joint** (§6.3): decode success across
   placements per decoding strategy.
3. **OTAM vs beam-search baselines** (§3, §6): alignment overhead and
   node-side energy for exhaustive / hierarchical / feedback schemes
   versus OTAM's zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..antenna.orthogonal import (
    OrthogonalBeamPair,
    ParametricBeam,
    measured_mmx_beams,
)
from ..antenna.phased_array import PhasedArray
from ..baselines.beam_search import (
    ExhaustiveBeamSearch,
    FeedbackBeamSelection,
    HierarchicalBeamSearch,
)
from ..channel.multipath import beam_channel_gain
from ..channel.raytrace import trace_paths
from ..core.link import OtamLink
from ..sim.environment import default_lab_room
from ..sim.mobility import los_blocker_between
from ..sim.placement import PlacementSampler
from ..units import amplitude_to_db, linear_to_db
from .report import format_table

__all__ = [
    "OrthogonalityAblation",
    "ModulationAblation",
    "BeamSearchAblation",
    "OracleComparison",
    "run_orthogonality",
    "run_modulation",
    "run_beam_search",
    "run_oracle_comparison",
    "render",
    "render_oracle",
]

#: Levels within this gap count as "the same loss" (section 6.3).
AMBIGUITY_THRESHOLD_DB = 1.0

#: Minimum decision SNR for a branch to decode reliably.
DECODE_SNR_DB = 10.0


def _non_orthogonal_beams() -> OrthogonalBeamPair:
    """Fig. 5(a)'s bad design: Beam 0 is a single lobe squinted to +30°.

    Same pattern fidelity as the measured mmX pair (Gaussian lobes with
    an -18 dB floor), but Beam 0 is one lobe at +30° instead of two
    mutually-nulled arms: the lobes overlap heavily around +15°, where
    the AP sees equal losses, and nothing covers the -30° side at all.
    """
    beam1 = ParametricBeam(lobes=((0.0, 40.0),))
    beam0 = ParametricBeam(lobes=((30.0, 40.0),))
    return OrthogonalBeamPair(beam1=beam1, beam0=beam0, peak_gain_dbi=8.0)


@dataclass(frozen=True)
class OrthogonalityAblation:
    """Ambiguity and coverage angle for the two beam designs."""

    ambiguous_fraction_orthogonal: float
    ambiguous_fraction_non_orthogonal: float
    coverage_angle_orthogonal_deg: float
    coverage_angle_non_orthogonal_deg: float
    num_placements: int

    @property
    def orthogonal_wins(self) -> bool:
        """Orthogonal beams: less ambiguity AND a wider coverage angle.

        Exactly section 6.2's sentence: "using the orthogonal beam
        pattern not only reduces the probability of getting similar
        losses for the two beams but also increases the coverage
        angle."
        """
        return (self.ambiguous_fraction_orthogonal
                <= self.ambiguous_fraction_non_orthogonal
                and self.coverage_angle_orthogonal_deg
                > self.coverage_angle_non_orthogonal_deg)


def _coverage_angle_deg(beams: OrthogonalBeamPair,
                        threshold_db: float = -10.0) -> float:
    """Angular span where the better of the two beams is within
    ``threshold_db`` of the pattern peak — the design's field of view."""
    grid = np.linspace(-np.pi, np.pi, 1441)
    best = np.maximum(
        amplitude_to_db(np.maximum(np.asarray(beams.field(1, grid)), 1e-9)),
        amplitude_to_db(np.maximum(np.asarray(beams.field(0, grid)), 1e-9)))
    step = np.degrees(grid[1] - grid[0])
    return float(np.count_nonzero(best >= threshold_db) * step)


def run_orthogonality(seed: int = 0,
                      num_placements: int = 200) -> OrthogonalityAblation:
    """Compare ambiguity and coverage across beam designs.

    Ambiguity is measured in-room with the Fig. 10 protocol (persistent
    person in the node-AP line-of-sight); the coverage comparison is the
    patterns' combined field of view, which is what section 6.2's
    "increases the coverage angle" refers to.
    """
    rng = np.random.default_rng(seed)
    room = default_lab_room()
    sampler = PlacementSampler(room, rng)
    designs = {
        "orthogonal": measured_mmx_beams(),
        "non_orthogonal": _non_orthogonal_beams(),
    }
    placements = sampler.sample_many(num_placements)
    blockers = [los_blocker_between(p.node_position, p.ap_position,
                                    fraction=float(rng.uniform(0.3, 0.7)),
                                    rng=rng)
                for p in placements]
    fractions = {}
    for name, beams in designs.items():
        ambiguous = 0
        for placement, blocker in zip(placements, blockers):
            room.clear_blockers()
            room.add_blocker(blocker)
            link = OtamLink(placement=placement, room=room, beams=beams)
            breakdown = link.snr_breakdown()
            if breakdown.ask_contrast_db < AMBIGUITY_THRESHOLD_DB:
                ambiguous += 1
        fractions[name] = ambiguous / num_placements
    room.clear_blockers()
    return OrthogonalityAblation(
        ambiguous_fraction_orthogonal=fractions["orthogonal"],
        ambiguous_fraction_non_orthogonal=fractions["non_orthogonal"],
        coverage_angle_orthogonal_deg=_coverage_angle_deg(
            designs["orthogonal"]),
        coverage_angle_non_orthogonal_deg=_coverage_angle_deg(
            designs["non_orthogonal"]),
        num_placements=num_placements,
    )


@dataclass(frozen=True)
class ModulationAblation:
    """Decode-success rates per decoding strategy."""

    success_ask_only: float
    success_fsk_only: float
    success_joint: float
    num_placements: int

    @property
    def joint_dominates(self) -> bool:
        """Joint decoding succeeds at least as often as either alone."""
        return (self.success_joint >= self.success_ask_only
                and self.success_joint >= self.success_fsk_only)


def run_modulation(seed: int = 0,
                   num_placements: int = 200) -> ModulationAblation:
    """Which placements each decoding strategy can serve.

    A strategy 'succeeds' at a placement when its decision SNR clears
    :data:`DECODE_SNR_DB` — ASK needs level contrast, FSK needs both
    tones detectable, joint takes the better branch (§6.3's argument).
    """
    rng = np.random.default_rng(seed)
    room = default_lab_room()
    sampler = PlacementSampler(room, rng)
    ask_ok = fsk_ok = joint_ok = 0
    for i in range(num_placements):
        placement = sampler.sample()
        room.clear_blockers()
        if rng.random() < 0.5:
            room.add_blocker(los_blocker_between(
                placement.node_position, placement.ap_position,
                fraction=float(rng.uniform(0.3, 0.7)), rng=rng))
        breakdown = OtamLink(placement=placement, room=room).snr_breakdown()
        ask = breakdown.ask_snr_db >= DECODE_SNR_DB
        fsk = breakdown.fsk_snr_db >= DECODE_SNR_DB
        ask_ok += ask
        fsk_ok += fsk
        joint_ok += ask or fsk
    room.clear_blockers()
    return ModulationAblation(
        success_ask_only=ask_ok / num_placements,
        success_fsk_only=fsk_ok / num_placements,
        success_joint=joint_ok / num_placements,
        num_placements=num_placements,
    )


@dataclass(frozen=True)
class BeamSearchAblation:
    """Alignment costs per beam-management scheme."""

    scheme_names: tuple[str, ...]
    probes: tuple[int, ...]
    feedback_messages: tuple[int, ...]
    node_energy_mj: tuple[float, ...]
    hardware_power_w: tuple[float, ...]
    hardware_cost_usd: tuple[float, ...]

    @property
    def otam_is_free(self) -> bool:
        """OTAM does zero probing and zero feedback."""
        idx = self.scheme_names.index("OTAM (mmX)")
        return self.probes[idx] == 0 and self.feedback_messages[idx] == 0


def run_beam_search(num_array_elements: int = 16,
                    probe_duration_s: float = 50e-6,
                    feedback_duration_s: float = 100e-6,
                    tx_power_w: float = 1.1,
                    rx_power_w: float = 0.5) -> BeamSearchAblation:
    """Tally per-realignment cost for each scheme.

    The channel metric is synthetic (a single best direction with a
    raised-cosine profile) — search *cost* depends only on the search
    trajectory, not on which direction wins.
    """
    array = PhasedArray(num_array_elements, 24.125e9)
    best_direction = np.radians(20.0)

    def metric(direction_rad: float) -> float:
        return 30.0 * float(np.cos(direction_rad - best_direction)) ** 2

    schemes = []
    exhaustive = ExhaustiveBeamSearch(array).search(metric)
    schemes.append(("Exhaustive sweep", exhaustive,
                    array.power_consumption_w, array.cost_usd))
    hierarchical = HierarchicalBeamSearch(array).search(metric)
    schemes.append(("Hierarchical search", hierarchical,
                    array.power_consumption_w, array.cost_usd))
    feedback = FeedbackBeamSelection(
        np.radians([-30.0, 0.0, 30.0])).select(metric)
    schemes.append(("Fixed beams + feedback", feedback, 0.0, 15.0))

    names, probes, feedbacks, energies, powers, costs = [], [], [], [], [], []
    for name, result, hw_power, hw_cost in schemes:
        names.append(name)
        probes.append(result.probes)
        feedbacks.append(result.feedback_messages)
        energies.append(result.node_energy_j(
            probe_duration_s, feedback_duration_s,
            tx_power_w, rx_power_w) * 1e3)
        powers.append(hw_power)
        costs.append(hw_cost)
    # OTAM: no probes, no feedback, no phased array.
    names.append("OTAM (mmX)")
    probes.append(0)
    feedbacks.append(0)
    energies.append(0.0)
    powers.append(0.0)
    costs.append(15.0)
    return BeamSearchAblation(
        scheme_names=tuple(names),
        probes=tuple(probes),
        feedback_messages=tuple(feedbacks),
        node_energy_mj=tuple(energies),
        hardware_power_w=tuple(powers),
        hardware_cost_usd=tuple(costs),
    )


def render(orthogonality: OrthogonalityAblation,
           modulation: ModulationAblation,
           beam_search: BeamSearchAblation) -> str:
    """All three ablations as one report."""
    t1 = format_table(
        ["beam design", "ambiguous-amplitude fraction",
         "coverage angle [deg]"],
        [
            ["orthogonal (mmX)",
             f"{orthogonality.ambiguous_fraction_orthogonal:.1%}",
             f"{orthogonality.coverage_angle_orthogonal_deg:.0f}"],
            ["non-orthogonal (Fig. 5a)",
             f"{orthogonality.ambiguous_fraction_non_orthogonal:.1%}",
             f"{orthogonality.coverage_angle_non_orthogonal_deg:.0f}"],
        ],
        title="Ablation 1 — orthogonal beam design (section 6.2)")
    t2 = format_table(
        ["decoding strategy", "placements decodable"],
        [
            ["ASK only", f"{modulation.success_ask_only:.1%}"],
            ["FSK only", f"{modulation.success_fsk_only:.1%}"],
            ["joint ASK-FSK", f"{modulation.success_joint:.1%}"],
        ],
        title="Ablation 2 — joint modulation (section 6.3)")
    rows = [[n, p, f, f"{e:.3g}", f"{w:.2g}", f"{c:,.0f}"]
            for n, p, f, e, w, c in zip(
                beam_search.scheme_names, beam_search.probes,
                beam_search.feedback_messages, beam_search.node_energy_mj,
                beam_search.hardware_power_w,
                beam_search.hardware_cost_usd)]
    t3 = format_table(
        ["scheme", "probes", "feedback msgs", "node energy [mJ]",
         "array power [W]", "array cost [$]"],
        rows, title="Ablation 3 — beam management cost per realignment")
    return "\n\n".join([t1, t2, t3])


# --- Ablation 4: OTAM vs an oracle phased array ------------------------------

@dataclass(frozen=True)
class OracleComparison:
    """What mmX gives up in peak SNR for its simplicity.

    The oracle is a 16-element phased-array node that always steers its
    (already-searched) best codebook beam — the upper bound any beam
    search can reach.  The comparison quantifies the paper's implicit
    trade: the phased array buys array gain, at hundreds of dollars,
    watts, and a continuous search the oracle gets for free here.
    """

    median_oracle_advantage_db: float
    p90_oracle_advantage_db: float
    otam_outage: float
    oracle_outage: float
    oracle_array_cost_usd: float
    oracle_array_power_w: float
    num_placements: int


def run_oracle_comparison(seed: int = 0, num_placements: int = 120,
                          num_elements: int = 16) -> OracleComparison:
    """Per-placement SNR: OTAM vs the best steered phased-array beam."""
    rng = np.random.default_rng(seed)
    room = default_lab_room()
    sampler = PlacementSampler(room, rng)
    array = PhasedArray(num_elements, 24.125e9)
    directions = array.codebook_directions_rad()
    # Precompute steered patterns once; they are placement-independent.
    steered = [array.steered_pattern(d) for d in directions]
    array_peak_gain_dbi = float(linear_to_db(num_elements)) + 5.0
    mmx_peak_gain_dbi = 8.0

    advantages, otam_out, oracle_out = [], 0, 0
    for i in range(num_placements):
        placement = sampler.sample()
        room.clear_blockers()
        if rng.random() < 0.5:
            room.add_blocker(los_blocker_between(
                placement.node_position, placement.ap_position,
                fraction=float(rng.uniform(0.3, 0.7)), rng=rng))
        link = OtamLink(placement=placement, room=room)
        breakdown = link.snr_breakdown()
        otam_snr = breakdown.otam_snr_db

        # Oracle: evaluate every codebook beam through the same traced
        # channel; take the best.  Gain above the mmX arrays' 8 dBi is
        # credited relative to the same EIRP budget.
        paths = trace_paths(placement.node_position, placement.ap_position,
                            room, max_bounces=link.max_bounces)
        best_level = float("-inf")
        for pattern in steered:
            gain = beam_channel_gain(
                paths, tx_field=pattern.field,
                rx_field=link.ap_element.field,
                tx_orientation_rad=placement.node_orientation_rad,
                rx_orientation_rad=placement.ap_orientation_rad,
                frequency_hz=link.frequency_hz)
            if abs(gain) > 0:
                level = (link.eirp_dbm
                         + (array_peak_gain_dbi - mmx_peak_gain_dbi)
                         + link.ap_gain_dbi - link.implementation_loss_db
                         + float(amplitude_to_db(abs(gain))))
                best_level = max(best_level, level)
        oracle_snr = best_level - breakdown.noise_dbm
        advantages.append(oracle_snr - otam_snr)
        otam_out += otam_snr < 10.0
        oracle_out += oracle_snr < 10.0
    room.clear_blockers()
    return OracleComparison(
        median_oracle_advantage_db=float(np.median(advantages)),
        p90_oracle_advantage_db=float(np.percentile(advantages, 90)),
        otam_outage=otam_out / num_placements,
        oracle_outage=oracle_out / num_placements,
        oracle_array_cost_usd=array.cost_usd,
        oracle_array_power_w=array.power_consumption_w,
        num_placements=num_placements,
    )


def render_oracle(result: OracleComparison) -> str:
    """The simplicity-vs-gain trade in one table."""
    return format_table(
        ["metric", "value"],
        [
            ["median oracle SNR advantage [dB]",
             f"{result.median_oracle_advantage_db:.1f}"],
            ["90th-pct oracle advantage [dB]",
             f"{result.p90_oracle_advantage_db:.1f}"],
            ["OTAM outage (<10 dB)", f"{result.otam_outage:.1%}"],
            ["oracle outage (<10 dB)", f"{result.oracle_outage:.1%}"],
            ["oracle array cost [$]",
             f"{result.oracle_array_cost_usd:,.0f}"],
            ["oracle array power [W]",
             f"{result.oracle_array_power_w:.1f}"],
            ["...plus beam search", "continuous probes + AP feedback"],
        ],
        title="Ablation 4 — OTAM vs an ideal 16-element phased array")
