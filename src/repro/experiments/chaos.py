"""Chaos-engineering experiment: fault injection vs the recovery ladder.

Not a paper figure — a robustness extension: §9.3/§9.4 show mmX
surviving *one* fault at a time (a blocker, an off-axis placement);
this experiment injects the full fault taxonomy of
:mod:`repro.faults` on a schedule and measures whether the
:class:`repro.resilience.LinkSupervisor` actually recovers, against a
frozen static baseline under bit-identical faults.

``run`` executes one named scenario; ``run_all`` sweeps every scenario
registered in :data:`repro.faults.SCENARIOS` from one master seed.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from functools import partial
from typing import Any

import numpy as np

from ..cluster import FailoverResult
from ..faults import scenario_injector
from ..resilience import ChaosResult, ChaosSimulation
from ..telemetry import Recorder, TelemetryRecorder, TelemetrySnapshot

__all__ = ["ChaosRunResult", "FailoverRunResult", "run", "run_all",
           "run_failover", "render", "render_all", "render_failover",
           "scenario_trial"]

DEFAULT_DISTANCE_M = 4.0
"""Node-AP distance for the chaos placement: mid-room, facing, well
inside Fig. 12's working range — faults, not geometry, set the SNR."""


@dataclass(frozen=True)
class ChaosRunResult:
    """One scenario's adaptive-vs-static outcome plus headline numbers."""

    scenario: str
    seed: int
    duration_s: float
    result: ChaosResult

    @property
    def delivery_gain(self) -> float:
        """Adaptive minus static delivery ratio."""
        return self.result.delivery_gain

    @property
    def recovered(self) -> bool:
        """Whether adaptive SNR returned to baseline after the faults."""
        return self.result.recovered()

    def action_counts(self) -> dict[str, int]:
        """How many times each recovery-ladder rung fired."""
        return dict(Counter(a.policy for a in self.result.actions))


def _facing_link(distance_m: float):
    """A facing node at ``distance_m`` in the default lab room."""
    from ..core.link import OtamLink
    from ..sim.environment import default_lab_room
    from ..sim.geometry import Point, angle_of
    from ..sim.placement import Placement

    room = default_lab_room()
    ap = Point(room.width_m / 2.0, 0.15)
    node = Point(room.width_m / 2.0, 0.15 + distance_m)
    if not room.contains(node, margin=0.1):
        raise ValueError("distance does not fit in the lab room")
    placement = Placement(node, angle_of(node, ap), ap, math.pi / 2)
    return OtamLink(placement=placement, room=room)


def run(scenario: str = "kitchen-sink", seed: int = 0,
        duration_s: float = 30.0, quiet_tail_s: float = 3.0,
        distance_m: float = DEFAULT_DISTANCE_M,
        time_step_s: float = 0.1,
        telemetry: TelemetryRecorder | None = None) -> ChaosRunResult:
    """One chaos run: a named fault scenario against both policies.

    Everything — the fault schedule, the supervisor's backoff jitter —
    derives from ``seed``, so the whole result regenerates
    bit-identically.  ``quiet_tail_s`` keeps the end of the run
    fault-free so post-fault recovery is measurable.  ``telemetry``
    (optional) wraps the run in a ``chaos.scenario`` span and collects
    the ``chaos.*`` / ``resilience.*`` families for export.
    """
    injector = scenario_injector(scenario, master_seed=seed)
    sim = ChaosSimulation(_facing_link(distance_m), injector,
                          time_step_s=time_step_s,
                          telemetry=telemetry)
    tel = sim.telemetry
    with tel.span("chaos.scenario", scenario=scenario, seed=seed):
        result = sim.run(duration_s, quiet_tail_s=quiet_tail_s)
    return ChaosRunResult(scenario=scenario, seed=seed,
                          duration_s=duration_s, result=result)


def scenario_trial(rng: np.random.Generator, index: int,
                   scenario_names: tuple[str, ...] = (),
                   seed: int = 0, duration_s: float = 30.0,
                   quiet_tail_s: float = 3.0,
                   distance_m: float = DEFAULT_DISTANCE_M,
                   record_telemetry: bool = False) -> dict[str, Any]:
    """One chaos sweep trial: a single named scenario, worker-side.

    The engine's per-trial ``rng`` is deliberately unused: every
    scenario re-derives its fault schedule and supervisor jitter from
    the sweep's master ``seed`` (exactly what :func:`run` does
    serially), so a parallel sweep produces bit-identical
    :class:`ChaosRunResult` objects.  When ``record_telemetry`` is set
    the scenario runs against a private worker
    :class:`~repro.telemetry.Recorder` whose contents come back as a
    :class:`~repro.telemetry.TelemetrySnapshot` for the driver to
    absorb.  Module-level so it pickles into
    :class:`~repro.engine.ProcessPool` workers.
    """
    del rng
    name = scenario_names[index]
    worker_tel = Recorder() if record_telemetry else None
    outcome = run(name, seed=seed, duration_s=duration_s,
                  quiet_tail_s=quiet_tail_s, distance_m=distance_m,
                  telemetry=worker_tel)
    snapshot = (TelemetrySnapshot.capture(worker_tel)
                if worker_tel is not None else None)
    return {"outcome": outcome, "telemetry": snapshot}


def run_all(seed: int = 0, duration_s: float = 30.0,
            quiet_tail_s: float = 3.0,
            distance_m: float = DEFAULT_DISTANCE_M,
            telemetry: TelemetryRecorder | None = None,
            executor=None,
            num_shards: int | None = None) -> list[ChaosRunResult]:
    """Every registered scenario from one master seed.

    One recorder (``telemetry``) spans the whole sweep, so scenario
    spans stack side by side on a single cumulative sim-time axis —
    exactly the shape the flamegraph export collapses.

    ``executor`` (optional) fans the scenarios out through
    :class:`repro.engine.Campaign` — e.g. ``ProcessPool(jobs=4)`` runs
    four scenarios at once.  Results are bit-identical to the serial
    sweep (each scenario derives everything from ``seed``), and each
    worker's telemetry snapshot is shifted onto the shared recorder's
    cumulative clock and absorbed in scenario order, so the merged
    timeline matches the serial one span-for-span and event-for-event
    (same ids, nesting, order, values).  Timestamps alone can differ
    in the last ulp: the serial clock folds float time-steps across
    scenario boundaries, while the merge computes offset + local time.
    No result store rides along: scenario outcomes are rich objects,
    not JSON rows, and the sweep is seconds long.
    """
    from ..faults import SCENARIOS

    names = tuple(sorted(SCENARIOS))
    if executor is None:
        return [run(name, seed=seed, duration_s=duration_s,
                    quiet_tail_s=quiet_tail_s, distance_m=distance_m,
                    telemetry=telemetry)
                for name in names]
    from ..engine import Campaign

    tel = telemetry
    trial_fn = partial(scenario_trial, scenario_names=names, seed=seed,
                       duration_s=duration_s, quiet_tail_s=quiet_tail_s,
                       distance_m=distance_m,
                       record_telemetry=bool(tel is not None
                                             and tel.enabled))
    if num_shards is None:
        num_shards = max(1, getattr(executor, "jobs", 1))
    outcome = Campaign(trial_fn, len(names), master_seed=seed,
                       num_shards=num_shards, executor=executor).run()
    results: list[ChaosRunResult] = []
    for trial in outcome.results:
        snapshot = trial["telemetry"]
        if snapshot is not None and tel is not None:
            tel.absorb(snapshot.shifted(tel.clock.now_s))
        results.append(trial["outcome"])
    return results


@dataclass(frozen=True)
class FailoverRunResult:
    """One AP-crash failover run plus the knobs that produced it."""

    seed: int
    duration_s: float
    crash_start_s: float
    crash_duration_s: float
    ap_index: int
    result: FailoverResult

    @property
    def delivery_gain(self) -> float:
        """Adaptive cluster minus frozen single-AP delivery ratio."""
        return self.result.gain


def run_failover(seed: int = 0, duration_s: float = 30.0,
                 crash_start_s: float = 8.0,
                 crash_duration_s: float = 12.0,
                 ap_index: int = 0,
                 time_step_s: float = 0.1,
                 telemetry: TelemetryRecorder | None = None
                 ) -> FailoverRunResult:
    """Crash one AP of a two-AP cluster and score the failover machinery.

    A 20 x 10 m hall with an AP at each end and four nodes split
    between them; the :class:`~repro.faults.ApCrashProcess` takes AP
    ``ap_index`` down for ``crash_duration_s``.  The adaptive cluster
    detects the death by heartbeat, fails the stranded nodes over to
    the survivor, and restores the rebooted AP from its checkpoint; the
    frozen baseline parks everyone on AP 0 and loses them (state and
    all) the moment it dies — the seed repository's behaviour.
    """
    from ..cluster import FailoverSimulation, HeartbeatMonitor
    from ..faults import ApCrashProcess, FaultInjector
    from ..sim.environment import Room
    from ..sim.geometry import Point

    room = Room.rectangular(width_m=20.0, length_m=10.0)
    ap_positions = [Point(2.0, 5.0), Point(18.0, 5.0)]
    node_positions = [Point(4.0, 3.0), Point(6.0, 7.0),
                      Point(14.0, 3.0), Point(16.0, 7.0)]
    sim = FailoverSimulation(
        room, ap_positions, node_positions, demanded_rate_bps=1e6,
        heartbeat=HeartbeatMonitor(interval_s=0.5, miss_threshold=3),
        telemetry=telemetry)
    injector = FaultInjector(
        [ApCrashProcess(start_s=crash_start_s,
                        duration_s=crash_duration_s,
                        ap_index=ap_index)],
        master_seed=seed)
    tel = sim.telemetry
    with tel.span("cluster.failover_run", seed=seed,
                  ap_index=ap_index):
        result = sim.run(injector.schedule(duration_s), dt_s=time_step_s)
    return FailoverRunResult(seed=seed, duration_s=duration_s,
                             crash_start_s=crash_start_s,
                             crash_duration_s=crash_duration_s,
                             ap_index=ap_index, result=result)


def render_failover(outcome: FailoverRunResult) -> str:
    """Text report for one AP-crash failover run."""
    r = outcome.result
    return "\n".join([
        f"ap-crash failover (seed {outcome.seed}, "
        f"{outcome.duration_s:.0f} s, AP {outcome.ap_index} down "
        f"{outcome.crash_start_s:.0f}-"
        f"{outcome.crash_start_s + outcome.crash_duration_s:.0f} s)",
        f"  delivery ratio : cluster {r.adaptive_delivery_ratio:.3f}  "
        f"frozen single-AP {r.static_delivery_ratio:.3f}  "
        f"gain {r.gain:+.3f}",
        f"  detection      : {r.detection_latency_s:.1f} s heartbeat "
        f"latency",
        f"  failovers      : {r.failover_count} node(s) migrated, "
        f"{r.orphaned_nodes} orphaned",
    ])


def render(outcome: ChaosRunResult) -> str:
    """Detailed text report for one scenario."""
    r = outcome.result
    lines = [
        f"chaos scenario '{outcome.scenario}' "
        f"(seed {outcome.seed}, {outcome.duration_s:.0f} s, "
        f"faults: {', '.join(r.schedule.kinds()) or 'none'})",
        f"  delivery ratio : adaptive {r.adaptive_delivery_ratio:.3f}  "
        f"static {r.static_delivery_ratio:.3f}  "
        f"gain {r.delivery_gain:+.3f}",
        f"  availability   : adaptive {r.adaptive_report.availability:.3f}  "
        f"static {r.static_report.availability:.3f}",
        f"  MTTR           : adaptive {r.adaptive_report.mttr_s:.2f} s  "
        f"static {r.static_report.mttr_s:.2f} s",
        f"  clean SNR      : {r.clean_snr_db:.1f} dB; post-fault "
        f"{r.post_fault_snr_db():.1f} dB "
        f"(recovered: {r.recovered()})",
    ]
    counts = outcome.action_counts()
    if counts:
        summary = ", ".join(f"{name} x{count}"
                            for name, count in sorted(counts.items()))
        lines.append(f"  recovery log   : {summary}")
    else:
        lines.append("  recovery log   : (no action needed)")
    return "\n".join(lines)


def render_all(outcomes: list[ChaosRunResult]) -> str:
    """Summary table across scenarios."""
    header = (f"{'scenario':<14} {'adaptive':>8} {'static':>8} "
              f"{'gain':>7} {'avail':>6} {'mttr_s':>7} {'recovered':>9}")
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        r = outcome.result
        lines.append(
            f"{outcome.scenario:<14} "
            f"{r.adaptive_delivery_ratio:>8.3f} "
            f"{r.static_delivery_ratio:>8.3f} "
            f"{r.delivery_gain:>+7.3f} "
            f"{r.adaptive_report.availability:>6.3f} "
            f"{r.adaptive_report.mttr_s:>7.2f} "
            f"{str(outcome.recovered):>9}")
    return "\n".join(lines)
