"""Chaos-engineering experiment: fault injection vs the recovery ladder.

Not a paper figure — a robustness extension: §9.3/§9.4 show mmX
surviving *one* fault at a time (a blocker, an off-axis placement);
this experiment injects the full fault taxonomy of
:mod:`repro.faults` on a schedule and measures whether the
:class:`repro.resilience.LinkSupervisor` actually recovers, against a
frozen static baseline under bit-identical faults.

``run`` executes one named scenario; ``run_all`` sweeps every scenario
registered in :data:`repro.faults.SCENARIOS` from one master seed.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from ..faults import scenario_injector
from ..resilience import ChaosResult, ChaosSimulation

__all__ = ["ChaosRunResult", "run", "run_all", "render", "render_all"]

DEFAULT_DISTANCE_M = 4.0
"""Node-AP distance for the chaos placement: mid-room, facing, well
inside Fig. 12's working range — faults, not geometry, set the SNR."""


@dataclass(frozen=True)
class ChaosRunResult:
    """One scenario's adaptive-vs-static outcome plus headline numbers."""

    scenario: str
    seed: int
    duration_s: float
    result: ChaosResult

    @property
    def delivery_gain(self) -> float:
        """Adaptive minus static delivery ratio."""
        return self.result.delivery_gain

    @property
    def recovered(self) -> bool:
        """Whether adaptive SNR returned to baseline after the faults."""
        return self.result.recovered()

    def action_counts(self) -> dict[str, int]:
        """How many times each recovery-ladder rung fired."""
        return dict(Counter(a.policy for a in self.result.actions))


def _facing_link(distance_m: float):
    """A facing node at ``distance_m`` in the default lab room."""
    from ..core.link import OtamLink
    from ..sim.environment import default_lab_room
    from ..sim.geometry import Point, angle_of
    from ..sim.placement import Placement

    room = default_lab_room()
    ap = Point(room.width_m / 2.0, 0.15)
    node = Point(room.width_m / 2.0, 0.15 + distance_m)
    if not room.contains(node, margin=0.1):
        raise ValueError("distance does not fit in the lab room")
    placement = Placement(node, angle_of(node, ap), ap, math.pi / 2)
    return OtamLink(placement=placement, room=room)


def run(scenario: str = "kitchen-sink", seed: int = 0,
        duration_s: float = 30.0, quiet_tail_s: float = 3.0,
        distance_m: float = DEFAULT_DISTANCE_M,
        time_step_s: float = 0.1) -> ChaosRunResult:
    """One chaos run: a named fault scenario against both policies.

    Everything — the fault schedule, the supervisor's backoff jitter —
    derives from ``seed``, so the whole result regenerates
    bit-identically.  ``quiet_tail_s`` keeps the end of the run
    fault-free so post-fault recovery is measurable.
    """
    injector = scenario_injector(scenario, master_seed=seed)
    sim = ChaosSimulation(_facing_link(distance_m), injector,
                          time_step_s=time_step_s)
    result = sim.run(duration_s, quiet_tail_s=quiet_tail_s)
    return ChaosRunResult(scenario=scenario, seed=seed,
                          duration_s=duration_s, result=result)


def run_all(seed: int = 0, duration_s: float = 30.0,
            quiet_tail_s: float = 3.0,
            distance_m: float = DEFAULT_DISTANCE_M) -> list[ChaosRunResult]:
    """Every registered scenario from one master seed."""
    from ..faults import SCENARIOS

    return [run(name, seed=seed, duration_s=duration_s,
                quiet_tail_s=quiet_tail_s, distance_m=distance_m)
            for name in sorted(SCENARIOS)]


def render(outcome: ChaosRunResult) -> str:
    """Detailed text report for one scenario."""
    r = outcome.result
    lines = [
        f"chaos scenario '{outcome.scenario}' "
        f"(seed {outcome.seed}, {outcome.duration_s:.0f} s, "
        f"faults: {', '.join(r.schedule.kinds()) or 'none'})",
        f"  delivery ratio : adaptive {r.adaptive_delivery_ratio:.3f}  "
        f"static {r.static_delivery_ratio:.3f}  "
        f"gain {r.delivery_gain:+.3f}",
        f"  availability   : adaptive {r.adaptive_report.availability:.3f}  "
        f"static {r.static_report.availability:.3f}",
        f"  MTTR           : adaptive {r.adaptive_report.mttr_s:.2f} s  "
        f"static {r.static_report.mttr_s:.2f} s",
        f"  clean SNR      : {r.clean_snr_db:.1f} dB; post-fault "
        f"{r.post_fault_snr_db():.1f} dB "
        f"(recovered: {r.recovered()})",
    ]
    counts = outcome.action_counts()
    if counts:
        summary = ", ".join(f"{name} x{count}"
                            for name, count in sorted(counts.items()))
        lines.append(f"  recovery log   : {summary}")
    else:
        lines.append("  recovery log   : (no action needed)")
    return "\n".join(lines)


def render_all(outcomes: list[ChaosRunResult]) -> str:
    """Summary table across scenarios."""
    header = (f"{'scenario':<14} {'adaptive':>8} {'static':>8} "
              f"{'gain':>7} {'avail':>6} {'mttr_s':>7} {'recovered':>9}")
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        r = outcome.result
        lines.append(
            f"{outcome.scenario:<14} "
            f"{r.adaptive_delivery_ratio:>8.3f} "
            f"{r.static_delivery_ratio:>8.3f} "
            f"{r.delivery_gain:>+7.3f} "
            f"{r.adaptive_report.availability:>6.3f} "
            f"{r.adaptive_report.mttr_s:>7.2f} "
            f"{str(outcome.recovered):>9}")
    return "\n".join(lines)
