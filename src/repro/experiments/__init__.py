"""Experiment reproductions: one module per table/figure of the paper.

Each module exposes ``run(seed=0, ...) -> <Result>`` returning plain data
and ``render(result) -> str`` producing the text table/series that stands
in for the paper's plot.  The benchmark suite calls ``run`` and asserts
the published *shape*; the examples print ``render``.

Index (see DESIGN.md for the full mapping):

========  ===========================================================
fig06     TMA direction-to-harmonic hashing (section 7, Fig. 6)
fig07     VCO tuning curve + node microbenchmarks (Fig. 7, section 9.1)
fig08     Orthogonal beam patterns (Fig. 8)
fig09     ASK-decodable vs FSK-decodable captures (Fig. 9, section 6.3)
fig10     Room SNR heatmaps with/without OTAM (Fig. 10)
fig11     BER CDF with/without OTAM (Fig. 11)
fig12     SNR vs distance, facing / not facing (Fig. 12)
fig13     Mean SINR vs number of simultaneous nodes (Fig. 13)
table1    Platform comparison (Table 1)
ablations Orthogonality / joint-modulation / beam-search / oracle
extensions Mobility, SDM scheduling, 60 GHz, channel self-check,
          MAC streaming, spectrum-strain motivation
chaos     Fault injection vs the resilience recovery ladder
========  ===========================================================
"""

from . import (
    ablations,
    chaos,
    extensions,
    fig06_tma,
    fig07_vco,
    fig08_patterns,
    fig09_waveforms,
    fig10_snr_map,
    fig11_ber_cdf,
    fig12_range,
    fig13_multinode,
    table1,
)

__all__ = [
    "ablations",
    "chaos",
    "extensions",
    "fig06_tma",
    "fig07_vco",
    "fig08_patterns",
    "fig09_waveforms",
    "fig10_snr_map",
    "fig11_ber_cdf",
    "fig12_range",
    "fig13_multinode",
    "table1",
]
