"""Fig. 10: SNR heatmaps over the 6 m x 4 m room, with vs without OTAM.

Protocol (section 9.2): AP on one side of the room; node at random
locations with orientation drawn from ±60°; people walking; one person
blocking the node-AP line-of-sight for the entire experiment.

Published shape: without OTAM (node uses only Beam 1, modulates at the
radio) many locations fall below 5 dB; with OTAM the same locations reach
~11 dB or more, with the map topping out around 30 dB.

The grid sweep runs as a :mod:`repro.engine` campaign — one trial per
grid cell, each with its own child seed — so a fine-grid map
(``grid_step_m=0.1`` is ~2000 cells) parallelises across cores with the
same values as the serial default.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any

import numpy as np

from ..constants import EVAL_ROOM_LENGTH_M, EVAL_ROOM_WIDTH_M
from ..core.link import OtamLink
from ..engine import Campaign, ResultStore, ShardExecutor
from ..sim.environment import Blocker, default_lab_room
from ..sim.geometry import Point, angle_of, normalize_angle
from ..sim.placement import Placement
from ..units import db_to_linear, linear_to_db
from .report import ascii_heatmap, format_table

__all__ = ["Fig10Result", "run", "render"]


@dataclass(frozen=True)
class Fig10Result:
    """Gridded SNRs for both scenarios."""

    x_m: np.ndarray
    y_m: np.ndarray
    snr_without_otam_db: np.ndarray
    """(len(y), len(x)) grid, NaN at the AP's own cell."""
    snr_with_otam_db: np.ndarray

    @property
    def fraction_below_5db_without(self) -> float:
        """Fraction of locations under 5 dB without OTAM."""
        vals = self.snr_without_otam_db
        return float(np.mean(vals[~np.isnan(vals)] < 5.0))

    @property
    def fraction_above_10db_with(self) -> float:
        """Fraction of locations at 10 dB or more with OTAM."""
        vals = self.snr_with_otam_db
        return float(np.mean(vals[~np.isnan(vals)] >= 10.0))

    @property
    def median_gain_db(self) -> float:
        """Median per-location SNR improvement from OTAM."""
        diff = self.snr_with_otam_db - self.snr_without_otam_db
        return float(np.nanmedian(diff))


def grid_axes(grid_step_m: float) -> tuple[np.ndarray, np.ndarray]:
    """The sweep's grid-cell centres (x and y axes)."""
    xs = np.arange(0.4, EVAL_ROOM_WIDTH_M - 0.3, grid_step_m)
    ys = np.arange(0.6, EVAL_ROOM_LENGTH_M - 0.3, grid_step_m)
    return xs, ys


def grid_cell_trial(rng: np.random.Generator, index: int,
                    grid_step_m: float = 0.5,
                    blocker_position: tuple[float, float] = (2.0, 1.2),
                    num_carriers: int = 3) -> dict[str, Any]:
    """One Fig. 10 trial: both scenarios' SNR at a single grid cell.

    ``index`` is the row-major cell number (``iy * len(xs) + ix``).
    Cells inside the standing person's footprint return ``None`` for
    both SNRs — they become the NaN holes in the published map.  The
    cell's ±60° orientation offset comes from its own child generator,
    so a cell's value never depends on how many cells ran before it
    (or on which shard ran it).  Module-level so it pickles into
    :class:`~repro.engine.ProcessPool` workers.
    """
    xs, ys = grid_axes(grid_step_m)
    iy, ix = divmod(index, xs.size)
    node = Point(float(xs[ix]), float(ys[iy]))
    if (node - Point(*blocker_position)).norm() < 0.45:
        return {"snr_without_db": None, "snr_with_db": None}
    room = default_lab_room()
    room.add_blocker(Blocker(Point(*blocker_position)))
    ap = Point(EVAL_ROOM_WIDTH_M / 2.0, 0.15)
    toward_ap = angle_of(node, ap)
    offset = float(rng.uniform(np.radians(-60), np.radians(60)))
    placement = Placement(
        node_position=node,
        node_orientation_rad=normalize_angle(toward_ap + offset),
        ap_position=ap,
        ap_orientation_rad=np.pi / 2.0,
    )
    carriers = np.linspace(24.0e9, 24.25e9, num_carriers + 2)[1:-1]
    wo_lin, w_lin = [], []
    for carrier in carriers:
        breakdown = OtamLink(placement=placement, room=room,
                             frequency_hz=float(carrier)).snr_breakdown()
        wo_lin.append(float(db_to_linear(breakdown.no_otam_snr_db)))
        w_lin.append(float(db_to_linear(breakdown.otam_snr_db)))
    return {
        "snr_without_db": float(linear_to_db(np.mean(wo_lin))),
        "snr_with_db": float(linear_to_db(np.mean(w_lin))),
    }


def run(seed: int = 0, grid_step_m: float = 0.5,
        blocker_position: tuple[float, float] = (2.0, 1.2),
        num_carriers: int = 3,
        executor: ShardExecutor | None = None,
        num_shards: int | None = None,
        store: ResultStore | str | None = None) -> Fig10Result:
    """Sweep a placement grid with a persistent standing blocker.

    One person stands at ``blocker_position`` for the entire sweep
    ("one person was blocking the line-of-sight path ... for the
    entire duration of the experiment"): placements whose LoS crosses
    them are blocked, the rest see a clear direct path — which is what
    lets Fig. 10(b) span from ~11 dB in the shadow up to ~30 dB at
    clear close-in cells.  Orientation at each grid point is drawn once
    from ±60° and *shared by both scenarios* ("for the same
    locations").

    Each cell averages linear SNR over ``num_carriers`` carriers across
    the ISM band, as a measurement campaign's frequency diversity does —
    a single-carrier cut would be speckled by multipath fades the
    paper's averaged measurements do not show.

    The grid runs as an engine campaign (one trial per cell), so
    ``executor=ProcessPool(...)`` parallelises it and ``store=`` makes
    it resumable, with values independent of both.
    """
    xs, ys = grid_axes(grid_step_m)
    trial_fn = partial(grid_cell_trial, grid_step_m=float(grid_step_m),
                       blocker_position=(float(blocker_position[0]),
                                         float(blocker_position[1])),
                       num_carriers=num_carriers)
    if num_shards is None:
        num_shards = max(1, getattr(executor, "jobs", 1))
    outcome = Campaign(trial_fn, int(xs.size * ys.size), master_seed=seed,
                       num_shards=num_shards, executor=executor,
                       store=store).run()
    without = np.full((ys.size, xs.size), np.nan)
    with_otam = np.full((ys.size, xs.size), np.nan)
    for result in outcome.results:
        iy, ix = divmod(result.index, xs.size)
        if result["snr_without_db"] is not None:
            without[iy, ix] = result["snr_without_db"]
            with_otam[iy, ix] = result["snr_with_db"]
    return Fig10Result(x_m=xs, y_m=ys,
                       snr_without_otam_db=without,
                       snr_with_otam_db=with_otam)


def render(result: Fig10Result) -> str:
    """ASCII heatmaps plus the headline coverage statistics."""
    maps = "\n\n".join([
        ascii_heatmap(result.snr_without_otam_db, 0.0, 30.0,
                      title="Fig. 10(a) — SNR without OTAM (0..30 dB ramp)"),
        ascii_heatmap(result.snr_with_otam_db, 0.0, 30.0,
                      title="Fig. 10(b) — SNR with OTAM (0..30 dB ramp)"),
    ])
    stats = format_table(
        ["metric", "value", "paper"],
        [
            ["locations < 5 dB without OTAM",
             f"{result.fraction_below_5db_without:.1%}", "many"],
            ["locations >= 10 dB with OTAM",
             f"{result.fraction_above_10db_with:.1%}", "almost all"],
            ["median OTAM gain [dB]", f"{result.median_gain_db:.1f}", ">0"],
        ],
        title="Coverage statistics")
    return "\n\n".join([maps, stats])
