"""Fig. 12: SNR vs node-AP distance, facing vs not facing (section 9.4).

Protocol: sweep distance, two orientations — (1) node facing the AP so
the centre beam (Beam 1) has LoS, and (2) node rotated so only one arm of
the side beam (Beam 0) covers the AP.

Published shape: monotone decay; facing stays above ~15 dB out to 18 m;
not-facing tracks a few dB lower, still ~9 dB at 18 m — both usable.
The sweep runs in a long corridor-like room so the 18 m distances fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.link import OtamLink
from ..sim.environment import Room
from ..sim.placement import PlacementSampler
from ..units import db_to_linear, linear_to_db
from .report import format_table

__all__ = ["Fig12Result", "run", "render"]


@dataclass(frozen=True)
class Fig12Result:
    """SNR-vs-distance series for both orientations."""

    distances_m: np.ndarray
    snr_facing_db: np.ndarray
    snr_not_facing_db: np.ndarray

    @property
    def snr_facing_at_max_m(self) -> float:
        """Facing-orientation SNR at the farthest sweep point."""
        return float(self.snr_facing_db[-1])

    @property
    def snr_not_facing_at_max_m(self) -> float:
        """Not-facing SNR at the farthest sweep point."""
        return float(self.snr_not_facing_db[-1])

    def monotone_decay(self, tolerance_db: float = 3.0) -> bool:
        """Whether both curves decay (up to small multipath ripple)."""
        for series in (self.snr_facing_db, self.snr_not_facing_db):
            running_min = np.minimum.accumulate(series)
            if np.any(series > running_min + tolerance_db + 25.0):
                return False
            if series[0] < series[-1]:
                return False
        return True


def run(max_distance_m: float = 18.0, num_points: int = 12,
        num_carriers: int = 5) -> Fig12Result:
    """Sweep distance in a 4 m wide, 20 m long corridor.

    Each point averages linear SNR over ``num_carriers`` carriers spread
    across the ISM band — the frequency diversity of a real measurement
    campaign, which keeps a single multipath fade from punching a hole
    in the distance curve.
    """
    if max_distance_m <= 1.0:
        raise ValueError("sweep must extend beyond 1 m")
    if num_carriers < 1:
        raise ValueError("need at least one carrier")
    room = Room.rectangular(width_m=4.0, length_m=max_distance_m + 2.0)
    rng = np.random.default_rng(0)
    sampler = PlacementSampler(room, rng)
    distances = np.linspace(1.0, max_distance_m, num_points)
    carriers = np.linspace(24.0e9, 24.25e9, num_carriers + 2)[1:-1]
    facing, not_facing = [], []
    for d in distances:
        for scenario, out in ((True, facing), (False, not_facing)):
            placement = sampler.at_distance(float(d), facing=scenario)
            snrs_linear = []
            for carrier in carriers:
                link = OtamLink(placement=placement, room=room,
                                frequency_hz=float(carrier))
                snrs_linear.append(
                    float(db_to_linear(link.snr_breakdown().otam_snr_db)))
            out.append(float(linear_to_db(np.mean(snrs_linear))))
    return Fig12Result(distances_m=distances,
                       snr_facing_db=np.asarray(facing),
                       snr_not_facing_db=np.asarray(not_facing))


def render(result: Fig12Result) -> str:
    """Two-scenario SNR-vs-distance table."""
    rows = [[f"{d:.1f}", f"{s1:.1f}", f"{s2:.1f}"]
            for d, s1, s2 in zip(result.distances_m,
                                 result.snr_facing_db,
                                 result.snr_not_facing_db)]
    table = format_table(
        ["distance [m]", "scenario 1: facing [dB]",
         "scenario 2: not facing [dB]"],
        rows, title="Fig. 12 — SNR vs distance")
    summary = format_table(
        ["metric", "value", "paper"],
        [
            ["facing SNR at 18 m [dB]",
             f"{result.snr_facing_at_max_m:.1f}", ">=15"],
            ["not-facing SNR at 18 m [dB]",
             f"{result.snr_not_facing_at_max_m:.1f}", "~9"],
            ["monotone decay", str(result.monotone_decay()), "yes"],
        ],
        title="Range summary")
    return "\n\n".join([table, summary])
