"""The mmX access point: down-converter, baseband processor, registry.

Fig. 3(b) plus the network-side duties of section 4: during
*initialization* the AP allocates each node a channel sized to its data
rate demand (over a WiFi/Bluetooth side link — here a direct method
call); during *transmission* it demodulates each node's capture with the
joint ASK-FSK decoder.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..antenna.element import DipoleElement
from ..core.ask_fsk import AskFskConfig
from ..core.demodulator import DemodResult, JointDemodulator
from ..core.packet import Packet, PacketCodec, PacketError
from ..hardware.chains import AccessPointHardware
from ..network.fdm import ChannelPlan, FdmAllocator
from ..phy.waveform import Waveform

__all__ = ["NodeRegistration", "MmxAccessPoint"]


@dataclass(frozen=True)
class NodeRegistration:
    """The AP's record for one admitted node."""

    node_id: int
    channel: ChannelPlan
    config: AskFskConfig


class MmxAccessPoint:
    """A complete mmX AP device."""

    def __init__(self,
                 hardware: AccessPointHardware | None = None,
                 antenna: DipoleElement | None = None,
                 allocator: FdmAllocator | None = None,
                 codec: PacketCodec | None = None):
        self.hardware = hardware or AccessPointHardware()
        self.antenna = antenna or DipoleElement()
        self.allocator = allocator or FdmAllocator()
        self.codec = codec or PacketCodec()
        self._registrations: dict[int, NodeRegistration] = {}
        self._demodulators: dict[int, JointDemodulator] = {}
        self._tma_assignments: dict[int, int] = {}
        self.reallocation_failures = 0

    # --- initialization phase --------------------------------------------------

    def register_node(self, node_id: int, demanded_rate_bps: float,
                      config: AskFskConfig | None = None) -> NodeRegistration:
        """Admit a node: allocate a channel sized to its rate demand.

        This is the once-only initialization of section 7(a), performed
        over the WiFi/Bluetooth module in hardware.
        """
        if node_id in self._registrations:
            raise ValueError(f"node {node_id} is already registered")
        channel = self.allocator.allocate(node_id, demanded_rate_bps)
        if config is None:
            config = AskFskConfig(
                bit_rate_bps=demanded_rate_bps,
                sample_rate_hz=8 * demanded_rate_bps)
        registration = NodeRegistration(node_id=node_id, channel=channel,
                                        config=config)
        self._registrations[node_id] = registration
        self._demodulators[node_id] = JointDemodulator(config)
        return registration

    def adopt_registration(self, node_id: int, channel: ChannelPlan,
                           config: AskFskConfig) -> NodeRegistration:
        """Install a registration whose channel the allocator already holds.

        The checkpoint-restore path: :meth:`register_node` would run a
        fresh first-fit and could land the node on a *different*
        channel; adoption re-attaches the exact pre-crash plan (which
        must already be present via
        :meth:`repro.network.fdm.FdmAllocator.restore_plan`).
        """
        if node_id in self._registrations:
            raise ValueError(f"node {node_id} is already registered")
        held = self.allocator.plan_for(node_id)
        if (held.center_hz != channel.center_hz
                or held.bandwidth_hz != channel.bandwidth_hz):
            raise ValueError(
                f"node {node_id}: adopted channel disagrees with the "
                f"allocator's plan")
        registration = NodeRegistration(node_id=node_id, channel=channel,
                                        config=config)
        self._registrations[node_id] = registration
        self._demodulators[node_id] = JointDemodulator(config)
        return registration

    def deregister_node(self, node_id: int) -> None:
        """Release a node's channel (and any TMA slot it held)."""
        reg = self._registrations.pop(node_id, None)
        if reg is None:
            raise KeyError(f"node {node_id} is not registered")
        self._demodulators.pop(node_id, None)
        self._tma_assignments.pop(node_id, None)
        self.allocator.release(node_id)

    def registration(self, node_id: int) -> NodeRegistration:
        """Look up a node's registration."""
        try:
            return self._registrations[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} is not registered") from None

    @property
    def registered_nodes(self) -> list[int]:
        """IDs of all admitted nodes."""
        return sorted(self._registrations)

    # --- resilience hooks ------------------------------------------------------

    def mark_interference(self, low_hz: float, high_hz: float) -> list[int]:
        """Record an in-band interferer; returns the node IDs it hits.

        The spectrum range is blocked in the allocator so future
        allocations avoid it; nodes whose channels overlap it are
        returned so the caller (typically a
        :class:`repro.resilience.LinkSupervisor`) can decide to
        :meth:`reallocate_node` them.
        """
        self.allocator.block_range(low_hz, high_hz)
        probe = ChannelPlan(node_id=-1, center_hz=(low_hz + high_hz) / 2.0,
                            bandwidth_hz=high_hz - low_hz)
        return sorted(reg.node_id for reg in self._registrations.values()
                      if reg.channel.overlaps(probe))

    def reallocate_node(self, node_id: int) -> NodeRegistration | None:
        """Move a node's FDM channel away from blocked spectrum.

        Preserves the node's bandwidth and demodulator (including any
        attached health monitor); only the channel plan changes.

        Degrades gracefully when the allocator has no clean channel
        left: the node keeps its old (interfered) registration, the
        failure is counted in :attr:`reallocation_failures` (surfaced
        by :meth:`stats`), and ``None`` is returned — a congested band
        must never strand a node without *any* channel, nor crash the
        supervisor that asked for the move.
        """
        from ..network.fdm import SpectrumExhausted

        reg = self.registration(node_id)
        try:
            channel = self.allocator.reallocate(node_id)
        except SpectrumExhausted:
            self.reallocation_failures += 1
            return None
        updated = NodeRegistration(node_id=node_id, channel=channel,
                                   config=reg.config)
        self._registrations[node_id] = updated
        return updated

    # --- SDM / TMA bookkeeping -------------------------------------------------

    def assign_tma_slot(self, node_id: int, harmonic_index: int) -> None:
        """Record which TMA harmonic a (SDM-sharing) node is hashed to.

        The assignment is part of the AP's control-plane state — it
        must survive a crash/restore cycle along with the FDM map, which
        is why :mod:`repro.cluster.checkpoint` serialises it.
        """
        if node_id not in self._registrations:
            raise KeyError(f"node {node_id} is not registered")
        if harmonic_index < 0:
            raise ValueError("harmonic index cannot be negative")
        self._tma_assignments[node_id] = int(harmonic_index)

    @property
    def tma_assignments(self) -> dict[int, int]:
        """Node -> TMA harmonic index for every SDM-sharing node."""
        return dict(self._tma_assignments)

    def stats(self) -> dict:
        """Control-plane health counters for operators and chaos gates."""
        return {
            "registered_nodes": len(self._registrations),
            "tma_assignments": len(self._tma_assignments),
            "reallocation_failures": self.reallocation_failures,
            "allocated_bandwidth_hz": self.allocator.allocated_bandwidth_hz,
            "blocked_ranges": len(self.allocator.blocked_ranges),
        }

    def attach_health_monitor(self, node_id: int, monitor) -> None:
        """Attach a :class:`repro.resilience.LinkHealthMonitor` to one
        node's demodulator, so every capture feeds its health estimate."""
        demod = self._demodulators.get(node_id)
        if demod is None:
            raise KeyError(f"node {node_id} is not registered")
        demod.health_monitor = monitor

    # --- transmission phase -------------------------------------------------------

    def demodulate(self, node_id: int, capture: Waveform) -> DemodResult:
        """Run the joint ASK-FSK demodulator on one node's capture."""
        demod = self._demodulators.get(node_id)
        if demod is None:
            raise KeyError(f"node {node_id} is not registered")
        return demod.demodulate(capture)

    def receive_packet(self, node_id: int, capture: Waveform) -> Packet:
        """Demodulate a capture and decode the packet frame.

        Raises :class:`PacketError` if the frame cannot be recovered
        (bad preamble, truncation, CRC failure).
        """
        result = self.demodulate(node_id, capture)
        return self.codec.decode(result.bits)

    def try_receive_packet(self, node_id: int,
                           capture: Waveform) -> Packet | None:
        """Like :meth:`receive_packet` but returns None on frame loss."""
        try:
            return self.receive_packet(node_id, capture)
        except PacketError:
            return None
