"""The mmX access point: down-converter, baseband processor, registry.

Fig. 3(b) plus the network-side duties of section 4: during
*initialization* the AP allocates each node a channel sized to its data
rate demand (over a WiFi/Bluetooth side link — here a direct method
call); during *transmission* it demodulates each node's capture with the
joint ASK-FSK decoder.
"""

from __future__ import annotations

from dataclasses import dataclass


from typing import TYPE_CHECKING

from ..antenna.element import DipoleElement
from ..core.ask_fsk import AskFskConfig
from ..core.demodulator import DemodResult, JointDemodulator
from ..core.packet import Packet, PacketCodec, PacketError
from ..hardware.chains import AccessPointHardware
from ..network.fdm import ChannelPlan, FdmAllocator
from ..phy.waveform import Waveform

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from ..admission.controller import AdmissionController
    from ..energy.carrier import CarrierScheduler
    from ..energy.classes import NodeClassSpec

__all__ = ["NodeRegistration", "MmxAccessPoint"]


@dataclass(frozen=True)
class NodeRegistration:
    """The AP's record for one admitted node."""

    node_id: int
    channel: ChannelPlan
    config: AskFskConfig


class MmxAccessPoint:
    """A complete mmX AP device."""

    def __init__(self,
                 hardware: AccessPointHardware | None = None,
                 antenna: DipoleElement | None = None,
                 allocator: FdmAllocator | None = None,
                 codec: PacketCodec | None = None,
                 admission: AdmissionController | None = None,
                 carrier: CarrierScheduler | None = None):
        self.hardware = hardware or AccessPointHardware()
        self.antenna = antenna or DipoleElement()
        self.admission = admission
        """Optional :class:`repro.admission.AdmissionController`.  When
        set, registration walks the full admission ladder (FDM first,
        SDM escalation, reject) and interference handling runs the
        controller's batched re-admission pass; the controller's
        allocator becomes :attr:`allocator` so cluster checkpoints and
        failover see one consistent spectrum map."""
        if admission is not None:
            self.allocator = admission.allocator
        else:
            self.allocator = allocator or FdmAllocator()
        self.carrier = carrier
        """Optional :class:`repro.energy.CarrierScheduler` — the AP's
        illumination-airtime budget for passive backscatter tags.  With
        an admission controller attached the two must be the same
        object (the ladder unwinds spectrum when airtime blocks), so a
        controller-held scheduler is adopted automatically."""
        if carrier is None and admission is not None:
            self.carrier = admission.carrier
        elif carrier is not None and admission is not None \
                and admission.carrier is None:
            admission.carrier = carrier
        elif carrier is not None and admission is not None \
                and admission.carrier is not carrier:
            raise ValueError("the AP and its admission controller must "
                             "share one CarrierScheduler")
        self.codec = codec or PacketCodec()
        self._registrations: dict[int, NodeRegistration] = {}
        self._demodulators: dict[int, JointDemodulator] = {}
        self._tma_assignments: dict[int, int] = {}
        self.reallocation_failures = 0

    # --- initialization phase --------------------------------------------------

    def register_node(self, node_id: int, demanded_rate_bps: float,
                      config: AskFskConfig | None = None,
                      bearing_rad: float | None = None) -> NodeRegistration:
        """Admit a node: allocate a channel sized to its rate demand.

        This is the once-only initialization of section 7(a), performed
        over the WiFi/Bluetooth module in hardware.

        With an admission controller attached, the request walks the
        full ladder: FDM first, then — given the node's arrival
        ``bearing_rad`` — SDM spatial reuse (the node lands on a shared
        slice plus a TMA harmonic).  A fully blocked ladder raises
        :class:`~repro.network.fdm.SpectrumExhausted`, the same signal
        a bare allocator sends, so cluster failover keeps walking its
        AP preference order unchanged.
        """
        if node_id in self._registrations:
            raise ValueError(f"node {node_id} is already registered")
        if self.admission is not None:
            from ..network.fdm import SpectrumExhausted

            decision = self.admission.admit(node_id, demanded_rate_bps,
                                            bearing_rad=bearing_rad)
            if not decision.admitted:
                raise SpectrumExhausted(
                    f"admission ladder blocked node {node_id}")
            assert decision.plan is not None
            channel = decision.plan
        else:
            decision = None
            channel = self.allocator.allocate(node_id, demanded_rate_bps)
        if config is None:
            config = AskFskConfig(
                bit_rate_bps=demanded_rate_bps,
                sample_rate_hz=8 * demanded_rate_bps)
        registration = NodeRegistration(node_id=node_id, channel=channel,
                                        config=config)
        self._registrations[node_id] = registration
        self._demodulators[node_id] = JointDemodulator(config)
        if decision is not None and decision.sdm is not None:
            self.assign_tma_slot(node_id, decision.sdm.harmonic_index)
        return registration

    def register_backscatter_node(self, node_id: int,
                                  illumination_duty: float,
                                  spec: NodeClassSpec | None = None,
                                  config: AskFskConfig | None = None,
                                  bearing_rad: float | None = None
                                  ) -> NodeRegistration:
        """Admit a passive backscatter tag.

        A tag needs **two** grants where an active node needs one: a
        spectrum rung (the reflected sidebands still occupy band) *and*
        ``illumination_duty`` of this AP's carrier airtime — reflected
        bits only exist while the AP illuminates the tag.  Requires a
        :class:`~repro.energy.CarrierScheduler` (:attr:`carrier`).

        With an admission controller the whole two-resource walk is one
        atomic :meth:`AdmissionController.admit` call; standalone, the
        same order (spectrum, then airtime, unwinding spectrum on an
        airtime miss) is applied here.  Either way a blocked tag holds
        nothing and :class:`~repro.network.fdm.SpectrumExhausted` is
        raised, matching :meth:`register_node`'s failure signal.
        """
        from ..energy.classes import BACKSCATTER_CLASS, node_class

        if self.carrier is None:
            raise ValueError("backscatter registration needs a "
                             "CarrierScheduler on the AP")
        if node_id in self._registrations:
            raise ValueError(f"node {node_id} is already registered")
        tag = spec if spec is not None else node_class(BACKSCATTER_CLASS)
        if tag.modulation != "backscatter-ask":
            raise ValueError(f"node class {tag.name!r} is not a "
                             "backscatter class")
        from ..network.fdm import SpectrumExhausted

        sdm_harmonic: int | None = None
        if self.admission is not None:
            decision = self.admission.admit(
                node_id, tag.bitrate_bps, bearing_rad=bearing_rad,
                illumination_duty=illumination_duty)
            if not decision.admitted:
                raise SpectrumExhausted(
                    f"admission ladder blocked tag {node_id}")
            assert decision.plan is not None
            channel = decision.plan
            if decision.sdm is not None:
                sdm_harmonic = decision.sdm.harmonic_index
        else:
            channel = self.allocator.allocate(node_id, tag.bitrate_bps)
            if not self.carrier.reserve(node_id, illumination_duty):
                self.allocator.release(node_id)
                raise SpectrumExhausted(
                    f"no illumination airtime for tag {node_id}")
        if config is None:
            from ..energy.backscatter import backscatter_config

            config = backscatter_config(tag.bitrate_bps)
        registration = NodeRegistration(node_id=node_id, channel=channel,
                                        config=config)
        self._registrations[node_id] = registration
        self._demodulators[node_id] = JointDemodulator(config)
        if sdm_harmonic is not None:
            self.assign_tma_slot(node_id, sdm_harmonic)
        return registration

    def adopt_registration(self, node_id: int, channel: ChannelPlan,
                           config: AskFskConfig) -> NodeRegistration:
        """Install a registration whose channel the allocator already holds.

        The checkpoint-restore path: :meth:`register_node` would run a
        fresh first-fit and could land the node on a *different*
        channel; adoption re-attaches the exact pre-crash plan (which
        must already be present via
        :meth:`repro.network.fdm.FdmAllocator.restore_plan`).
        """
        if node_id in self._registrations:
            raise ValueError(f"node {node_id} is already registered")
        held = self.allocator.plan_for(node_id)
        if (held.center_hz != channel.center_hz
                or held.bandwidth_hz != channel.bandwidth_hz):
            raise ValueError(
                f"node {node_id}: adopted channel disagrees with the "
                f"allocator's plan")
        registration = NodeRegistration(node_id=node_id, channel=channel,
                                        config=config)
        self._registrations[node_id] = registration
        self._demodulators[node_id] = JointDemodulator(config)
        return registration

    def deregister_node(self, node_id: int) -> None:
        """Release a node's channel (and any TMA slot it held)."""
        reg = self._registrations.pop(node_id, None)
        if reg is None:
            raise KeyError(f"node {node_id} is not registered")
        self._demodulators.pop(node_id, None)
        self._tma_assignments.pop(node_id, None)
        if self.admission is not None and node_id in self.admission:
            self.admission.release(node_id)
        else:
            self.allocator.release(node_id)
        # Standalone (no-admission) tags hold a carrier grant the
        # allocator knows nothing about; the admission path has
        # already freed its own.
        if self.carrier is not None and node_id in self.carrier:
            self.carrier.release(node_id)

    def registration(self, node_id: int) -> NodeRegistration:
        """Look up a node's registration."""
        try:
            return self._registrations[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} is not registered") from None

    @property
    def registered_nodes(self) -> list[int]:
        """IDs of all admitted nodes."""
        return sorted(self._registrations)

    # --- resilience hooks ------------------------------------------------------

    def mark_interference(self, low_hz: float, high_hz: float) -> list[int]:
        """Record an in-band interferer; returns the node IDs it hits.

        The spectrum range is blocked in the allocator so future
        allocations avoid it; nodes whose channels overlap it are
        returned so the caller (typically a
        :class:`repro.resilience.LinkSupervisor`) can decide to
        :meth:`reallocate_node` them.

        With an admission controller attached, this is the **batched**
        path: one :meth:`AdmissionController.mark_interference` pass
        frees every victim's spectrum before re-admitting any of them
        (FDM move, SDM spill, or eviction), and the registrations are
        updated to the outcome.  The victim IDs are still returned.
        """
        if self.admission is not None:
            report = self.admission.mark_interference(low_hz, high_hz)
            for node_id in report.moved:
                self._adopt_decision(node_id)
            for node_id in report.spilled_to_sdm:
                self._adopt_decision(node_id)
            for node_id in report.evicted:
                self._registrations.pop(node_id, None)
                self._demodulators.pop(node_id, None)
                self._tma_assignments.pop(node_id, None)
            return [node_id for node_id in report.victims
                    if node_id in self._registrations
                    or node_id in report.evicted]
        self.allocator.block_range(low_hz, high_hz)
        probe = ChannelPlan(node_id=-1, center_hz=(low_hz + high_hz) / 2.0,
                            bandwidth_hz=high_hz - low_hz)
        # Indexed range query instead of a scan over every
        # registration; same strict-overlap predicate, same result.
        return sorted(plan.node_id for plan
                      in self.allocator.plans_overlapping(probe.low_hz,
                                                          probe.high_hz)
                      if plan.node_id in self._registrations)

    def _adopt_decision(self, node_id: int) -> None:
        """Refresh one registration from the controller's decision."""
        assert self.admission is not None
        reg = self._registrations.get(node_id)
        if reg is None:
            return
        decision = self.admission.decision_for(node_id)
        assert decision.plan is not None
        self._registrations[node_id] = NodeRegistration(
            node_id=node_id, channel=decision.plan, config=reg.config)
        if decision.sdm is not None:
            self._tma_assignments[node_id] = decision.sdm.harmonic_index
        else:
            self._tma_assignments.pop(node_id, None)

    def reallocate_node(self, node_id: int) -> NodeRegistration | None:
        """Move a node's FDM channel away from blocked spectrum.

        Preserves the node's bandwidth and demodulator (including any
        attached health monitor); only the channel plan changes.

        Degrades gracefully when the allocator has no clean channel
        left: the node keeps its old (interfered) registration, the
        failure is counted in :attr:`reallocation_failures` (surfaced
        by :meth:`stats`), and ``None`` is returned — a congested band
        must never strand a node without *any* channel, nor crash the
        supervisor that asked for the move.
        """
        from ..network.fdm import SpectrumExhausted

        reg = self.registration(node_id)
        if self.admission is not None:
            decision = self.admission.reallocate(node_id)
            if decision is None:
                self.reallocation_failures += 1
                return None
            self._adopt_decision(node_id)
            return self._registrations[node_id]
        try:
            channel = self.allocator.reallocate(node_id)
        except SpectrumExhausted:
            self.reallocation_failures += 1
            return None
        updated = NodeRegistration(node_id=node_id, channel=channel,
                                   config=reg.config)
        self._registrations[node_id] = updated
        return updated

    # --- SDM / TMA bookkeeping -------------------------------------------------

    def assign_tma_slot(self, node_id: int, harmonic_index: int) -> None:
        """Record which TMA harmonic a (SDM-sharing) node is hashed to.

        The assignment is part of the AP's control-plane state — it
        must survive a crash/restore cycle along with the FDM map, which
        is why :mod:`repro.cluster.checkpoint` serialises it.
        """
        if node_id not in self._registrations:
            raise KeyError(f"node {node_id} is not registered")
        if harmonic_index < 0:
            raise ValueError("harmonic index cannot be negative")
        self._tma_assignments[node_id] = int(harmonic_index)

    @property
    def tma_assignments(self) -> dict[int, int]:
        """Node -> TMA harmonic index for every SDM-sharing node."""
        return dict(self._tma_assignments)

    def stats(self) -> dict:
        """Control-plane health counters for operators and chaos gates."""
        stats = {
            "registered_nodes": len(self._registrations),
            "tma_assignments": len(self._tma_assignments),
            "reallocation_failures": self.reallocation_failures,
            "allocated_bandwidth_hz": self.allocator.allocated_bandwidth_hz,
            "blocked_ranges": len(self.allocator.blocked_ranges),
        }
        if self.carrier is not None:
            stats["carrier_grants"] = len(self.carrier)
            stats["carrier_utilization"] = self.carrier.utilization
        return stats

    def attach_health_monitor(self, node_id: int, monitor) -> None:
        """Attach a :class:`repro.resilience.LinkHealthMonitor` to one
        node's demodulator, so every capture feeds its health estimate."""
        demod = self._demodulators.get(node_id)
        if demod is None:
            raise KeyError(f"node {node_id} is not registered")
        demod.health_monitor = monitor

    # --- transmission phase -------------------------------------------------------

    def demodulate(self, node_id: int, capture: Waveform) -> DemodResult:
        """Run the joint ASK-FSK demodulator on one node's capture."""
        demod = self._demodulators.get(node_id)
        if demod is None:
            raise KeyError(f"node {node_id} is not registered")
        return demod.demodulate(capture)

    def receive_packet(self, node_id: int, capture: Waveform) -> Packet:
        """Demodulate a capture and decode the packet frame.

        Raises :class:`PacketError` if the frame cannot be recovered
        (bad preamble, truncation, CRC failure).
        """
        result = self.demodulate(node_id, capture)
        return self.codec.decode(result.bits)

    def try_receive_packet(self, node_id: int,
                           capture: Waveform) -> Packet | None:
        """Like :meth:`receive_packet` but returns None on frame loss."""
        try:
            return self.receive_packet(node_id, capture)
        except PacketError:
            return None
