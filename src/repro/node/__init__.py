"""Device layer: the mmX IoT node and access point as stateful objects.

:class:`~repro.node.node.MmxNode` glues the digital controller, VCO,
switch and beam pair into the transmitter of Fig. 3(a);
:class:`~repro.node.access_point.MmxAccessPoint` is the receiver of
Fig. 3(b) plus the network-side bookkeeping (channel allocation,
per-node demodulators).
"""

from .access_point import MmxAccessPoint, NodeRegistration
from .channelizer import ChannelSlice, Channelizer
from .controller import DigitalController, TransmitJob
from .node import MmxNode

__all__ = [
    "ChannelSlice",
    "Channelizer",
    "DigitalController",
    "MmxAccessPoint",
    "MmxNode",
    "NodeRegistration",
    "TransmitJob",
]
