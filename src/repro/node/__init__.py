"""Device layer: the mmX IoT node and access point as stateful objects.

:class:`~repro.node.node.MmxNode` glues the digital controller, VCO,
switch and beam pair into the transmitter of Fig. 3(a);
:class:`~repro.node.access_point.MmxAccessPoint` is the receiver of
Fig. 3(b) plus the network-side bookkeeping (channel allocation,
per-node demodulators).
"""

from .controller import DigitalController, TransmitJob
from .node import MmxNode
from .access_point import MmxAccessPoint, NodeRegistration
from .channelizer import ChannelSlice, Channelizer

__all__ = [name for name in dir() if not name.startswith("_")]
