"""The node's digital controller (a Raspberry Pi in the prototype).

Section 8.1: data flows from the Pi over SPI to the mmWave board; the
controller sets the VCO control voltage (channel + FSK nudges) and toggles
the SPDT per bit.  This model keeps the controller's job explicit —
framing payloads into packets and emitting the per-bit control sequence —
without pretending to be an OS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.packet import Packet, PacketCodec

__all__ = ["TransmitJob", "DigitalController"]


@dataclass(frozen=True)
class TransmitJob:
    """One framed transmission ready for the mmWave section.

    ``beam_bits`` drive the SPDT (1 -> Beam 1 port, 0 -> Beam 0 port);
    ``vco_bits`` drive the FSK nudge and are identical by construction —
    kept separate to mirror the two physical control lines.
    """

    beam_bits: np.ndarray
    vco_bits: np.ndarray
    packet: Packet

    @property
    def num_bits(self) -> int:
        """Frame length in channel bits."""
        return int(self.beam_bits.size)


class DigitalController:
    """Frames payloads and produces switch/VCO control sequences."""

    def __init__(self, codec: PacketCodec | None = None):
        self.codec = codec or PacketCodec()
        self._sequence = 0

    def next_sequence(self) -> int:
        """Allocate the next packet sequence number (wraps at 256)."""
        value = self._sequence
        self._sequence = (self._sequence + 1) % 256
        return value

    def reconfigure(self, codec: PacketCodec) -> None:
        """Swap the framing codec without resetting the sequence counter.

        This is the node half of the supervisor's coding step-down/up:
        the AP commands a new FEC mode over the side channel and the
        controller re-frames subsequent packets with it; in-flight
        sequence numbering is unaffected.
        """
        self.codec = codec

    def prepare(self, payload: bytes) -> TransmitJob:
        """Frame a payload into a transmit job."""
        packet = Packet(payload=payload, sequence=self.next_sequence())
        bits = self.codec.encode(packet)
        return TransmitJob(beam_bits=bits, vco_bits=bits.copy(), packet=packet)

    def prepare_stream(self, payload: bytes,
                       max_payload_bytes: int = 1024) -> list[TransmitJob]:
        """Split a large payload into multiple framed jobs."""
        if max_payload_bytes <= 0:
            raise ValueError("max payload size must be positive")
        jobs = []
        for start in range(0, max(len(payload), 1), max_payload_bytes):
            chunk = payload[start:start + max_payload_bytes]
            jobs.append(self.prepare(chunk))
        return jobs
