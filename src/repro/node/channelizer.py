"""Wideband channelisation: one AP capture, many node basebands.

The mmX AP digitises a wide slice of the 24 GHz ISM band and the FDM
nodes sit at different offsets inside it (§7a).  The baseband processor
must therefore *channelise*: mix each node's channel to DC, low-pass to
its channel width, and decimate to the node's modulation rate before
the joint demodulator runs.  This module is that stage — the software
equivalent of the per-channel DDCs in an SDR receive chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..phy.filters import apply_fir, fir_lowpass
from ..phy.waveform import Waveform

__all__ = ["ChannelSlice", "Channelizer"]


@dataclass(frozen=True)
class ChannelSlice:
    """One node's slot inside the wideband capture."""

    node_id: int
    offset_hz: float
    """Channel centre relative to the capture's centre frequency."""
    bandwidth_hz: float
    """Pass bandwidth to retain around the channel centre."""
    output_rate_hz: float
    """Sample rate the node's demodulator expects."""

    def __post_init__(self):
        if self.bandwidth_hz <= 0 or self.output_rate_hz <= 0:
            raise ValueError("bandwidth and output rate must be positive")
        if self.bandwidth_hz > self.output_rate_hz:
            raise ValueError("channel bandwidth exceeds the output rate")


class Channelizer:
    """Extracts per-node baseband streams from a wideband capture."""

    def __init__(self, slices: list[ChannelSlice], num_taps: int = 129):
        if not slices:
            raise ValueError("need at least one channel slice")
        if num_taps < 9:
            raise ValueError("too few filter taps")
        ids = [s.node_id for s in slices]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in the channel plan")
        self.slices = {s.node_id: s for s in slices}
        self.num_taps = num_taps

    def _slice_for(self, node_id: int) -> ChannelSlice:
        try:
            return self.slices[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} not in the channel plan") from None

    def extract(self, capture: Waveform, node_id: int) -> Waveform:
        """One node's complex baseband at its own sample rate.

        The wideband rate must be an integer multiple of the slice's
        output rate (the capture front-end is configured to make it so).
        """
        channel = self._slice_for(node_id)
        ratio = capture.sample_rate_hz / channel.output_rate_hz
        if abs(ratio - round(ratio)) > 1e-9 or ratio < 1:
            raise ValueError(
                f"capture rate {capture.sample_rate_hz:g} is not an "
                f"integer multiple of the output rate "
                f"{channel.output_rate_hz:g}")
        factor = int(round(ratio))
        # Mix the channel to DC.
        t = capture.time_axis()
        mixed = capture.samples * np.exp(-2j * np.pi * channel.offset_hz * t)
        # Anti-alias for the decimation AND confine to the channel.
        cutoff = min(channel.bandwidth_hz / 2.0,
                     0.45 * channel.output_rate_hz)
        if factor > 1 or cutoff < 0.45 * capture.sample_rate_hz:
            taps = fir_lowpass(cutoff, capture.sample_rate_hz,
                               num_taps=self.num_taps)
            mixed = apply_fir(mixed, taps)
        decimated = mixed[::factor]
        return Waveform(decimated, channel.output_rate_hz)

    def extract_all(self, capture: Waveform) -> dict[int, Waveform]:
        """Every node's baseband from one capture."""
        return {node_id: self.extract(capture, node_id)
                for node_id in self.slices}

    @staticmethod
    def compose(capture_rate_hz: float,
                signals: list[tuple[Waveform, float]]) -> Waveform:
        """Build a wideband capture from per-node baseband signals.

        The test-side inverse of :meth:`extract`: each ``(waveform,
        offset_hz)`` is upsampled (sample-and-hold at the integer rate
        ratio) and mixed up to its channel offset, then all are summed.
        Intended for constructing synthetic multi-node captures.
        """
        if not signals:
            raise ValueError("nothing to compose")
        lengths = []
        for wave, _ in signals:
            ratio = capture_rate_hz / wave.sample_rate_hz
            if abs(ratio - round(ratio)) > 1e-9 or ratio < 1:
                raise ValueError("capture rate must be an integer multiple "
                                 "of every signal's rate")
            lengths.append(len(wave) * int(round(ratio)))
        n = max(lengths)
        total = np.zeros(n, dtype=complex)
        t = np.arange(n) / capture_rate_hz
        for wave, offset in signals:
            factor = int(round(capture_rate_hz / wave.sample_rate_hz))
            upsampled = np.repeat(wave.samples, factor)
            padded = np.zeros(n, dtype=complex)
            padded[: upsampled.size] = upsampled
            total += padded * np.exp(2j * np.pi * offset * t)
        return Waveform(total, capture_rate_hz)
