"""The mmX IoT node: controller + VCO + SPDT + orthogonal beam pair.

Fig. 3(a) in hardware, one class here.  The node is deliberately dumb:
it holds no channel state, receives no feedback, and never searches for a
beam — it just tunes its VCO to the channel the AP assigned at
initialization and toggles the switch per data bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..antenna.orthogonal import OrthogonalBeamPair, design_mmx_beams
from ..channel.multipath import ChannelResponse
from ..constants import ISM_24GHZ_HIGH_HZ, ISM_24GHZ_LOW_HZ, NODE_EIRP_DBM
from ..core.ask_fsk import AskFskConfig
from ..core.otam import OtamModulator
from ..hardware.chains import NodeHardware
from ..phy.waveform import Waveform
from .controller import DigitalController, TransmitJob

__all__ = ["MmxNode"]


@dataclass
class MmxNode:
    """A complete mmX node device."""

    node_id: int = 0
    hardware: NodeHardware = field(default_factory=NodeHardware)
    controller: DigitalController = field(default_factory=DigitalController)
    config: AskFskConfig = field(default_factory=AskFskConfig)
    beams: OrthogonalBeamPair = None
    eirp_dbm: float = NODE_EIRP_DBM

    def __post_init__(self):
        self.hardware.switch.validate_bitrate(self.config.bit_rate_bps)
        self._channel_center_hz: float | None = None
        self._modulator = OtamModulator(self.config,
                                        switch=self.hardware.switch,
                                        eirp_dbm=self.eirp_dbm)

    # --- initialization phase (section 4) -------------------------------------

    def assign_channel(self, center_frequency_hz: float) -> None:
        """Accept a channel assignment from the AP (via WiFi/BLE side link).

        Tunes the VCO; rejects carriers the VCO cannot reach or that fall
        outside the ISM band edges the paper operates in.
        """
        vco = self.hardware.vco
        half_bw = self.config.occupied_bandwidth_hz / 2.0
        if (center_frequency_hz - half_bw < ISM_24GHZ_LOW_HZ - 50e6
                or center_frequency_hz + half_bw > ISM_24GHZ_HIGH_HZ + 1e6):
            raise ValueError("assigned channel outside the 24 GHz ISM band")
        # Will raise if the VCO cannot tune there.
        vco.voltage_for_frequency(center_frequency_hz)
        if self.beams is None:
            self.beams = design_mmx_beams(center_frequency_hz)
        self._channel_center_hz = center_frequency_hz

    @property
    def channel_center_hz(self) -> float:
        """The assigned carrier; raises if initialization never happened."""
        if self._channel_center_hz is None:
            raise RuntimeError(
                f"node {self.node_id} has no channel assignment yet")
        return self._channel_center_hz

    @property
    def is_initialized(self) -> bool:
        """Whether the AP has assigned this node a channel."""
        return self._channel_center_hz is not None

    def vco_control_voltages(self) -> tuple[float, float]:
        """Control voltages implementing the two FSK tones.

        The joint ASK-FSK frequency nudge is "simply implemented by
        changing the control voltage of the VCO" (section 6.3); this
        computes the exact pair of voltages for the assigned channel.
        """
        vco = self.hardware.vco
        f0 = self.channel_center_hz + self.config.freq_zero_hz
        f1 = self.channel_center_hz + self.config.freq_one_hz
        return vco.voltage_for_frequency(f0), vco.voltage_for_frequency(f1)

    # --- transmission phase ----------------------------------------------------

    def frame(self, payload: bytes) -> TransmitJob:
        """Frame a payload into an over-the-air bit sequence."""
        return self.controller.prepare(payload)

    def transmit(self, payload: bytes,
                 channel: ChannelResponse) -> tuple[TransmitJob, Waveform]:
        """Frame and 'radiate' a payload through a traced channel.

        Returns the job and the waveform as it arrives at the AP (before
        receiver noise) — modulation happens over the air, so there is no
        meaningful "transmitted waveform" to return.
        """
        if not self.is_initialized:
            raise RuntimeError("transmit before channel assignment")
        job = self.frame(payload)
        wave = self._modulator.received_waveform(job.beam_bits, channel)
        return job, wave

    # --- accounting --------------------------------------------------------------

    def energy_for_payload_j(self, payload_bytes: int) -> float:
        """Transmit energy for one framed payload at the configured rate."""
        frame_bits = self.controller.codec.frame_length_bits(payload_bytes)
        duration_s = frame_bits / self.config.bit_rate_bps
        return self.hardware.total_power_w * duration_s
