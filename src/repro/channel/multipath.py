"""Combining sparse paths into per-beam complex channel gains.

This is where OTAM's physics lives.  For a chosen transmit beam, each
traced path contributes a complex amplitude

    a_p = 10^((G_tx(phi_dep) + G_rx(phi_arr) - FSPL(L) - excess) / 20)
          * exp(-j 2 pi L / lambda)

and the beam's channel gain is ``h = sum_p a_p``.  The received power for
that beam is ``EIRP-referenced``: we fold the transmit pattern in as a
*relative* pattern on top of the node's EIRP, so

    P_rx[dBm] = EIRP_peak[dBm] + 20 log10 |h|.

The two beams see different path sets (Beam 1 lights up the LoS leg,
Beam 0 the ±30° reflections), so their gains differ — that difference *is*
the over-the-air ASK signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.geometry import Point, normalize_angle
from ..units import amplitude_to_db, db_to_amplitude, wavelength
from .pathloss import free_space_path_loss_db, oxygen_absorption_db
from .raytrace import PropagationPath, trace_paths

__all__ = ["ChannelResponse", "beam_channel_gain", "two_beam_gains"]


@dataclass(frozen=True)
class ChannelResponse:
    """Complex channel gains for both node beams at one placement.

    ``h0``/``h1`` are EIRP-referenced field gains built from the
    *normalised* antenna patterns: received power for bit b is
    ``EIRP_peak_dbm + G_ap_peak_dbi + 20 log10 |h_b|`` (the link layer
    adds the AP's absolute 5 dBi).  ``paths`` keeps the traced rays for
    inspection.
    """

    h1: complex
    h0: complex
    paths: tuple[PropagationPath, ...]

    def level_db(self, bit: int) -> float:
        """Received level for a bit, in dB relative to the node's EIRP."""
        h = self.h1 if bit == 1 else self.h0
        mag = abs(h)
        return float(amplitude_to_db(mag)) if mag > 0 else float("-inf")

    @property
    def ask_contrast_db(self) -> float:
        """|level difference| between the beams [dB] — the ASK opening."""
        a, b = abs(self.h1), abs(self.h0)
        hi, lo = max(a, b), min(a, b)
        if hi == 0.0:
            return 0.0
        if lo == 0.0:
            return float("inf")
        return float(amplitude_to_db(hi / lo))

    @property
    def inverted(self) -> bool:
        """True when Beam 0 is received *stronger* than Beam 1.

        This is the blocked-LoS situation of Fig. 4(b): all bits arrive
        inverted and the preamble must flip them back.
        """
        return abs(self.h0) > abs(self.h1)

    def difference_gain(self) -> float:
        """|h1 - h0| — amplitude of the OTAM decision distance.

        The envelope detector distinguishes bits by the *difference* of
        the two received levels, so this (squared) is the signal power
        entering the ASK BER formula.
        """
        return abs(abs(self.h1) - abs(self.h0))

    def stronger_gain(self) -> float:
        """max(|h1|, |h0|) — the level FSK detection rides on."""
        return max(abs(self.h1), abs(self.h0))


def beam_channel_gain(paths, tx_field, rx_field,
                      tx_orientation_rad: float,
                      rx_orientation_rad: float,
                      frequency_hz: float) -> complex:
    """Complex channel gain for one transmit beam over traced paths.

    Parameters
    ----------
    paths:
        Iterable of :class:`PropagationPath`.
    tx_field, rx_field:
        Callables mapping an antenna-relative angle [rad] to *field
        amplitude* relative to each pattern's peak (1.0 at peak).
    tx_orientation_rad, rx_orientation_rad:
        Absolute boresight bearings of node and AP antennas.
    frequency_hz:
        Carrier frequency, for the phase term and FSPL.
    """
    lam = float(wavelength(frequency_hz))
    total = 0.0 + 0.0j
    for p in paths:
        dep = normalize_angle(p.departure_bearing_rad - tx_orientation_rad)
        arr = normalize_angle(p.arrival_bearing_rad - rx_orientation_rad)
        g_tx = float(np.asarray(tx_field(dep), dtype=float))
        g_rx = float(np.asarray(rx_field(arr), dtype=float))
        if g_tx <= 0.0 or g_rx <= 0.0:
            continue
        loss_db = (float(free_space_path_loss_db(p.length_m, frequency_hz))
                   + float(oxygen_absorption_db(p.length_m, frequency_hz))
                   + p.excess_loss_db)
        amplitude = g_tx * g_rx * float(db_to_amplitude(-loss_db))
        phase = -2.0 * np.pi * p.length_m / lam
        total += amplitude * np.exp(1j * phase)
    return complex(total)


def two_beam_gains(node_position: Point, ap_position: Point, room,
                   beams, ap_element,
                   node_orientation_rad: float,
                   ap_orientation_rad: float,
                   frequency_hz: float,
                   max_bounces: int = 1) -> ChannelResponse:
    """Trace the room once and evaluate both node beams against it.

    ``beams`` is an :class:`repro.antenna.OrthogonalBeamPair`;
    ``ap_element`` anything with a ``field(theta)`` method (the AP dipole).
    """
    paths = tuple(trace_paths(node_position, ap_position, room,
                              max_bounces=max_bounces))
    gains = {}
    for bit in (0, 1):
        gains[bit] = beam_channel_gain(
            paths,
            tx_field=lambda theta, b=bit: beams.field(b, theta),
            rx_field=ap_element.field,
            tx_orientation_rad=node_orientation_rad,
            rx_orientation_rad=ap_orientation_rad,
            frequency_hz=frequency_hz,
        )
    return ChannelResponse(h1=gains[1], h0=gains[0], paths=paths)
