"""Path-loss models for 24 GHz indoor propagation.

The headline physics of the paper: "mmWave signals decay very quickly with
distance" (section 1).  Free-space loss at 24 GHz is ~20 dB worse than at
2.4 GHz, which is why every other design decision (directional beams, OTAM)
exists.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ..units import FloatArray, amplitude_to_db, linear_to_db, wavelength

__all__ = [
    "free_space_path_loss_db",
    "log_distance_path_loss_db",
    "friis_received_power_dbm",
    "oxygen_absorption_db",
]


def free_space_path_loss_db(distance_m: npt.ArrayLike,
                            frequency_hz: float) -> FloatArray:
    """Friis free-space path loss [dB]: ``20 log10(4 pi d / lambda)``.

    Distances below one wavelength are clamped to one wavelength — the
    far-field assumption breaks there and negative "loss" would corrupt
    link budgets.
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    d = np.asarray(distance_m, dtype=np.float64)
    if np.any(d < 0):
        raise ValueError("distance cannot be negative")
    lam = wavelength(frequency_hz)
    d = np.maximum(d, lam)
    return amplitude_to_db(4.0 * np.pi * d / lam)


def log_distance_path_loss_db(distance_m: npt.ArrayLike, frequency_hz: float,
                              exponent: float = 2.0,
                              reference_m: float = 1.0) -> FloatArray:
    """Log-distance model: FSPL at ``reference_m`` plus ``10 n log10(d/d0)``.

    Indoor LoS mmWave measurements report exponents near 2 (free space);
    cluttered NLoS fits use 2.5-3.  Exposed for ablations.
    """
    if exponent <= 0:
        raise ValueError("path-loss exponent must be positive")
    if reference_m <= 0:
        raise ValueError("reference distance must be positive")
    d = np.maximum(np.asarray(distance_m, dtype=np.float64), reference_m)
    pl0 = free_space_path_loss_db(reference_m, frequency_hz)
    return pl0 + exponent * linear_to_db(d / reference_m)


def friis_received_power_dbm(eirp_dbm: float, rx_gain_dbi: float,
                             distance_m: npt.ArrayLike,
                             frequency_hz: float) -> FloatArray:
    """Received power [dBm] over a clear free-space path."""
    return (eirp_dbm + rx_gain_dbi
            - free_space_path_loss_db(distance_m, frequency_hz))


def oxygen_absorption_db(distance_m: npt.ArrayLike,
                         frequency_hz: float) -> FloatArray:
    """Atmospheric absorption [dB] over a path.

    Negligible at 24 GHz (~0.1 dB/km) but ~15 dB/km at 60 GHz, where the
    O2 resonance sits.  Included so the 60 GHz variants (OpenMili-class
    platforms in Table 1) pay the right penalty.
    """
    d_km = np.asarray(distance_m, dtype=np.float64) / 1000.0
    f_ghz = frequency_hz / 1e9
    if 57.0 <= f_ghz <= 64.0:
        rate_db_per_km = 15.0
    elif 22.0 <= f_ghz <= 26.0:
        # Water-vapour line near 22 GHz contributes ~0.2 dB/km.
        rate_db_per_km = 0.2
    else:
        rate_db_per_km = 0.1
    return rate_db_per_km * d_km
