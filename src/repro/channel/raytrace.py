"""Image-method ray tracing over the room geometry.

Finds the sparse set of propagation paths between a node and the AP:
the direct (LoS) leg plus first- and optionally second-order wall
reflections.  Each path records its total length, the departure bearing at
the transmitter and arrival bearing at the receiver (absolute angles; the
caller converts to antenna-relative angles), and its *excess* loss —
reflection losses plus any blocker penetration along its legs.

This is the substrate for everything the paper's Fig. 2 and Fig. 4
describe: the LoS path, the environmental reflection OTAM's Beam 0 uses,
and the way a person standing in the LoS leg pushes the direct path 10-15
dB below the reflected one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.environment import Room, Wall
from ..sim.geometry import (
    Point,
    Segment,
    angle_of,
    distance,
    reflect_point_across_line,
    segment_intersection,
)
from ..units import amplitude_to_db

__all__ = ["PropagationPath", "trace_paths"]


@dataclass(frozen=True)
class PropagationPath:
    """One resolved propagation path between transmitter and receiver."""

    vertices: tuple[Point, ...]
    """Polyline from transmitter to receiver, including bounce points."""

    length_m: float
    """Total unfolded path length [m]."""

    departure_bearing_rad: float
    """Absolute bearing of the first leg, as seen at the transmitter."""

    arrival_bearing_rad: float
    """Absolute bearing pointing from receiver back along the last leg."""

    excess_loss_db: float
    """Reflection + blockage loss beyond free-space over ``length_m``."""

    kind: str
    """'los', 'reflection' or 'reflection2'."""

    num_bounces: int
    """Number of wall reflections along the path."""

    @property
    def is_los(self) -> bool:
        """Whether this is the direct line-of-sight path."""
        return self.num_bounces == 0


def _wall_blocks(leg: Segment, walls: list[Wall],
                 skip: set[int]) -> bool:
    """Whether any wall (except those in ``skip``) cuts a leg's interior."""
    for i, wall in enumerate(walls):
        if i in skip or not wall.occludes:
            continue
        hit = segment_intersection(leg, wall.segment)
        if hit is None:
            continue
        # Endpoint grazes (the leg starts/ends exactly on the wall, e.g.
        # the bounce point itself) do not count as blockage.
        if distance(hit, leg.a) > 1e-6 and distance(hit, leg.b) > 1e-6:
            return True
    return False


def _leg_loss_db(leg: Segment, room: Room) -> float:
    """Blocker penetration loss along one leg."""
    return room.blockage_loss_db(leg)


def _los_path(tx: Point, rx: Point, room: Room) -> PropagationPath | None:
    leg = Segment(tx, rx)
    if _wall_blocks(leg, room.walls, skip=set()):
        return None
    return PropagationPath(
        vertices=(tx, rx),
        length_m=leg.length(),
        departure_bearing_rad=angle_of(tx, rx),
        arrival_bearing_rad=angle_of(rx, tx),
        excess_loss_db=_leg_loss_db(leg, room),
        kind="los",
        num_bounces=0,
    )


def _first_order_path(tx: Point, rx: Point, room: Room,
                      wall_idx: int) -> PropagationPath | None:
    wall = room.walls[wall_idx]
    image = reflect_point_across_line(rx, wall.segment)
    bounce = segment_intersection(Segment(tx, image), wall.segment)
    if bounce is None:
        return None
    leg1 = Segment(tx, bounce)
    leg2 = Segment(bounce, rx)
    if leg1.length() < 1e-6 or leg2.length() < 1e-6:
        return None
    if (_wall_blocks(leg1, room.walls, skip={wall_idx})
            or _wall_blocks(leg2, room.walls, skip={wall_idx})):
        return None
    excess = (wall.reflection_loss_db
              + _leg_loss_db(leg1, room) + _leg_loss_db(leg2, room))
    return PropagationPath(
        vertices=(tx, bounce, rx),
        length_m=leg1.length() + leg2.length(),
        departure_bearing_rad=angle_of(tx, bounce),
        arrival_bearing_rad=angle_of(rx, bounce),
        excess_loss_db=excess,
        kind="reflection",
        num_bounces=1,
    )


def _second_order_path(tx: Point, rx: Point, room: Room,
                       first_idx: int, second_idx: int
                       ) -> PropagationPath | None:
    if first_idx == second_idx:
        return None
    w1 = room.walls[first_idx]
    w2 = room.walls[second_idx]
    # Image of rx in w2, then image of that in w1.
    image2 = reflect_point_across_line(rx, w2.segment)
    image1 = reflect_point_across_line(image2, w1.segment)
    bounce1 = segment_intersection(Segment(tx, image1), w1.segment)
    if bounce1 is None:
        return None
    bounce2 = segment_intersection(Segment(bounce1, image2), w2.segment)
    if bounce2 is None:
        return None
    legs = [Segment(tx, bounce1), Segment(bounce1, bounce2),
            Segment(bounce2, rx)]
    if any(leg.length() < 1e-6 for leg in legs):
        return None
    skips = [{first_idx}, {first_idx, second_idx}, {second_idx}]
    for leg, skip in zip(legs, skips):
        if _wall_blocks(leg, room.walls, skip=skip):
            return None
    excess = (w1.reflection_loss_db + w2.reflection_loss_db
              + sum(_leg_loss_db(leg, room) for leg in legs))
    return PropagationPath(
        vertices=(tx, bounce1, bounce2, rx),
        length_m=sum(leg.length() for leg in legs),
        departure_bearing_rad=angle_of(tx, bounce1),
        arrival_bearing_rad=angle_of(rx, bounce2),
        excess_loss_db=excess,
        kind="reflection2",
        num_bounces=2,
    )


def trace_paths(tx: Point, rx: Point, room: Room,
                max_bounces: int = 1,
                max_excess_loss_db: float = 60.0) -> list[PropagationPath]:
    """All propagation paths between ``tx`` and ``rx`` up to ``max_bounces``.

    Paths whose excess loss exceeds ``max_excess_loss_db`` are pruned —
    they are irrelevant against the paper's 10-35 dB SNR operating range.
    Results are sorted by increasing excess-plus-spreading significance
    (LoS first, then strongest reflections).
    """
    if max_bounces < 0:
        raise ValueError("max_bounces must be >= 0")
    paths: list[PropagationPath] = []
    los = _los_path(tx, rx, room)
    if los is not None:
        paths.append(los)
    if max_bounces >= 1:
        for i in range(len(room.walls)):
            p = _first_order_path(tx, rx, room, i)
            if p is not None:
                paths.append(p)
    if max_bounces >= 2:
        for i in range(len(room.walls)):
            for j in range(len(room.walls)):
                p = _second_order_path(tx, rx, room, i, j)
                if p is not None:
                    paths.append(p)
    paths = [p for p in paths if p.excess_loss_db <= max_excess_loss_db]
    # Sort by a rough strength proxy: excess loss plus spreading loss
    # relative to a 1 m reference (20 log10 of the length ratio).
    paths.sort(key=lambda p: p.excess_loss_db
               + float(amplitude_to_db(max(p.length_m, 1e-3))))
    return paths
