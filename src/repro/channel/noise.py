"""Receiver noise: thermal floor and AWGN sample generation."""

from __future__ import annotations

import numpy as np

from ..constants import THERMAL_NOISE_DBM_PER_HZ
from ..rng import ensure_rng
from ..units import dbm_to_milliwatts, linear_to_db

__all__ = ["noise_power_dbm", "complex_awgn"]


def noise_power_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Noise power [dBm] in a bandwidth, including receiver noise figure."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return (THERMAL_NOISE_DBM_PER_HZ + float(linear_to_db(bandwidth_hz))
            + noise_figure_db)


def complex_awgn(n: int, power_dbm: float,
                 rng: np.random.Generator | None = None) -> np.ndarray:
    """Complex Gaussian noise samples with total power ``power_dbm``.

    The returned samples live in the same "dBm-referenced amplitude"
    currency the channel gains use: an amplitude of 1.0 corresponds to
    0 dBm, so power ``p`` dBm maps to mean |x|^2 of ``10^(p/10)``.
    """
    if n < 0:
        raise ValueError("sample count must be non-negative")
    rng = ensure_rng(rng)
    power_lin = float(dbm_to_milliwatts(power_dbm))
    sigma = np.sqrt(power_lin / 2.0)
    return sigma * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
