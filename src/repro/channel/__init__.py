"""mmWave propagation substrate: path loss, ray tracing, multipath, noise.

mmWave channels are sparse — "typically there are a few paths" between a
node and the AP (section 2, citing [42]).  The reproduction builds those
paths explicitly with an image-method ray tracer over the room geometry,
applies Friis path loss plus the paper's reflection/blockage excess-loss
bands, and exposes per-beam complex channel gains to the OTAM core.
"""

from .multipath import ChannelResponse, beam_channel_gain, two_beam_gains
from .noise import noise_power_dbm, complex_awgn
from .pathloss import (
    free_space_path_loss_db,
    log_distance_path_loss_db,
    friis_received_power_dbm,
    oxygen_absorption_db,
)
from .raytrace import PropagationPath, trace_paths
from .statistics import (
    ChannelStats,
    angular_spread_rad,
    characterize,
    rician_k_factor_db,
    rms_delay_spread_s,
)

__all__ = [
    "ChannelResponse",
    "ChannelStats",
    "PropagationPath",
    "angular_spread_rad",
    "beam_channel_gain",
    "characterize",
    "complex_awgn",
    "free_space_path_loss_db",
    "friis_received_power_dbm",
    "log_distance_path_loss_db",
    "noise_power_dbm",
    "oxygen_absorption_db",
    "rician_k_factor_db",
    "rms_delay_spread_s",
    "trace_paths",
    "two_beam_gains",
]
