"""Channel characterisation: sparsity, K-factor, delay/angular spread.

Section 2 leans on measurement studies ("typically there are a few paths
[42]") and §6.1 on attenuation bands.  These statistics let the
reproduction *check its own channel model* against those claims: path
counts across placements, Rician K-factor (LoS dominance), RMS delay
spread (flat-fading validity for OTAM's symbol rates) and angular spread
(why two fixed beams suffice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..units import db_to_amplitude, linear_to_db
from .pathloss import free_space_path_loss_db
from .raytrace import PropagationPath, trace_paths

__all__ = [
    "path_amplitudes",
    "rician_k_factor_db",
    "rms_delay_spread_s",
    "angular_spread_rad",
    "ChannelStats",
    "characterize",
]

_SPEED_OF_LIGHT = 299_792_458.0


def path_amplitudes(paths: list[PropagationPath],
                    frequency_hz: float) -> np.ndarray:
    """Linear field amplitude of each path (isotropic antennas)."""
    amps = []
    for p in paths:
        loss_db = (float(free_space_path_loss_db(p.length_m, frequency_hz))
                   + p.excess_loss_db)
        amps.append(float(db_to_amplitude(-loss_db)))
    return np.asarray(amps)


def rician_k_factor_db(paths: list[PropagationPath],
                       frequency_hz: float) -> float:
    """K-factor: dominant-path power over the sum of the rest [dB].

    ``+inf`` for a single-path channel, ``-inf`` when no paths exist.
    A large K is what makes OTAM's level contrast reliable.
    """
    amps = path_amplitudes(paths, frequency_hz)
    if amps.size == 0:
        return float("-inf")
    if amps.size == 1:
        return float("inf")
    powers = np.sort(amps**2)[::-1]
    rest = float(np.sum(powers[1:]))
    if rest <= 0.0:
        return float("inf")
    return float(linear_to_db(powers[0] / rest))


def rms_delay_spread_s(paths: list[PropagationPath],
                       frequency_hz: float) -> float:
    """Power-weighted RMS delay spread [s].

    For mmX: symbol times are >= 10 ns (100 Mbps), while indoor traced
    spreads come out at a few ns — the flat-fading assumption behind
    simple ASK holds with margin.
    """
    amps = path_amplitudes(paths, frequency_hz)
    if amps.size == 0:
        return 0.0
    delays = np.asarray([p.length_m / _SPEED_OF_LIGHT for p in paths])
    weights = amps**2 / np.sum(amps**2)
    mean_delay = float(np.sum(weights * delays))
    return float(np.sqrt(np.sum(weights * (delays - mean_delay) ** 2)))


def angular_spread_rad(paths: list[PropagationPath],
                       frequency_hz: float,
                       at_transmitter: bool = True) -> float:
    """Power-weighted circular std of departure (or arrival) bearings.

    Small angular spread at the node is the geometric fact behind two
    fixed beams covering the useful directions.
    """
    amps = path_amplitudes(paths, frequency_hz)
    if amps.size == 0:
        return 0.0
    bearings = np.asarray([
        p.departure_bearing_rad if at_transmitter else p.arrival_bearing_rad
        for p in paths])
    weights = amps**2 / np.sum(amps**2)
    # Circular statistics: resultant length -> circular standard deviation.
    c = float(np.sum(weights * np.cos(bearings)))
    s = float(np.sum(weights * np.sin(bearings)))
    resultant = math.hypot(c, s)
    if resultant >= 1.0:
        return 0.0
    return float(math.sqrt(-2.0 * math.log(max(resultant, 1e-12))))


@dataclass(frozen=True)
class ChannelStats:
    """Aggregate channel statistics over many placements."""

    mean_path_count: float
    median_path_count: float
    max_path_count: int
    median_k_factor_db: float
    median_delay_spread_ns: float
    median_angular_spread_deg: float

    @property
    def is_sparse(self) -> bool:
        """The paper's 'typically a few paths' claim (section 2)."""
        return self.median_path_count <= 8.0

    def flat_fading_at(self, bit_rate_bps: float) -> bool:
        """Whether the symbol time dwarfs the delay spread (>=10x)."""
        symbol_s = 1.0 / bit_rate_bps
        return symbol_s >= 10.0 * self.median_delay_spread_ns * 1e-9


def characterize(room, placements, frequency_hz: float = 24.125e9,
                 max_bounces: int = 1) -> ChannelStats:
    """Trace many placements and summarise the channel's character."""
    counts, k_factors, spreads, angles = [], [], [], []
    for placement in placements:
        paths = trace_paths(placement.node_position, placement.ap_position,
                            room, max_bounces=max_bounces)
        counts.append(len(paths))
        if paths:
            k_factors.append(rician_k_factor_db(paths, frequency_hz))
            spreads.append(rms_delay_spread_s(paths, frequency_hz) * 1e9)
            angles.append(math.degrees(
                angular_spread_rad(paths, frequency_hz)))
    if not counts:
        raise ValueError("no placements to characterise")
    finite_k = [k for k in k_factors if math.isfinite(k)]
    return ChannelStats(
        mean_path_count=float(np.mean(counts)),
        median_path_count=float(np.median(counts)),
        max_path_count=int(np.max(counts)),
        median_k_factor_db=float(np.median(finite_k)) if finite_k else float("inf"),
        median_delay_spread_ns=float(np.median(spreads)) if spreads else 0.0,
        median_angular_spread_deg=float(np.median(angles)) if angles else 0.0,
    )
