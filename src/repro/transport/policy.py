"""The ARQ policy handed to :class:`repro.network.mac.UplinkSimulator`.

The seed MAC retried a lost frame immediately, ``max_retries`` times,
then gave up — no pacing, no memory.  :class:`AdaptiveRetransmission`
replaces that loop: each failed transmission waits out the current
Jacobson RTO (the time a real sender needs to *notice* the loss) and
backs the timer off exponentially, while successful first
transmissions feed the estimator (Karn's rule) so the timeout tracks
the link's actual service time instead of a hard-coded constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .rto import RtoEstimator

__all__ = ["AdaptiveRetransmission"]


@dataclass
class AdaptiveRetransmission:
    """Jacobson-paced retransmission policy for the uplink MAC.

    Attributes
    ----------
    estimator:
        The adaptive RTO clock; shared across packets so the timeout
        converges over a run (and can be inspected afterwards).
    max_transmissions:
        Hard cap on attempts per packet — the last-resort bound, set
        well above the old ``max_retries`` default because pacing (not
        the cap) is now what protects the channel.
    ack_delay_s:
        Fixed ACK service time added to every attempt's round trip
        (side-channel latency for control traffic, 0 for the pure
        uplink model).
    """

    estimator: RtoEstimator = field(
        default_factory=lambda: RtoEstimator(initial_rto_s=0.02,
                                             min_rto_s=1e-4))
    max_transmissions: int = 8
    ack_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_transmissions < 1:
            raise ValueError("need at least one transmission")
        if self.ack_delay_s < 0:
            raise ValueError("ACK delay cannot be negative")

    def attempt_cost_s(self, airtime_s: float, success: bool,
                       first_attempt: bool) -> float:
        """Wall-clock cost of one transmission attempt, and learn from it.

        A successful attempt costs its airtime plus the ACK delay; the
        round trip feeds the estimator only when ``first_attempt``
        (Karn).  A failed attempt additionally waits out the current
        RTO before the retransmission can start, and backs the timer
        off.
        """
        if airtime_s <= 0:
            raise ValueError("airtime must be positive")
        rtt_s = airtime_s + self.ack_delay_s
        if success:
            if first_attempt:
                self.estimator.observe(rtt_s)
            return rtt_s
        cost = rtt_s + self.estimator.rto_s
        self.estimator.on_timeout()
        return cost
