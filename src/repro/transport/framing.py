"""CRC-framed transport PDUs with 16-bit sequence numbers.

The PHY already frames bits (:mod:`repro.core.packet`: preamble +
header + CRC over the air).  The *transport* needs its own framing one
layer up: data segments and ACKs exchanged between a node's MAC and the
AP's control plane, integrity-checked end to end so a corrupted segment
is detected even when the PHY CRC happened to pass (or the segment
crossed the WiFi/BLE side channel, which has no mmX PHY at all).

Wire layout (big-endian)::

    [ kind:     1 byte  ('D' data / 'A' ack)        ]
    [ sequence: 2 bytes ]  data: segment seq; ack: cumulative ack
    [ length:   2 bytes ]  payload byte count (data only, 0 for acks)
    [ sack:     4 bytes ]  selective-ack bitmap (acks only, 0 for data)
    [ payload:  length bytes ]
    [ crc16:    2 bytes (CCITT, over everything above) ]

The 32-bit SACK bitmap covers the 32 sequence numbers *after* the
cumulative ack — bit ``i`` set means ``ack + 1 + i`` arrived out of
order — which caps the usable selective-repeat window at
:data:`MAX_WINDOW`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..phy.coding import crc16_ccitt

__all__ = ["FrameError", "TransportFrame", "MAX_SEQ", "MAX_WINDOW",
           "seq_distance"]

MAX_SEQ = 1 << 16
"""Sequence numbers live in [0, MAX_SEQ); arithmetic wraps modulo."""

MAX_WINDOW = 32
"""Largest selective-repeat window the 32-bit SACK bitmap can describe."""

_HEADER = struct.Struct(">cHHI")
_CRC = struct.Struct(">H")

DATA = b"D"
ACK = b"A"


class FrameError(Exception):
    """Raised when a received transport frame cannot be recovered."""


def seq_distance(newer: int, older: int) -> int:
    """Forward distance from ``older`` to ``newer`` modulo the seq space."""
    return (newer - older) % MAX_SEQ


@dataclass(frozen=True)
class TransportFrame:
    """One transport PDU: a data segment or a (selective) ACK."""

    kind: str
    sequence: int
    payload: bytes = b""
    sack_bitmap: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("data", "ack"):
            raise ValueError("kind must be 'data' or 'ack'")
        if not 0 <= self.sequence < MAX_SEQ:
            raise ValueError("sequence must fit in 16 bits")
        if not 0 <= self.sack_bitmap < (1 << 32):
            raise ValueError("SACK bitmap must fit in 32 bits")
        if self.kind == "data" and self.sack_bitmap:
            raise ValueError("data frames carry no SACK bitmap")
        if self.kind == "ack" and self.payload:
            raise ValueError("ack frames carry no payload")
        if len(self.payload) >= (1 << 16):
            raise ValueError("payload too large for the 16-bit length")

    @property
    def is_data(self) -> bool:
        """Whether this is a data segment (vs an ACK)."""
        return self.kind == "data"

    def sacked_sequences(self) -> tuple[int, ...]:
        """Sequences the SACK bitmap marks as received out of order."""
        return tuple((self.sequence + 1 + i) % MAX_SEQ
                     for i in range(MAX_WINDOW)
                     if self.sack_bitmap >> i & 1)

    def encode(self) -> bytes:
        """Serialise to the CRC-protected wire format."""
        body = _HEADER.pack(DATA if self.is_data else ACK,
                            self.sequence, len(self.payload),
                            self.sack_bitmap) + self.payload
        return body + _CRC.pack(crc16_ccitt(body))

    @classmethod
    def decode(cls, data: bytes) -> TransportFrame:
        """Recover a frame; raises :class:`FrameError` on corruption."""
        if len(data) < _HEADER.size + _CRC.size:
            raise FrameError("frame shorter than header + CRC")
        kind_byte, sequence, length, sack = _HEADER.unpack_from(data)
        end = _HEADER.size + length
        if len(data) != end + _CRC.size:
            raise FrameError("frame length does not match the header")
        (received_crc,) = _CRC.unpack_from(data, end)
        if crc16_ccitt(data[:end]) != received_crc:
            raise FrameError("transport CRC check failed")
        if kind_byte == DATA:
            kind = "data"
        elif kind_byte == ACK:
            kind = "ack"
        else:
            raise FrameError(f"unknown frame kind {kind_byte!r}")
        return cls(kind=kind, sequence=sequence,
                   payload=data[_HEADER.size:end], sack_bitmap=sack)

    @classmethod
    def data_frame(cls, sequence: int, payload: bytes) -> TransportFrame:
        """Convenience constructor for a data segment."""
        return cls(kind="data", sequence=sequence, payload=payload)

    @classmethod
    def ack_frame(cls, cumulative: int, sack_bitmap: int = 0
                  ) -> TransportFrame:
        """Convenience constructor for a (selective) ACK."""
        return cls(kind="ack", sequence=cumulative, sack_bitmap=sack_bitmap)
