"""Selective-repeat ARQ over CRC-framed transport segments.

mmX's air interface is feedback-free, but the *system* is not: the
WiFi/BLE side channel (and, for AP-to-AP traffic, the backhaul) can
carry ACKs, and once it does the right reliability discipline is
selective repeat — only the segments actually lost are resent, the
window keeps moving, and the retransmission clock is the Jacobson
estimator of :mod:`repro.transport.rto` rather than a fixed retry
count.

Three pieces:

* :class:`SelectiveRepeatSender` — a sliding window of outstanding
  segments, each with its own retransmission deadline; cumulative +
  selective ACKs slide/punch the window; Karn's rule guards the RTT
  samples.
* :class:`SelectiveRepeatReceiver` — a reorder buffer that delivers
  payloads strictly in order and answers every segment with a
  cumulative-plus-SACK frame.
* :class:`ReliableLink` — drives sender and receiver over a seeded
  lossy channel in simulated time, producing :class:`TransferStats` —
  the end-to-end "did every byte arrive, in order, and at what cost"
  numbers the chaos gates assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..rng import fresh_rng
from ..telemetry import NullRecorder, TelemetryRecorder
from .framing import MAX_SEQ, MAX_WINDOW, TransportFrame, seq_distance
from .rto import RtoEstimator

__all__ = ["SegmentState", "SelectiveRepeatSender",
           "SelectiveRepeatReceiver", "TransferStats", "ReliableLink"]


@dataclass
class SegmentState:
    """Book-keeping for one outstanding (sent, unacked) segment."""

    frame: TransportFrame
    first_sent_s: float
    deadline_s: float
    transmissions: int = 1
    retransmitted: bool = False
    acked: bool = False


class SelectiveRepeatSender:
    """The sending half of selective repeat, in explicit simulated time."""

    def __init__(self, window: int = 16,
                 rto: RtoEstimator | None = None,
                 max_transmissions: int = 16) -> None:
        if not 1 <= window <= MAX_WINDOW:
            raise ValueError(f"window must be in [1, {MAX_WINDOW}]")
        if max_transmissions < 1:
            raise ValueError("need at least one transmission")
        self.window = window
        self.rto = rto or RtoEstimator()
        self.max_transmissions = max_transmissions
        self._next_seq = 0
        self._base = 0
        self._pending: list[bytes] = []
        self._outstanding: dict[int, SegmentState] = {}
        self.retransmissions = 0
        self.gave_up: list[int] = []

    # --- offering data ---------------------------------------------------

    def offer(self, payload: bytes) -> None:
        """Queue one payload for (eventual) transmission."""
        self._pending.append(bytes(payload))

    @property
    def in_flight(self) -> int:
        """Segments sent but not yet acknowledged."""
        return sum(1 for s in self._outstanding.values() if not s.acked)

    @property
    def done(self) -> bool:
        """Whether every offered payload has been acked or abandoned."""
        return not self._pending and not self._outstanding

    # --- the transmission schedule ---------------------------------------

    def poll(self, now_s: float) -> list[TransportFrame]:
        """Frames to put on the wire at ``now_s``.

        Retransmits every outstanding segment whose deadline passed
        (doubling the RTO per Karn), abandons segments that exhausted
        ``max_transmissions``, then fills the window with fresh
        segments.
        """
        to_send: list[TransportFrame] = []
        for seq in sorted(self._outstanding,
                          key=lambda s: seq_distance(s, self._base)):
            state = self._outstanding.get(seq)
            if state is None:
                continue  # already slid out by an earlier abandonment
            if state.acked or now_s < state.deadline_s:
                continue
            if state.transmissions >= self.max_transmissions:
                # Abandoned: record it, treat as (vacuously) acked so
                # the window can move — the caller sees it in gave_up.
                self.gave_up.append(seq)
                state.acked = True
                self._slide()
                continue
            state.transmissions += 1
            state.retransmitted = True
            state.deadline_s = now_s + self.rto.on_timeout()
            self.retransmissions += 1
            to_send.append(state.frame)
        while self._pending and len(self._outstanding) < self.window:
            payload = self._pending.pop(0)
            frame = TransportFrame.data_frame(self._next_seq, payload)
            self._outstanding[self._next_seq] = SegmentState(
                frame=frame, first_sent_s=now_s,
                deadline_s=now_s + self.rto.rto_s)
            self._next_seq = (self._next_seq + 1) % MAX_SEQ
            to_send.append(frame)
        return to_send

    def _slide(self) -> None:
        """Advance the window base past every acked/abandoned segment."""
        while self._base in self._outstanding \
                and self._outstanding[self._base].acked:
            del self._outstanding[self._base]
            self._base = (self._base + 1) % MAX_SEQ

    # --- receiving acknowledgements ---------------------------------------

    def on_ack(self, ack: TransportFrame, now_s: float) -> None:
        """Process one cumulative + selective acknowledgement."""
        if ack.is_data:
            raise ValueError("on_ack expects an ack frame")

        def mark(seq: int) -> None:
            state = self._outstanding.get(seq)
            if state is None or state.acked:
                return
            state.acked = True
            if not state.retransmitted:
                # Karn: only first-transmission RTTs are unambiguous.
                self.rto.observe(now_s - state.first_sent_s)

        # Cumulative: everything at or before ack.sequence is in.
        for seq in list(self._outstanding):
            if seq_distance(ack.sequence, seq) < self.window:
                mark(seq)
        for seq in ack.sacked_sequences():
            mark(seq)
        self._slide()


class SelectiveRepeatReceiver:
    """The receiving half: reorder buffer + cumulative/SACK generation."""

    def __init__(self, window: int = 16) -> None:
        if not 1 <= window <= MAX_WINDOW:
            raise ValueError(f"window must be in [1, {MAX_WINDOW}]")
        self.window = window
        self._expected = 0
        self._buffer: dict[int, bytes] = {}
        self._delivered: list[bytes] = []
        self.duplicates = 0

    @property
    def delivered_count(self) -> int:
        """How many payloads have been released in order so far."""
        return len(self._delivered)

    def on_data(self, frame: TransportFrame) -> TransportFrame:
        """Accept one data segment; returns the ACK to send back."""
        if not frame.is_data:
            raise ValueError("on_data expects a data frame")
        offset = seq_distance(frame.sequence, self._expected)
        if offset < self.window:
            if frame.sequence in self._buffer:
                self.duplicates += 1
            else:
                self._buffer[frame.sequence] = frame.payload
                while self._expected in self._buffer:
                    self._delivered.append(self._buffer.pop(self._expected))
                    self._expected = (self._expected + 1) % MAX_SEQ
        else:
            # Behind the window: an old retransmission racing its ACK.
            self.duplicates += 1
        return self._ack()

    def _ack(self) -> TransportFrame:
        cumulative = (self._expected - 1) % MAX_SEQ
        bitmap = 0
        for seq in self._buffer:
            bit = seq_distance(seq, self._expected)
            if bit < MAX_WINDOW:
                bitmap |= 1 << bit
        return TransportFrame.ack_frame(cumulative, bitmap)

    def take_delivered(self) -> list[bytes]:
        """Drain the in-order payload stream delivered so far."""
        out, self._delivered = self._delivered, []
        return out


@dataclass(frozen=True)
class TransferStats:
    """Outcome of one :meth:`ReliableLink.transfer` run."""

    offered: int
    delivered: int
    in_order: bool
    retransmissions: int
    duplicates: int
    abandoned: int
    elapsed_s: float
    final_rto_s: float

    @property
    def delivery_ratio(self) -> float:
        """Delivered / offered (1.0 for an empty transfer)."""
        if self.offered == 0:
            return 1.0
        return self.delivered / self.offered


@dataclass
class ReliableLink:
    """Selective repeat over a seeded Bernoulli-loss channel.

    ``loss_probability`` applies independently to each direction (data
    segments and ACKs both cross the lossy medium); ``rtt_s`` is the
    fault-free round trip the RTO estimator should converge near.
    """

    loss_probability: float = 0.0
    rtt_s: float = 0.02
    window: int = 16
    max_transmissions: int = 16
    rng: np.random.Generator = field(default_factory=fresh_rng)
    telemetry: TelemetryRecorder = field(default_factory=NullRecorder,
                                         repr=False)
    """Sink for the ``transport.*`` metric family: per-transfer spans,
    retransmit/SACK/duplicate counters and the RTO-evolution gauge.
    The default :class:`NullRecorder` keeps the tick loop at seed cost."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if self.rtt_s <= 0:
            raise ValueError("RTT must be positive")

    def transfer(self, payloads: list[bytes],
                 time_step_s: float | None = None,
                 max_duration_s: float = 300.0) -> TransferStats:
        """Push every payload through the lossy link; returns the stats.

        The clock advances in ``time_step_s`` ticks (default: one tenth
        of the RTT); each tick the sender polls its schedule, frames
        cross the wire (or die with ``loss_probability``), and ACKs come
        back half an RTT later.
        """
        if time_step_s is None:
            time_step_s = self.rtt_s / 10.0
        if time_step_s <= 0 or max_duration_s <= 0:
            raise ValueError("durations must be positive")
        sender = SelectiveRepeatSender(
            window=self.window,
            rto=RtoEstimator(initial_rto_s=2.0 * self.rtt_s,
                             min_rto_s=time_step_s),
            max_transmissions=self.max_transmissions)
        receiver = SelectiveRepeatReceiver(window=self.window)
        for payload in payloads:
            sender.offer(payload)

        # (arrival_time_s, encoded_frame) for both directions.
        data_wire: list[tuple[float, bytes]] = []
        ack_wire: list[tuple[float, bytes]] = []
        one_way_s = self.rtt_s / 2.0
        now = 0.0
        delivered: list[bytes] = []
        tel = self.telemetry
        transfer_span = tel.begin("transport.transfer",
                                  segments=len(payloads))
        while not sender.done and now < max_duration_s:
            for frame in sender.poll(now):
                if self.rng.random() >= self.loss_probability:
                    data_wire.append((now + one_way_s, frame.encode()))
            for when, blob in [f for f in data_wire if f[0] <= now]:
                data_wire.remove((when, blob))
                ack = receiver.on_data(TransportFrame.decode(blob))
                if self.rng.random() >= self.loss_probability:
                    ack_wire.append((now + one_way_s, ack.encode()))
            for when, blob in [f for f in ack_wire if f[0] <= now]:
                ack_wire.remove((when, blob))
                ack_frame = TransportFrame.decode(blob)
                if tel.enabled and ack_frame.sack_bitmap:
                    tel.count("transport.sacked_segments",
                              len(ack_frame.sacked_sequences()))
                sender.on_ack(ack_frame, now)
            delivered.extend(receiver.take_delivered())
            now += time_step_s
            if tel.enabled:
                tel.clock.advance(time_step_s)
                tel.gauge("transport.rto_s", sender.rto.rto_s)
        delivered.extend(receiver.take_delivered())
        tel.end(transfer_span)
        if tel.enabled:
            tel.count("transport.segments_offered", len(payloads))
            tel.count("transport.segments_delivered", len(delivered))
            tel.count("transport.retransmissions",
                      sender.retransmissions)
            tel.count("transport.duplicates", receiver.duplicates)
            tel.count("transport.abandoned", len(sender.gave_up))
            tel.observe("transport.transfer_s", now, least=1e-3)
        in_order = delivered == payloads[:len(delivered)]
        return TransferStats(
            offered=len(payloads),
            delivered=len(delivered),
            in_order=in_order,
            retransmissions=sender.retransmissions,
            duplicates=receiver.duplicates,
            abandoned=len(sender.gave_up),
            elapsed_s=now,
            final_rto_s=sender.rto.rto_s,
        )
