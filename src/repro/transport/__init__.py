"""End-to-end reliable transport for mmX's control and data planes.

The paper's air interface is deliberately feedback-free; everything
*around* it still needs reliability: the WiFi/BLE side channel that
carries channel assignments, the AP-to-AP backhaul a failover cluster
uses, and the MAC's retransmission clock.  This package supplies the
classic machinery, sized for simulation:

* :mod:`~repro.transport.framing` — CRC-framed transport PDUs with
  16-bit sequence numbers and a selective-ACK bitmap.
* :mod:`~repro.transport.rto` — the Jacobson/Karn adaptive
  retransmission-timeout estimator.
* :mod:`~repro.transport.arq` — selective-repeat ARQ (sender,
  receiver, and a seeded lossy-link simulator).
* :mod:`~repro.transport.breaker` — a circuit breaker that stops a
  flapping side channel from being hammered by re-init storms.
* :mod:`~repro.transport.policy` — the adaptive retransmission policy
  :class:`repro.network.mac.UplinkSimulator` uses in place of its old
  fixed ``max_retries`` loop.
"""

from .arq import (
    ReliableLink,
    SegmentState,
    SelectiveRepeatReceiver,
    SelectiveRepeatSender,
    TransferStats,
)
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, CircuitOpenError
from .framing import MAX_SEQ, MAX_WINDOW, FrameError, TransportFrame, \
    seq_distance
from .policy import AdaptiveRetransmission
from .rto import RtoEstimator

__all__ = [
    "AdaptiveRetransmission",
    "CLOSED",
    "CircuitBreaker",
    "CircuitOpenError",
    "FrameError",
    "HALF_OPEN",
    "MAX_SEQ",
    "MAX_WINDOW",
    "OPEN",
    "ReliableLink",
    "RtoEstimator",
    "SegmentState",
    "SelectiveRepeatReceiver",
    "SelectiveRepeatSender",
    "TransferStats",
    "TransportFrame",
    "seq_distance",
]
