"""A circuit breaker for the WiFi/BLE side channel.

The init protocol already backs individual retries off exponentially,
but a *flapping* side channel — up for one frame, down for ten — still
gets hammered: every node re-entering initialization restarts its own
backoff from the base delay.  The breaker adds the missing shared
state: after ``failure_threshold`` consecutive control-frame failures
the circuit *opens* and every caller fails fast (no radio time wasted)
until ``reset_timeout_s`` of simulated time has passed; then one probe
is let through (*half-open*), and only a success re-closes the circuit.

Time is explicit (the caller passes ``now_s``) so the breaker composes
with the repo's deterministic, simulated-clock discipline.
"""

from __future__ import annotations

__all__ = ["CircuitBreaker", "CircuitOpenError",
           "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitOpenError(ConnectionError):
    """Raised when a call is rejected because the circuit is open."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe state."""

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout_s: float = 1.0) -> None:
        if failure_threshold < 1:
            raise ValueError("need at least one failure to trip")
        if reset_timeout_s <= 0:
            raise ValueError("reset timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.state = CLOSED
        self._consecutive_failures = 0
        self._opened_at_s: float | None = None
        # Telemetry an operator (or a chaos gate) actually asks for.
        self.trips = 0
        self.rejected_calls = 0
        self.successes = 0
        self.failures = 0

    def allow(self, now_s: float) -> bool:
        """Whether a call may proceed at ``now_s``.

        An open circuit transitions to half-open once the reset timeout
        has elapsed, letting exactly one probe through; a rejected call
        is counted.
        """
        if self.state == OPEN:
            opened_at = self._opened_at_s if self._opened_at_s is not None \
                else now_s
            if now_s - opened_at >= self.reset_timeout_s:
                self.state = HALF_OPEN
                return True
            self.rejected_calls += 1
            return False
        return True

    def seconds_until_retry(self, now_s: float) -> float:
        """How long until an open circuit will admit a probe (0 if now)."""
        if self.state != OPEN or self._opened_at_s is None:
            return 0.0
        return max(0.0, self._opened_at_s + self.reset_timeout_s - now_s)

    def record_success(self) -> None:
        """A call completed: close the circuit and clear the streak."""
        self.successes += 1
        self._consecutive_failures = 0
        self.state = CLOSED
        self._opened_at_s = None

    def record_failure(self, now_s: float) -> None:
        """A call failed: trip the circuit at the threshold.

        A failed half-open probe re-opens immediately — the channel has
        not recovered, so the quiet period starts over.
        """
        self.failures += 1
        self._consecutive_failures += 1
        if (self.state == HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold):
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self._opened_at_s = now_s

    def stats(self) -> dict[str, int | str]:
        """Counters for reporting: trips, rejections, successes, failures."""
        return {
            "state": self.state,
            "trips": self.trips,
            "rejected_calls": self.rejected_calls,
            "successes": self.successes,
            "failures": self.failures,
        }
