"""Adaptive retransmission timeout: the Jacobson/Karn estimator.

The seed repo's :class:`repro.network.mac.UplinkSimulator` retried a
failed frame immediately, up to a fixed ``max_retries`` — fine for a
lossless ACK path, hopeless for a control plane that must survive a
flapping side channel or a crashed AP.  This module implements the
classic TCP timer discipline (Jacobson 1988, RFC 6298):

* smoothed RTT ``SRTT`` and variance ``RTTVAR`` track the measured
  round-trip samples with EWMA gains of 1/8 and 1/4;
* the timeout is ``RTO = SRTT + K * RTTVAR`` (K = 4), clamped to a
  configured window;
* a timeout doubles the RTO (exponential backoff) until the next valid
  sample re-anchors it;
* Karn's rule — never sample the RTT of a retransmitted frame — is the
  caller's job: :class:`repro.transport.arq.SelectiveRepeatSender` only
  calls :meth:`observe` for first-transmission frames.
"""

from __future__ import annotations

__all__ = ["RtoEstimator"]


class RtoEstimator:
    """Jacobson-style smoothed-RTT retransmission-timeout estimator."""

    def __init__(self, initial_rto_s: float = 0.2,
                 min_rto_s: float = 0.01,
                 max_rto_s: float = 8.0,
                 alpha: float = 1.0 / 8.0,
                 beta: float = 1.0 / 4.0,
                 k: float = 4.0) -> None:
        if initial_rto_s <= 0:
            raise ValueError("initial RTO must be positive")
        if not 0 < min_rto_s <= max_rto_s:
            raise ValueError("invalid RTO clamp window")
        if not 0.0 < alpha <= 1.0 or not 0.0 < beta <= 1.0:
            raise ValueError("EWMA gains must be in (0, 1]")
        if k <= 0:
            raise ValueError("variance multiplier must be positive")
        self.min_rto_s = min_rto_s
        self.max_rto_s = max_rto_s
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self._srtt_s: float | None = None
        self._rttvar_s: float | None = None
        self._rto_s = self._clamp(initial_rto_s)
        self.samples = 0
        self.timeouts = 0

    def _clamp(self, rto_s: float) -> float:
        return min(max(rto_s, self.min_rto_s), self.max_rto_s)

    @property
    def srtt_s(self) -> float | None:
        """Smoothed RTT estimate (None before the first sample)."""
        return self._srtt_s

    @property
    def rttvar_s(self) -> float | None:
        """Smoothed RTT variance (None before the first sample)."""
        return self._rttvar_s

    @property
    def rto_s(self) -> float:
        """Current retransmission timeout."""
        return self._rto_s

    def observe(self, rtt_s: float) -> float:
        """Fold one *first-transmission* RTT sample in; returns the RTO.

        Callers must apply Karn's rule themselves: RTT samples of
        retransmitted frames are ambiguous (which transmission did the
        ACK answer?) and must never reach this method.
        """
        if rtt_s < 0:
            raise ValueError("RTT cannot be negative")
        rtt_s = float(rtt_s)
        if self._srtt_s is None or self._rttvar_s is None:
            # RFC 6298 initial step: SRTT = R, RTTVAR = R/2.
            self._srtt_s = rtt_s
            self._rttvar_s = rtt_s / 2.0
        else:
            self._rttvar_s = ((1.0 - self.beta) * self._rttvar_s
                              + self.beta * abs(self._srtt_s - rtt_s))
            self._srtt_s = ((1.0 - self.alpha) * self._srtt_s
                            + self.alpha * rtt_s)
        self._rto_s = self._clamp(self._srtt_s + self.k * self._rttvar_s)
        self.samples += 1
        return self._rto_s

    def on_timeout(self) -> float:
        """Back the timeout off exponentially; returns the new RTO."""
        self.timeouts += 1
        self._rto_s = self._clamp(self._rto_s * 2.0)
        return self._rto_s

    def reset(self) -> None:
        """Forget the RTT history (e.g. after a failover to a new AP).

        The current RTO is kept as the conservative starting guess; the
        next sample re-anchors SRTT/RTTVAR from scratch.
        """
        self._srtt_s = None
        self._rttvar_s = None
