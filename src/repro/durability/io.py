"""The durable-I/O seam: fsync-correct primitives, injectable backend.

Every persistent artifact in the repo — campaign journals, AP
checkpoints, telemetry exports — reaches the disk through this module.
Two primitives cover all of them:

* :func:`atomic_replace` — the full write-temp → fsync file → rename →
  fsync parent-directory dance.  After it returns, the file at ``path``
  is the new content *and will stay so across a crash*; if the process
  dies anywhere inside, the old content (or absence) survives intact.
  Plain ``open(path, "w")`` gives neither property: a crash mid-write
  leaves a half-file, and a crash after close can still lose the rename
  of a file whose directory entry was never fsynced.
* :class:`DurableFile` / :func:`append_line` — append-with-fsync for
  journals: each appended line is written and fsynced before the call
  returns, so the journal is never more than one torn line behind the
  computation it protects.

All syscalls go through an :class:`FsBackend`, defaulting to the real
:class:`RealFs`.  Tests inject :class:`repro.durability.faults.FaultyFs`
instead, which replays a seeded :class:`~repro.durability.faults.
FsFaultSchedule` — torn writes, short writes, bit flips, ``ENOSPC``,
``EIO``, crash-at-syscall-N — so storage chaos is as deterministic and
picklable as the worker-fault harness in :mod:`repro.engine.faults`.
"""

from __future__ import annotations

import errno
import os
from pathlib import Path
from typing import Protocol

__all__ = ["DurableFile", "FsBackend", "REAL_FS", "RealFs",
           "append_line", "atomic_replace", "fsync_directory"]


class FsBackend(Protocol):
    """The syscall surface durable persistence needs, and nothing more.

    Read paths stay on ordinary Python I/O — corruption is injected at
    write time, and reads of corrupt bytes are what the verifiers are
    *for* — so the seam only covers mutations.
    """

    def open(self, path: str, flags: int, mode: int = 0o666) -> int:
        """``os.open``: returns a raw file descriptor."""
        ...

    def write(self, fd: int, data: bytes) -> int:
        """``os.write``: returns the byte count actually written."""
        ...

    def fsync(self, fd: int) -> None:
        """``os.fsync`` of an open descriptor."""
        ...

    def close(self, fd: int) -> None:
        """``os.close``; never a durability point, never faulted."""
        ...

    def replace(self, src: str, dst: str) -> None:
        """``os.replace``: the atomic rename."""
        ...

    def remove(self, path: str) -> None:
        """``os.unlink``: cleanup of an abandoned temp file."""
        ...

    def fsync_dir(self, path: str) -> None:
        """fsync a *directory*, persisting creates/renames inside it."""
        ...


class RealFs:
    """The production backend: thin wrappers over ``os``."""

    def open(self, path: str, flags: int, mode: int = 0o666) -> int:
        """``os.open`` verbatim."""
        return os.open(path, flags, mode)

    def write(self, fd: int, data: bytes) -> int:
        """``os.write`` verbatim (short writes are the caller's job)."""
        return os.write(fd, data)

    def fsync(self, fd: int) -> None:
        """``os.fsync`` verbatim."""
        os.fsync(fd)

    def close(self, fd: int) -> None:
        """``os.close`` verbatim."""
        os.close(fd)

    def replace(self, src: str, dst: str) -> None:
        """``os.replace`` verbatim."""
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        """``os.unlink`` verbatim."""
        os.unlink(path)

    def fsync_dir(self, path: str) -> None:
        """Open the directory read-only and fsync it.

        POSIX persists a new directory entry (create or rename) only
        once the *directory* is synced; losing this step is exactly the
        "crash right after open loses the whole file" failure the
        journal regression test pins.
        """
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


REAL_FS = RealFs()
"""The shared production backend (stateless, so one instance serves)."""


def _write_all(fs: FsBackend, fd: int, data: bytes) -> None:
    """Write every byte, looping over short writes."""
    view = memoryview(data)
    while view:
        written = fs.write(fd, bytes(view))
        if written <= 0:
            raise OSError(errno.EIO, "write returned no progress")
        view = view[written:]


def _tmp_path(path: Path) -> Path:
    """The deterministic sibling temp name ``atomic_replace`` uses.

    Deterministic on purpose: artifacts are single-writer (a campaign
    owns its journal, an AP its checkpoint), and a fixed name means the
    debris of a crashed attempt is silently overwritten by the next.
    """
    return path.parent / f".{path.name}.tmp"


def atomic_replace(path: str | Path, data: str | bytes, *,
                   fs: FsBackend | None = None) -> Path:
    """Atomically publish ``data`` as the content of ``path``.

    write temp → fsync temp → rename over ``path`` → fsync the parent
    directory.  Either the complete new content is durable at ``path``
    after a crash, or the previous state is — never a torn mixture.
    Returns the path written.
    """
    fs = fs if fs is not None else REAL_FS
    path = Path(path)
    payload = data.encode("utf-8") if isinstance(data, str) else data
    tmp = _tmp_path(path)
    try:
        fd = fs.open(str(tmp),
                     os.O_WRONLY | os.O_CREAT | os.O_TRUNC)
        try:
            _write_all(fs, fd, payload)
            fs.fsync(fd)
        finally:
            fs.close(fd)
        fs.replace(str(tmp), str(path))
    except Exception:
        # The publish never happened; leave no temp debris behind.  A
        # simulated crash makes this removal inert, exactly like a real
        # dead process.
        try:
            fs.remove(str(tmp))
        except OSError:
            pass
        raise
    fs.fsync_dir(str(path.parent))
    return path


def fsync_directory(path: str | Path, *,
                    fs: FsBackend | None = None) -> None:
    """Fsync one directory through the seam (rarely needed directly)."""
    fs = fs if fs is not None else REAL_FS
    fs.fsync_dir(str(path))


class DurableFile:
    """An append-only handle whose every append is fsynced.

    The journal primitive: open an existing file for append (or create
    it empty with ``create=True``, which also fsyncs the parent
    directory so the new entry survives a crash), then call
    :meth:`append` per record.  Each append is written in full and
    fsynced before returning — a crash can tear at most the line being
    appended, never a previously acknowledged one.
    """

    def __init__(self, path: str | Path, *,
                 fs: FsBackend | None = None,
                 create: bool = False) -> None:
        self.path = Path(path)
        self.fs: FsBackend = fs if fs is not None else REAL_FS
        flags = os.O_WRONLY | os.O_APPEND
        if create:
            flags |= os.O_CREAT
        self._fd: int | None = self.fs.open(str(self.path), flags)
        if create:
            self.fs.fsync_dir(str(self.path.parent))

    def append(self, text: str | bytes) -> None:
        """Write ``text`` in full and fsync before returning."""
        if self._fd is None:
            raise ValueError(f"{self.path} is closed")
        payload = (text.encode("utf-8") if isinstance(text, str)
                   else text)
        _write_all(self.fs, self._fd, payload)
        self.fs.fsync(self._fd)

    def close(self) -> None:
        """Release the descriptor (idempotent)."""
        if self._fd is not None:
            self.fs.close(self._fd)
            self._fd = None

    def __enter__(self) -> DurableFile:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def append_line(path: str | Path, text: str, *,
                fs: FsBackend | None = None) -> None:
    """One-shot durable append: open, write-all, fsync, close."""
    with DurableFile(path, fs=fs) as handle:
        handle.append(text)
