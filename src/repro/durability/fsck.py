"""``repro fsck``: scan, verify, and repair durable artifacts.

One verifier/repairer for every on-disk format the repo persists:

* **campaign journals** (:mod:`repro.engine.store` JSONL) — the header
  must be a structurally valid ``campaign`` record with a readable
  schema; every later line must parse, carry a matching SHA-256
  integrity hash, and be a known record kind.  A corrupt *final* line
  is a torn tail (the ordinary crash-mid-append residue); a corrupt
  *interior* line is quarantined — reported, never merged.  Repair
  salvages the valid prefix-plus-survivors into a clean journal
  (written atomically) and moves the damaged raw lines to a
  ``<path>.quarantine`` sidecar for forensics.
* **AP checkpoints** (:mod:`repro.cluster.checkpoint` JSON) — verified
  via the same canonical-JSON digest; a corrupt checkpoint cannot be
  rebuilt (there is no redundancy), so repair moves it aside to
  ``<path>.corrupt`` so recovery boots empty instead of restoring
  poison.
* **telemetry exports** (:mod:`repro.telemetry.export` JSONL) — these
  carry no per-line hashes (they are regenerable), so fsck checks that
  every line is strict JSON and repair drops the ones that are not.

The scanner (:func:`scan_journal_text`) is the *single* implementation
of journal-corruption classification: :class:`repro.engine.store.
ResultStore` resumes through it, so what the store silently survives
and what fsck reports can never disagree.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .integrity import IntegrityError, verify_sealed
from .io import REAL_FS, DurableFile, FsBackend, atomic_replace

__all__ = [
    "JOURNAL_RECORD_KINDS",
    "JOURNAL_SCHEMAS",
    "FsckReport",
    "JournalScan",
    "LineIssue",
    "fsck_path",
    "fsck_paths",
    "scan_journal_text",
]

JOURNAL_SCHEMAS = frozenset({1, 2})
"""Campaign-journal schema versions this build can read.  The single
source of truth — :mod:`repro.engine.store` imports it, so the store
and fsck can never disagree about readability."""

JOURNAL_RECORD_KINDS = frozenset({"shard", "attempt", "quarantine"})
"""Record discriminators a journal body may carry (v1: shard only;
the set is the v2 superset, and hash-verified v1 files never contain
the others)."""


@dataclass(frozen=True)
class LineIssue:
    """One damaged journal/export line: where, why, and the raw bytes."""

    line: int
    reason: str
    raw: str


@dataclass(frozen=True)
class JournalScan:
    """The classification of every line of one campaign journal."""

    header: dict[str, Any] | None
    """The parsed header payload (``None`` when the header is bad)."""

    header_raw: str | None
    """The raw header line, for lossless repair rewrites."""

    header_error: str | None
    """Why the journal is unusable as a whole, or ``None``."""

    records: tuple[tuple[int, dict[str, Any], str], ...]
    """Verified body records: ``(lineno, payload-sans-integrity, raw)``."""

    corrupt: tuple[LineIssue, ...]
    """Interior lines that failed verification — quarantine, not merge."""

    torn_tail: LineIssue | None
    """A final line that failed verification: crash-mid-append residue."""

    @property
    def clean(self) -> bool:
        """Whether the journal needs no repair at all."""
        return (self.header_error is None and not self.corrupt
                and self.torn_tail is None)


def _verify_journal_line(line: str) -> dict[str, Any]:
    """One body line -> verified payload; raises ``ValueError`` if bad."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError("journal line is not an object")
    payload = verify_sealed(data)
    kind = payload.get("record")
    if kind not in JOURNAL_RECORD_KINDS:
        raise ValueError(f"unexpected record {kind!r}")
    return payload


def scan_journal_text(text: str) -> JournalScan:
    """Classify every line of a journal's content.

    Never raises on corruption — corruption is the *output*.  The
    header is validated structurally (JSON, ``campaign`` record,
    readable schema); campaign-identity checks (fingerprint vs a plan)
    are the store's business, not fsck's.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        return JournalScan(header=None, header_raw=None,
                           header_error="journal is empty",
                           records=(), corrupt=(), torn_tail=None)
    header_raw = lines[0]
    header: dict[str, Any] | None = None
    header_error: str | None = None
    try:
        parsed = json.loads(header_raw)
    except json.JSONDecodeError as exc:
        header_error = f"campaign header is not JSON: {exc}"
    else:
        if not isinstance(parsed, dict) \
                or parsed.get("record") != "campaign":
            header_error = ("not a campaign journal (missing header "
                            "line)")
        elif parsed.get("version") not in JOURNAL_SCHEMAS:
            header_error = (
                f"unsupported journal schema "
                f"{parsed.get('version')!r} (this build reads "
                f"{sorted(JOURNAL_SCHEMAS)})")
        else:
            header = parsed

    records: list[tuple[int, dict[str, Any], str]] = []
    corrupt: list[LineIssue] = []
    torn_tail: LineIssue | None = None
    for position, line in enumerate(lines[1:], start=2):
        try:
            payload = _verify_journal_line(line)
        except (ValueError, IntegrityError) as exc:
            issue = LineIssue(line=position, reason=str(exc), raw=line)
            if position == len(lines):
                torn_tail = issue
            else:
                corrupt.append(issue)
        else:
            records.append((position, payload, line))
    return JournalScan(header=header, header_raw=header_raw,
                       header_error=header_error,
                       records=tuple(records),
                       corrupt=tuple(corrupt), torn_tail=torn_tail)


# --- reports ---------------------------------------------------------------


@dataclass
class FsckReport:
    """What fsck found (and did) at one path."""

    path: str
    kind: str
    """``journal`` | ``checkpoint`` | ``telemetry`` | ``unknown``."""

    intact: int = 0
    """Verified records (journal), lines (telemetry), or 1 (checkpoint)."""

    issues: list[str] = field(default_factory=list)
    """Human-readable findings, one per defect."""

    repaired: bool = False
    quarantine_path: str | None = None
    fatal: str | None = None
    """Set when the artifact is unusable and unrepairable."""

    @property
    def exit_code(self) -> int:
        """0 clean · 1 corruption found (repaired or not) · 2 unusable."""
        if self.fatal is not None:
            return 2
        return 1 if self.issues else 0

    def summary(self) -> str:
        """The one-line diagnostic the CLI prints."""
        name = Path(self.path).name
        if self.fatal is not None:
            return f"{name}: {self.kind}: FATAL — {self.fatal}"
        if not self.issues:
            return (f"{name}: {self.kind} clean "
                    f"({self.intact} record"
                    f"{'' if self.intact == 1 else 's'})")
        action = "repaired" if self.repaired else "found (run --repair)"
        detail = "; ".join(self.issues)
        tail = (f"; quarantined lines -> {self.quarantine_path}"
                if self.quarantine_path else "")
        return (f"{name}: {self.kind}: {len(self.issues)} issue"
                f"{'' if len(self.issues) == 1 else 's'} {action} — "
                f"{detail}{tail}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation for ``repro fsck --json``."""
        return {"path": self.path, "kind": self.kind,
                "intact": self.intact, "issues": list(self.issues),
                "repaired": self.repaired,
                "quarantine_path": self.quarantine_path,
                "fatal": self.fatal, "exit_code": self.exit_code}


def _detect_kind(path: Path, text: str) -> str:
    """Sniff which artifact family a file belongs to."""
    first = text.split("\n", 1)[0]
    try:
        parsed = json.loads(first)
    except json.JSONDecodeError:
        parsed = None
    if isinstance(parsed, dict):
        if parsed.get("record") == "campaign":
            return "journal"
        if parsed.get("record") == "meta" \
                and parsed.get("format") == "repro-telemetry":
            return "telemetry"
    try:
        whole = json.loads(text)
    except json.JSONDecodeError:
        whole = None
    if isinstance(whole, dict) and "schema_version" in whole:
        return "checkpoint"
    # Content is too damaged to self-describe; fall back to suffix.
    if path.suffix == ".ckpt":
        return "checkpoint"
    return "unknown"


def _quarantine_lines(path: Path, issues: list[LineIssue],
                      fs: FsBackend | None) -> str:
    """Append damaged raw lines to the ``.quarantine`` sidecar."""
    sidecar = Path(f"{path}.quarantine")
    with DurableFile(sidecar, fs=fs, create=True) as handle:
        for issue in issues:
            handle.append(json.dumps(
                {"line": issue.line, "reason": issue.reason,
                 "raw": issue.raw},
                sort_keys=True, separators=(",", ":")) + "\n")
    return str(sidecar)


def _fsck_journal(path: Path, text: str, repair: bool,
                  fs: FsBackend | None) -> FsckReport:
    scan = scan_journal_text(text)
    report = FsckReport(path=str(path), kind="journal",
                        intact=len(scan.records))
    if scan.header_error is not None:
        report.fatal = (f"{scan.header_error}; a journal with no "
                        "trustworthy header cannot be repaired — "
                        "remove it and re-run the campaign")
        return report
    for issue in scan.corrupt:
        report.issues.append(
            f"line {issue.line}: corrupt record ({issue.reason})")
    if scan.torn_tail is not None:
        report.issues.append(
            f"line {scan.torn_tail.line}: torn tail "
            f"({scan.torn_tail.reason})")
    if report.issues and repair:
        damaged = list(scan.corrupt)
        if scan.torn_tail is not None:
            damaged.append(scan.torn_tail)
        report.quarantine_path = _quarantine_lines(path, damaged, fs)
        body = [scan.header_raw or ""]
        body += [raw for _, _, raw in scan.records]
        atomic_replace(path, "\n".join(body) + "\n", fs=fs)
        report.repaired = True
    return report


def _fsck_checkpoint(path: Path, text: str, repair: bool,
                     fs: FsBackend | None) -> FsckReport:
    report = FsckReport(path=str(path), kind="checkpoint")
    reason: str | None = None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        reason = f"not JSON ({exc})"
    else:
        try:
            verify_sealed(data)
        except IntegrityError as exc:
            reason = str(exc)
    if reason is None:
        report.intact = 1
        return report
    report.issues.append(f"corrupt checkpoint: {reason}")
    if repair:
        backend = fs if fs is not None else REAL_FS
        quarantine = f"{path}.corrupt"
        backend.replace(str(path), quarantine)
        report.quarantine_path = quarantine
        report.repaired = True
    return report


def _fsck_telemetry(path: Path, text: str, repair: bool,
                    fs: FsBackend | None) -> FsckReport:
    report = FsckReport(path=str(path), kind="telemetry")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    good: list[str] = []
    bad: list[LineIssue] = []
    for position, line in enumerate(lines, start=1):
        try:
            json.loads(line)
        except json.JSONDecodeError as exc:
            bad.append(LineIssue(line=position, reason=str(exc),
                                 raw=line))
        else:
            good.append(line)
    report.intact = len(good)
    for issue in bad:
        report.issues.append(
            f"line {issue.line}: not JSON ({issue.reason})")
    if bad and repair:
        report.quarantine_path = _quarantine_lines(path, bad, fs)
        atomic_replace(path, "\n".join(good) + "\n", fs=fs)
        report.repaired = True
    return report


def fsck_path(path: str | Path, *, repair: bool = False,
              fs: FsBackend | None = None) -> FsckReport:
    """Verify (and with ``repair=True``, fix) one artifact on disk."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return FsckReport(path=str(path), kind="unknown",
                          fatal=f"cannot read: {exc}")
    except UnicodeDecodeError as exc:
        return FsckReport(path=str(path), kind="unknown",
                          fatal=f"not UTF-8: {exc}")
    kind = _detect_kind(path, text)
    if kind == "journal":
        return _fsck_journal(path, text, repair, fs)
    if kind == "checkpoint":
        return _fsck_checkpoint(path, text, repair, fs)
    if kind == "telemetry":
        return _fsck_telemetry(path, text, repair, fs)
    return FsckReport(path=str(path), kind="unknown",
                      fatal="not a recognised repro artifact "
                            "(journal, checkpoint, or telemetry "
                            "export)")


def fsck_paths(paths: list[str | Path] | list[str] | list[Path], *,
               repair: bool = False, fs: FsBackend | None = None
               ) -> tuple[list[FsckReport], int]:
    """fsck several paths; returns the reports and the worst exit code."""
    reports = [fsck_path(p, repair=repair, fs=fs) for p in paths]
    exit_code = max((r.exit_code for r in reports), default=0)
    return reports, exit_code
