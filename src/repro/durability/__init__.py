"""``repro.durability`` — one durable-state subsystem for the repo.

Million-trial campaigns (the ROADMAP's north star) run long enough
that disk faults, crashes mid-write, and ``ENOSPC`` are expected
events, not edge cases.  Before this package, every persistent
artifact had its own ad-hoc I/O: the campaign journal fsynced lines
but never its parent directory, AP checkpoints were "atomic enough for
a sim", telemetry exports were plain ``open()``-and-write.  Now they
all go through one seam:

* :mod:`~repro.durability.io` — :func:`atomic_replace` (write-temp →
  fsync → rename → fsync parent dir) and :class:`DurableFile`
  (append-with-fsync), over an injectable :class:`FsBackend`;
* :mod:`~repro.durability.integrity` — the canonical-JSON SHA-256
  sealing every hashed record in the repo shares;
* :mod:`~repro.durability.faults` — the seeded, picklable
  :class:`FsFaultSchedule` / :class:`FaultyFs` harness (torn write,
  short write, bit flip, ``ENOSPC``, ``EIO``, crash-at-syscall-N),
  mirroring the worker-fault harness of :mod:`repro.engine.faults`;
* :mod:`~repro.durability.fsck` — scan/verify/repair for journals,
  checkpoints, and telemetry exports, wired up as
  ``python -m repro fsck``.

The headline guarantee (gated by
``benchmarks/test_engine_crashpoints.py``): for *every* injected
crash/fault point, a resumed campaign yields either a byte-identical
full result or an explicit
:class:`~repro.engine.campaign.PartialCampaignResult` — never silent
corruption.
"""

from .faults import (
    FS_FAULT_KINDS,
    FaultyFs,
    FsFault,
    FsFaultKind,
    FsFaultSchedule,
    InjectedFsCrash,
)
from .fsck import (
    JOURNAL_RECORD_KINDS,
    JOURNAL_SCHEMAS,
    FsckReport,
    JournalScan,
    LineIssue,
    fsck_path,
    fsck_paths,
    scan_journal_text,
)
from .integrity import (
    IntegrityError,
    canonical_json,
    digest,
    seal,
    verify_sealed,
)
from .io import (
    REAL_FS,
    DurableFile,
    FsBackend,
    RealFs,
    append_line,
    atomic_replace,
    fsync_directory,
)

__all__ = [
    "DurableFile",
    "FS_FAULT_KINDS",
    "FaultyFs",
    "FsBackend",
    "FsFault",
    "FsFaultKind",
    "FsFaultSchedule",
    "FsckReport",
    "InjectedFsCrash",
    "IntegrityError",
    "JOURNAL_RECORD_KINDS",
    "JOURNAL_SCHEMAS",
    "JournalScan",
    "LineIssue",
    "REAL_FS",
    "RealFs",
    "append_line",
    "atomic_replace",
    "canonical_json",
    "digest",
    "fsck_path",
    "fsck_paths",
    "fsync_directory",
    "scan_journal_text",
    "seal",
    "verify_sealed",
]
