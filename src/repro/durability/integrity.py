"""Canonical-JSON integrity hashing, shared by every durable artifact.

Three on-disk formats in this repo carry per-record SHA-256 hashes over
a canonical JSON serialisation: campaign journals
(:mod:`repro.engine.store`), AP checkpoints
(:mod:`repro.cluster.checkpoint`), and the quarantine sidecars
``repro fsck`` writes.  Before this module each of them hand-rolled the
same ``json.dumps(sort_keys=True) -> sha256`` idiom; now there is one
authority, so the canonical form (and therefore every digest) cannot
drift between writers and verifiers.

The canonical form is one-line JSON with sorted keys and fixed
separators — no whitespace, no encoding freedom — which makes the
digest a pure function of the payload's *content*.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["IntegrityError", "canonical_json", "digest", "seal",
           "verify_sealed"]


class IntegrityError(ValueError):
    """A sealed record whose integrity hash does not match its content."""


def canonical_json(payload: dict[str, Any]) -> str:
    """Canonical one-line JSON: sorted keys, fixed separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest(payload: dict[str, Any]) -> str:
    """SHA-256 hex digest over the canonical serialisation."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def seal(payload: dict[str, Any]) -> dict[str, Any]:
    """A copy of ``payload`` carrying its own integrity hash.

    The hash covers everything *except* the ``integrity`` key itself,
    so :func:`verify_sealed` can pop and recompute it.
    """
    sealed = dict(payload)
    sealed.pop("integrity", None)
    sealed["integrity"] = digest(sealed)
    return sealed


def verify_sealed(data: dict[str, Any]) -> dict[str, Any]:
    """Check a sealed record; return the payload without its hash.

    Raises :class:`IntegrityError` when the hash is absent or does not
    match — the one signal every loader in the repo treats as "this
    record never happened" (quarantine, not merge).
    """
    if not isinstance(data, dict):
        raise IntegrityError("sealed record must be a JSON object")
    payload = dict(data)
    stored = payload.pop("integrity", None)
    if stored is None:
        raise IntegrityError("record carries no integrity hash")
    if digest(payload) != stored:
        raise IntegrityError("record integrity hash mismatch")
    return payload
