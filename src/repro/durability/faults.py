"""Deterministic filesystem-fault harness for durable persistence.

PR 6 chaos-tested the campaign *executor* with a seeded, picklable
:class:`~repro.engine.faults.WorkerFaultSchedule`; this module does the
same to the campaign's *storage*.  An :class:`FsFaultSchedule` is a
frozen map from syscall ordinal (1-based, counted across every mutating
operation a :class:`FaultyFs` performs) to one :class:`FsFault`:

``torn_write``   a prefix of the buffer lands, then the process dies —
                 the classic crash-mid-append
``short_write``  a prefix lands but the call *reports full success* —
                 a lying disk; execution continues and the corruption
                 is interior, not a tail
``bit_flip``     the buffer is written in full with one bit flipped —
                 silent media corruption the per-record hashes must
                 catch
``enospc``       the operation fails with ``OSError(ENOSPC)`` before
                 touching the file; the process survives to handle it
``eio``          same, with ``EIO``
``crash``        the process dies *before* the operation takes effect —
                 crash-at-syscall-N, the sweep primitive

A simulated death raises :class:`InjectedFsCrash` and freezes the
backend: every later mutating call through the same :class:`FaultyFs`
is inert (a dead process makes no syscalls), so ``finally`` blocks in
the code under test cannot tidy up state a real crash would have left
behind.  Resume the "rebooted process" with a fresh backend.

Fault decisions are keyed on the operation ordinal, never on wall time
or shared RNG state, so a faulty run replays identically — and a
:class:`FaultyFs` with an empty schedule doubles as the op counter that
enumerates every crash point for the sweep gate.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass, field
from pathlib import Path
from typing import Literal

import numpy as np

from .io import REAL_FS, FsBackend

__all__ = [
    "FS_FAULT_KINDS",
    "FaultyFs",
    "FsFault",
    "FsFaultKind",
    "FsFaultSchedule",
    "InjectedFsCrash",
]

FsFaultKind = Literal["torn_write", "short_write", "bit_flip",
                      "enospc", "eio", "crash"]
"""The storage-level failure modes the harness can inject."""

FS_FAULT_KINDS: tuple[FsFaultKind, ...] = (
    "torn_write", "short_write", "bit_flip", "enospc", "eio", "crash")

_ERRNO: dict[str, int] = {"enospc": errno.ENOSPC, "eio": errno.EIO}


class InjectedFsCrash(RuntimeError):
    """The crash the harness injects — the process dying at a syscall."""


@dataclass(frozen=True)
class FsFault:
    """One injected storage misbehaviour."""

    kind: FsFaultKind
    fraction: float = 0.5
    """For ``torn_write``/``short_write``: the fraction of the buffer
    that actually reaches the file (rounded down, clamped so at least
    the empty prefix and at most all-but-one byte land)."""

    bit: int = 0
    """For ``bit_flip``: which bit of the buffer flips (mod its size)."""

    def __post_init__(self) -> None:
        if self.kind not in FS_FAULT_KINDS:
            raise ValueError(f"unknown fs fault kind {self.kind!r}; "
                             f"choose from {FS_FAULT_KINDS}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.bit < 0:
            raise ValueError("bit cannot be negative")


@dataclass(frozen=True)
class FsFaultSchedule:
    """A frozen ``syscall ordinal -> FsFault`` schedule.

    Ordinals are 1-based and count every *mutating* backend call —
    ``open``, ``write``, ``fsync``, ``replace``, ``remove``,
    ``fsync_dir`` (``close`` is free: it is never a durability point).
    Plain data, so it pickles; immutable, so every replay consults the
    same script.
    """

    faults: dict[int, FsFault] = field(default_factory=dict)

    def fault_for(self, op_index: int) -> FsFault | None:
        """The fault scripted for this operation, if any."""
        return self.faults.get(op_index)

    @property
    def num_faults(self) -> int:
        """How many operations this schedule sabotages."""
        return len(self.faults)

    @property
    def last_op(self) -> int:
        """The highest sabotaged ordinal (0 for a clean schedule)."""
        return max(self.faults, default=0)

    @classmethod
    def crash_at(cls, op_index: int) -> FsFaultSchedule:
        """Die at exactly syscall ``op_index`` — the sweep primitive."""
        if op_index < 1:
            raise ValueError("syscall ordinals are 1-based")
        return cls(faults={op_index: FsFault(kind="crash")})

    @classmethod
    def single(cls, kind: FsFaultKind, op_index: int, *,
               fraction: float = 0.5, bit: int = 0) -> FsFaultSchedule:
        """One fault of ``kind`` at syscall ``op_index``."""
        if op_index < 1:
            raise ValueError("syscall ordinals are 1-based")
        return cls(faults={op_index: FsFault(kind=kind,
                                             fraction=fraction,
                                             bit=bit)})

    @classmethod
    def build(cls, seed: int, num_ops: int, *,
              torn_write: float = 0.0, short_write: float = 0.0,
              bit_flip: float = 0.0, enospc: float = 0.0,
              eio: float = 0.0, crash: float = 0.0,
              fraction: float = 0.5) -> FsFaultSchedule:
        """A seeded random schedule: per-operation fault probabilities.

        For each of the first ``num_ops`` operations, one draw from a
        generator seeded with ``seed`` picks at most one fault kind
        (the rates must sum to at most 1).  The same seed always yields
        the same schedule.  ``bit_flip`` targets a seeded random bit.
        """
        rates: dict[FsFaultKind, float] = {
            "torn_write": torn_write, "short_write": short_write,
            "bit_flip": bit_flip, "enospc": enospc, "eio": eio,
            "crash": crash}
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1]")
        if sum(rates.values()) > 1.0:
            raise ValueError("fault rates sum to more than 1; at most "
                             "one fault fires per operation")
        if num_ops < 0:
            raise ValueError("num_ops cannot be negative")
        rng = np.random.default_rng(seed)
        faults: dict[int, FsFault] = {}
        for op_index in range(1, num_ops + 1):
            draw = float(rng.uniform())
            bit = int(rng.integers(0, 1 << 14))
            edge = 0.0
            for kind, rate in rates.items():
                edge += rate
                if draw < edge:
                    faults[op_index] = FsFault(kind=kind,
                                               fraction=fraction,
                                               bit=bit)
                    break
        return cls(faults=faults)


class FaultyFs:
    """A fault-injecting :class:`~repro.durability.io.FsBackend`.

    Wraps a real backend, counts every mutating operation, and strikes
    when the count hits a scheduled ordinal.  With an empty schedule it
    is a pure op counter/tracer: run once fault-free, read
    :attr:`op_count`, and you have enumerated every crash point the
    sweep gate must cover.

    :attr:`trace` records one ``"op:target"`` entry per counted call
    (e.g. ``"fsync_dir:/tmp/x"`` → ``"fsync_dir:x"`` uses base names),
    which is what the dir-fsync regression tests assert against.
    """

    def __init__(self, schedule: FsFaultSchedule | None = None,
                 inner: FsBackend | None = None) -> None:
        self.schedule = schedule if schedule is not None \
            else FsFaultSchedule()
        self.inner: FsBackend = inner if inner is not None else REAL_FS
        self.op_count = 0
        self.crashed = False
        self.trace: list[str] = []
        self._names: dict[int, str] = {}

    # --- bookkeeping ------------------------------------------------------

    def _arm(self, op: str, target: str) -> FsFault | None:
        """Count one operation; return the fault scripted for it."""
        if self.crashed:
            return None
        self.op_count += 1
        self.trace.append(f"{op}:{target}")
        return self.schedule.fault_for(self.op_count)

    def _strike(self, fault: FsFault, op: str) -> None:
        """Apply a non-write fault (write handles its own kinds)."""
        if fault.kind in ("enospc", "eio"):
            raise OSError(_ERRNO[fault.kind],
                          f"injected {fault.kind} at {op} "
                          f"(op {self.op_count})")
        # torn/short/bit_flip make no sense off the write path; they
        # degrade to a crash so every scheduled ordinal still faults
        # deterministically.
        self._die(op)

    def _die(self, op: str) -> None:
        """Simulate process death: freeze the backend, raise."""
        self.crashed = True
        raise InjectedFsCrash(
            f"injected crash at {op} (op {self.op_count})")

    # --- the backend surface ----------------------------------------------

    def open(self, path: str, flags: int, mode: int = 0o666) -> int:
        """Open; post-crash opens re-raise (dead processes don't open)."""
        if self.crashed:
            raise InjectedFsCrash("backend is crashed; resume with a "
                                  "fresh FaultyFs")
        fault = self._arm("open", Path(path).name)
        if fault is not None:
            self._strike(fault, "open")
        fd = self.inner.open(path, flags, mode)
        self._names[fd] = Path(path).name
        return fd

    def write(self, fd: int, data: bytes) -> int:
        """Write, with the full torn/short/flip repertoire available."""
        if self.crashed:
            return len(data)
        name = self._names.get(fd, "?")
        fault = self._arm("write", name)
        if fault is None:
            return self.inner.write(fd, data)
        if fault.kind in ("enospc", "eio"):
            raise OSError(_ERRNO[fault.kind],
                          f"injected {fault.kind} at write "
                          f"(op {self.op_count})")
        if fault.kind == "crash":
            self._die("write")
        if fault.kind == "bit_flip":
            flipped = bytearray(data)
            if flipped:
                bit = fault.bit % (len(flipped) * 8)
                flipped[bit // 8] ^= 1 << (bit % 8)
            self.inner.write(fd, bytes(flipped))
            return len(data)
        # torn_write / short_write: a prefix lands.
        keep = min(len(data) - 1, int(len(data) * fault.fraction))
        keep = max(keep, 0)
        if keep:
            self.inner.write(fd, data[:keep])
        if fault.kind == "torn_write":
            self._die("write")
        return len(data)  # short_write: the lie

    def fsync(self, fd: int) -> None:
        """Fsync (inert after a crash)."""
        if self.crashed:
            return
        fault = self._arm("fsync", self._names.get(fd, "?"))
        if fault is not None:
            self._strike(fault, "fsync")
        self.inner.fsync(fd)

    def close(self, fd: int) -> None:
        """Close is always real (fd hygiene) and never counted."""
        self._names.pop(fd, None)
        self.inner.close(fd)

    def replace(self, src: str, dst: str) -> None:
        """Atomic rename (inert after a crash)."""
        if self.crashed:
            return
        fault = self._arm(
            "replace", f"{Path(src).name}->{Path(dst).name}")
        if fault is not None:
            self._strike(fault, "replace")
        self.inner.replace(src, dst)

    def remove(self, path: str) -> None:
        """Unlink (inert after a crash)."""
        if self.crashed:
            return
        fault = self._arm("remove", Path(path).name)
        if fault is not None:
            self._strike(fault, "remove")
        self.inner.remove(path)

    def fsync_dir(self, path: str) -> None:
        """Directory fsync (inert after a crash)."""
        if self.crashed:
            return
        fault = self._arm("fsync_dir", Path(path).name)
        if fault is not None:
            self._strike(fault, "fsync_dir")
        self.inner.fsync_dir(path)
