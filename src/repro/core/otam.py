"""Over-The-Air Modulation: bits become beam selections (section 6.1).

A conventional radio modulates first and then points its best beam at the
AP.  OTAM inverts this: the node always transmits a *pure carrier* and
uses the data bit to pick which of its two fixed orthogonal beams radiates
it.  The two beams excite different subsets of the sparse mmWave paths, so
the AP receives a tone whose amplitude is keyed by the *channel* — ASK
created over the air, with zero beam searching and zero feedback.

The modulator therefore does not produce "a modulated signal" at the node;
it produces the *received* waveform given a channel
(:class:`repro.channel.ChannelResponse`), because that is where the
modulation physically happens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channel.multipath import ChannelResponse
from ..hardware.switch import ADRF5020Switch
from ..phy.bits import as_bit_array
from ..phy.waveform import Waveform, two_level_waveform
from ..units import db_to_amplitude
from .ask_fsk import AskFskConfig

__all__ = ["OtamModulator", "transmitted_beam_bits"]


def transmitted_beam_bits(data_bits) -> np.ndarray:
    """Map data bits to beam selections: bit 1 -> Beam 1, bit 0 -> Beam 0.

    Trivial by design — the paper's Fig. 4 example ("to transmit 101, send
    the carrier to Beam 1, switch to Beam 0, switch back") *is* the
    modulation.  Kept as an explicit function so the node, the energy
    model and the tests all share the mapping.
    """
    return as_bit_array(data_bits)


@dataclass
class OtamModulator:
    """Generates the over-the-air waveform the AP receives.

    Parameters
    ----------
    config:
        Shared :class:`AskFskConfig` numerology.
    switch:
        The SPDT model; supplies insertion loss and the finite isolation
        that leaks a little carrier out of the *unselected* beam.
    eirp_dbm:
        Node EIRP at the selected beam's peak.  Amplitudes in the output
        waveform are dBm-referenced (|x|^2 of 1.0 == 0 dBm), matching
        :func:`repro.channel.noise.complex_awgn`.
    """

    config: AskFskConfig
    switch: ADRF5020Switch = None
    eirp_dbm: float = 10.0

    def __post_init__(self):
        if self.switch is None:
            self.switch = ADRF5020Switch()
        self.switch.validate_bitrate(self.config.bit_rate_bps)

    def per_bit_amplitudes(self, channel: ChannelResponse
                           ) -> tuple[complex, complex]:
        """Complex received amplitudes for a '1' bit and a '0' bit.

        The selected beam's channel gain passes through the switch's
        insertion loss; the other beam still radiates the isolation
        leakage.  Insertion loss is *not* re-applied on top of the EIRP
        (EIRP already includes it); only the leak-to-through ratio
        matters, so the through path is normalised to 1.
        """
        through, leak = 1.0, float(db_to_amplitude(
            -(self.switch.isolation_db - self.switch.insertion_loss_db)))
        scale = float(db_to_amplitude(self.eirp_dbm))
        amp_one = scale * (channel.h1 * through + channel.h0 * leak)
        amp_zero = scale * (channel.h0 * through + channel.h1 * leak)
        return complex(amp_one), complex(amp_zero)

    def received_waveform(self, data_bits,
                          channel: ChannelResponse) -> Waveform:
        """Noise-free waveform at the AP's baseband for a bit sequence.

        Each bit keys both the amplitude (beam selection through the
        channel — the ASK dimension) and a small tone offset (the FSK
        dimension).  Phase runs continuously, as a free-running VCO's
        would.
        """
        bits = transmitted_beam_bits(data_bits)
        if bits.size == 0:
            raise ValueError("cannot modulate an empty bit sequence")
        amp_one, amp_zero = self.per_bit_amplitudes(channel)
        return two_level_waveform(
            bits,
            bit_rate_bps=self.config.bit_rate_bps,
            sample_rate_hz=self.config.sample_rate_hz,
            amp_one=amp_one,
            amp_zero=amp_zero,
            freq_one_hz=self.config.freq_one_hz,
            freq_zero_hz=self.config.freq_zero_hz,
        )

    def ask_only_waveform(self, data_bits,
                          channel: ChannelResponse) -> Waveform:
        """The paper's *without OTAM* baseline: OOK through Beam 1 only.

        The node modulates at the radio (carrier on/off) and always uses
        the broadside beam — precisely scenario (1) of section 9.2.  When
        Beam 1's path is weak the whole signal is weak; there is no
        second beam to fall back on.
        """
        bits = transmitted_beam_bits(data_bits)
        if bits.size == 0:
            raise ValueError("cannot modulate an empty bit sequence")
        scale = float(db_to_amplitude(self.eirp_dbm))
        return two_level_waveform(
            bits,
            bit_rate_bps=self.config.bit_rate_bps,
            sample_rate_hz=self.config.sample_rate_hz,
            amp_one=scale * channel.h1,
            amp_zero=0.0,
            freq_one_hz=self.config.freq_one_hz,
            freq_zero_hz=self.config.freq_one_hz,
        )

    def switching_energy_per_bit_j(self, node_power_w: float = 1.1) -> float:
        """Energy per transmitted bit at this configuration's bitrate."""
        return node_power_w / self.config.bit_rate_bps
