"""Link adaptation and goodput: turning SNR into delivered bits.

The paper stops at physical BER ("it can be reduced even further by
using an error correction coding scheme", §9.3) and a raw 100 Mbps cap.
A deployment needs the next step: given a placement's SNR, what payload
actually gets through, and which coding mode should the node use?  This
module answers both:

* :func:`frame_success_probability` — BER -> whole-frame survival,
  accounting for FEC's per-codeword correction.
* :func:`goodput_bps` — surviving payload bits per second after
  preamble/header/CRC/FEC overheads.
* :class:`RateAdapter` — picks the coding mode maximising expected
  goodput at a given SNR; its decisions produce the classic stepped
  rate-vs-range curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..phy import ber as ber_theory
from .packet import PacketCodec

__all__ = [
    "CodingMode",
    "CODING_MODES",
    "frame_success_probability",
    "goodput_bps",
    "RateAdapter",
]


@dataclass(frozen=True)
class CodingMode:
    """One point on the node's (tiny) rate-adaptation ladder."""

    name: str
    use_fec: bool
    correctable_per_codeword: int
    codeword_bits: int

    def codec(self) -> PacketCodec:
        """A packet codec configured for this mode."""
        return PacketCodec(use_fec=self.use_fec)


CODING_MODES: tuple[CodingMode, ...] = (
    CodingMode(name="uncoded", use_fec=False,
               correctable_per_codeword=0, codeword_bits=1),
    CodingMode(name="hamming74", use_fec=True,
               correctable_per_codeword=1, codeword_bits=7),
)
"""The modes the mmX controller can switch between per packet."""


def frame_success_probability(ber: float, payload_bytes: int,
                              mode: CodingMode) -> float:
    """Probability an entire frame decodes (CRC passes).

    Uncoded: every body bit must survive.  Hamming(7,4): each 7-bit
    codeword survives with at most one error; codewords are assumed
    independent (interleaving makes that accurate even under short
    bursts).  The preamble is excluded — its correlator tolerates
    several errors by design.
    """
    if not 0.0 <= ber <= 1.0:
        raise ValueError("BER must be a probability")
    codec = mode.codec()
    body_bits = (codec.frame_length_bits(payload_bytes)
                 - codec.preamble.size)
    if mode.codeword_bits <= 1:
        return float((1.0 - ber) ** body_bits)
    num_codewords = body_bits // mode.codeword_bits
    n = mode.codeword_bits
    # P(codeword ok) = sum_{k<=t} C(n,k) p^k (1-p)^(n-k)
    p_ok = 0.0
    for k in range(mode.correctable_per_codeword + 1):
        p_ok += (float(math.comb(n, k)) * ber**k
                 * (1.0 - ber) ** (n - k))
    # The partial binomial sum can exceed 1.0 by a few ULPs at tiny BER.
    return float(min(p_ok, 1.0) ** num_codewords)


def goodput_bps(snr_db: float, bit_rate_bps: float, payload_bytes: int,
                mode: CodingMode) -> float:
    """Expected delivered payload bits per second at a channel SNR.

    Channel BER comes from the paper's ASK table; the frame either
    fully survives (CRC) or is lost; overheads (preamble, header, CRC,
    FEC expansion) are paid from the channel rate.
    """
    if bit_rate_bps <= 0:
        raise ValueError("bit rate must be positive")
    if payload_bytes <= 0:
        raise ValueError("payload must be positive")
    ber = float(ber_theory.ber_ask_table(snr_db))
    p_frame = frame_success_probability(ber, payload_bytes, mode)
    frame_bits = mode.codec().frame_length_bits(payload_bytes)
    frames_per_second = bit_rate_bps / frame_bits
    return frames_per_second * p_frame * payload_bytes * 8.0


@dataclass
class RateAdapter:
    """Chooses the coding mode with the highest expected goodput."""

    bit_rate_bps: float = 1e6
    payload_bytes: int = 256
    modes: tuple[CodingMode, ...] = CODING_MODES

    def __post_init__(self):
        if not self.modes:
            raise ValueError("need at least one coding mode")

    def evaluate(self, snr_db: float) -> dict[str, float]:
        """Goodput per mode at one SNR."""
        return {mode.name: goodput_bps(snr_db, self.bit_rate_bps,
                                       self.payload_bytes, mode)
                for mode in self.modes}

    def select(self, snr_db: float) -> CodingMode:
        """The goodput-maximising mode at one SNR."""
        table = self.evaluate(snr_db)
        best_name = max(table, key=table.get)
        for mode in self.modes:
            if mode.name == best_name:
                return mode
        raise AssertionError("unreachable")

    def crossover_snr_db(self, low_db: float = -5.0,
                         high_db: float = 25.0,
                         resolution_db: float = 0.1) -> float | None:
        """SNR where the preferred mode switches (None if it never does)."""
        grid = np.arange(low_db, high_db, resolution_db)
        names = [self.select(float(s)).name for s in grid]
        for previous, current, snr in zip(names, names[1:], grid[1:]):
            if previous != current:
                return float(snr)
        return None
