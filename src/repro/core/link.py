"""End-to-end OTAM link: node hardware -> antennas -> room -> AP -> decoder.

Two complementary views of the same link:

* **Analytic** (:meth:`OtamLink.snr_breakdown`) — closed-form received
  levels, decision SNRs and predicted BER from the traced channel.  This
  mirrors the paper's own method: measure SNR, then substitute into
  standard ASK BER tables (section 9.3).
* **Sample-level** (:meth:`OtamLink.simulate_transmission`) — generate the
  actual over-the-air waveform, add receiver noise, run the joint
  demodulator, count bit errors.  This is the "USRP capture" substitute.

Calibration: ``implementation_loss_db`` (default 10 dB) absorbs
everything between ideal Friis propagation and the authors' testbed
(USRP quantisation, CFO, envelope-detector losses, antenna mismatches).
It is chosen once so the LoS SNR-vs-distance curve lands on the paper's
Fig. 12 levels, then held fixed across *all* experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..antenna.element import DipoleElement
from ..antenna.orthogonal import OrthogonalBeamPair, measured_mmx_beams
from ..channel.multipath import ChannelResponse, two_beam_gains
from ..channel.noise import complex_awgn, noise_power_dbm
from ..constants import (
    AP_ANTENNA_GAIN_DBI,
    CARRIER_FREQUENCY_HZ,
    EVAL_NODE_CHANNEL_BANDWIDTH_HZ,
    NODE_EIRP_DBM,
)
from ..hardware.chains import AccessPointHardware
from ..phy import ber as ber_theory
from ..phy.bits import bit_error_rate
from ..phy.waveform import Waveform
from ..sim.placement import Placement
from .ask_fsk import AskFskConfig
from .demodulator import DemodResult, JointDemodulator
from .otam import OtamModulator

__all__ = ["SnrBreakdown", "LinkReport", "OtamLink"]


@dataclass(frozen=True)
class SnrBreakdown:
    """Analytic link quality figures for one placement."""

    beam1_level_dbm: float
    """Received power when the node transmits on Beam 1."""

    beam0_level_dbm: float
    """Received power when the node transmits on Beam 0."""

    noise_dbm: float
    """Receiver noise floor in the measurement bandwidth."""

    ask_snr_db: float
    """SNR of the OTAM ASK decision (level *difference* vs noise)."""

    fsk_snr_db: float
    """SNR of the joint tone-discrimination decision.

    The two bits ride on *orthogonal* tones (section 6.3 / the
    AskFskConfig default), so the binary decision distance is
    ``sqrt(|h1|^2 + |h0|^2)`` — the mean of the two level powers vs
    noise.  When one beam's signal vanishes this degenerates to OOK on
    the surviving tone (-3 dB vs the ASK branch); when the levels are
    equal it equals either level's SNR, which is why FSK rescues the
    ambiguous-amplitude placements."""

    no_otam_snr_db: float
    """SNR of the conventional baseline: OOK through Beam 1 only."""

    inverted: bool
    """Whether Beam 0 arrives stronger than Beam 1 (blocked LoS)."""

    @property
    def otam_snr_db(self) -> float:
        """Effective joint ASK-FSK SNR: the better branch wins (§6.3)."""
        return max(self.ask_snr_db, self.fsk_snr_db)

    @property
    def ask_contrast_db(self) -> float:
        """|level gap| between the beams — small means 'need FSK'."""
        return abs(self.beam1_level_dbm - self.beam0_level_dbm)

    def ber_with_otam(self) -> float:
        """Predicted BER of the joint decoder (best branch's curve).

        Uses the paper's §9.3 methodology: substitute SNR into the
        standard ASK BER table (:func:`repro.phy.ber.ber_ask_table`)
        for the amplitude branch, the non-coherent FSK curve for the
        frequency branch.
        """
        ask = float(ber_theory.ber_ask_table(self.ask_snr_db))
        fsk = float(ber_theory.ber_fsk_noncoherent(self.fsk_snr_db))
        return min(ask, fsk)

    def ber_without_otam(self) -> float:
        """Predicted BER of the Beam-1-only OOK baseline (same table)."""
        return float(ber_theory.ber_ask_table(self.no_otam_snr_db))


@dataclass(frozen=True)
class LinkReport:
    """Sample-level transmission outcome."""

    demod: DemodResult
    bit_errors: int
    ber: float
    num_bits: int


@dataclass
class OtamLink:
    """A node-AP link through a simulated room."""

    placement: Placement
    room: object
    config: AskFskConfig = field(default_factory=AskFskConfig)
    beams: OrthogonalBeamPair = None
    ap_element: DipoleElement = field(default_factory=DipoleElement)
    ap_hardware: AccessPointHardware = field(default_factory=AccessPointHardware)
    frequency_hz: float = CARRIER_FREQUENCY_HZ
    eirp_dbm: float = NODE_EIRP_DBM
    ap_gain_dbi: float = AP_ANTENNA_GAIN_DBI
    implementation_loss_db: float = 10.0
    max_bounces: int = 2

    def __post_init__(self):
        if self.beams is None:
            self.beams = measured_mmx_beams()
        self.modulator = OtamModulator(
            self.config,
            eirp_dbm=(self.eirp_dbm - self.implementation_loss_db))
        self.demodulator = JointDemodulator(self.config)

    # --- channel ------------------------------------------------------------

    def channel_response(self) -> ChannelResponse:
        """Trace the room and evaluate both beams for this placement."""
        return two_beam_gains(
            self.placement.node_position,
            self.placement.ap_position,
            self.room,
            beams=self.beams,
            ap_element=self.ap_element,
            node_orientation_rad=self.placement.node_orientation_rad,
            ap_orientation_rad=self.placement.ap_orientation_rad,
            frequency_hz=self.frequency_hz,
            max_bounces=self.max_bounces,
        )

    # --- analytic view --------------------------------------------------------

    def _level_dbm(self, gain: float) -> float:
        """Received power [dBm] for a channel field gain magnitude."""
        if gain <= 0.0:
            return float("-inf")
        return (self.eirp_dbm + self.ap_gain_dbi
                - self.implementation_loss_db
                + 20.0 * math.log10(gain))

    def snr_breakdown(self, channel: ChannelResponse | None = None,
                      bandwidth_hz: float = EVAL_NODE_CHANNEL_BANDWIDTH_HZ,
                      ) -> SnrBreakdown:
        """Closed-form link quality for this placement.

        ``bandwidth_hz`` defaults to the 25 MHz per-node channel of the
        multi-node experiment (section 9.5) so SNR numbers sit on the
        paper's Fig. 10/12 scales.
        """
        ch = channel or self.channel_response()
        noise = noise_power_dbm(bandwidth_hz,
                                self.ap_hardware.cascade_noise_figure_db)
        level1 = self._level_dbm(abs(ch.h1))
        level0 = self._level_dbm(abs(ch.h0))
        ask_snr = self._level_dbm(ch.difference_gain()) - noise
        joint_gain = math.sqrt((abs(ch.h1) ** 2 + abs(ch.h0) ** 2) / 2.0)
        fsk_snr = self._level_dbm(joint_gain) - noise
        no_otam = level1 - noise
        return SnrBreakdown(
            beam1_level_dbm=level1,
            beam0_level_dbm=level0,
            noise_dbm=noise,
            ask_snr_db=ask_snr,
            fsk_snr_db=fsk_snr,
            no_otam_snr_db=no_otam,
            inverted=ch.inverted,
        )

    # --- sample-level view ------------------------------------------------------

    def received_with_noise(self, bits, channel: ChannelResponse | None = None,
                            rng: np.random.Generator | None = None,
                            use_otam: bool = True) -> Waveform:
        """Noisy AP baseband capture for a transmitted bit sequence."""
        ch = channel or self.channel_response()
        if use_otam:
            clean = self.modulator.received_waveform(bits, ch)
        else:
            clean = self.modulator.ask_only_waveform(bits, ch)
        noise_dbm = noise_power_dbm(self.config.sample_rate_hz,
                                    self.ap_hardware.cascade_noise_figure_db)
        noise = complex_awgn(len(clean), noise_dbm, rng)
        return Waveform(clean.samples + noise, clean.sample_rate_hz)

    def simulate_transmission(self, bits,
                              channel: ChannelResponse | None = None,
                              rng: np.random.Generator | None = None,
                              use_otam: bool = True) -> LinkReport:
        """Transmit, receive with noise, jointly demodulate, count errors."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        wave = self.received_with_noise(bits, channel, rng, use_otam)
        demod = self.demodulator.demodulate(wave)
        n = min(bits.size, demod.bits.size)
        errors = int(np.count_nonzero(bits[:n] != demod.bits[:n]))
        errors += abs(bits.size - demod.bits.size)
        ber = errors / bits.size if bits.size else 0.0
        return LinkReport(demod=demod, bit_errors=errors, ber=ber,
                          num_bits=int(bits.size))
