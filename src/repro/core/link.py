"""End-to-end OTAM link: node hardware -> antennas -> room -> AP -> decoder.

Two complementary views of the same link:

* **Analytic** (:meth:`OtamLink.snr_breakdown`) — closed-form received
  levels, decision SNRs and predicted BER from the traced channel.  This
  mirrors the paper's own method: measure SNR, then substitute into
  standard ASK BER tables (section 9.3).
* **Sample-level** (:meth:`OtamLink.simulate_transmission`) — generate the
  actual over-the-air waveform, add receiver noise, run the joint
  demodulator, count bit errors.  This is the "USRP capture" substitute.

Calibration: ``implementation_loss_db`` (default 10 dB) absorbs
everything between ideal Friis propagation and the authors' testbed
(USRP quantisation, CFO, envelope-detector losses, antenna mismatches).
It is chosen once so the LoS SNR-vs-distance curve lands on the paper's
Fig. 12 levels, then held fixed across *all* experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..antenna.element import DipoleElement
from ..antenna.orthogonal import OrthogonalBeamPair, measured_mmx_beams
from ..channel.multipath import ChannelResponse, two_beam_gains
from ..channel.noise import complex_awgn, noise_power_dbm
from ..channel.pathloss import friis_received_power_dbm
from ..constants import (
    AP_ANTENNA_GAIN_DBI,
    CARRIER_FREQUENCY_HZ,
    EVAL_NODE_CHANNEL_BANDWIDTH_HZ,
    NODE_EIRP_DBM,
)
from ..hardware.chains import AccessPointHardware
from ..phy import ber as ber_theory
from ..phy.waveform import Waveform
from ..sim.placement import Placement
from ..units import (
    amplitude_to_db,
    db_to_amplitude,
    dbm_to_milliwatts,
    milliwatts_to_dbm,
)
from .ask_fsk import AskFskConfig
from .demodulator import DemodResult, JointDemodulator
from .otam import OtamModulator

__all__ = ["BistaticBreakdown", "SnrBreakdown", "LinkReport", "OtamLink",
           "bistatic_breakdown", "perturb_breakdown"]


@dataclass(frozen=True)
class SnrBreakdown:
    """Analytic link quality figures for one placement."""

    beam1_level_dbm: float
    """Received power when the node transmits on Beam 1."""

    beam0_level_dbm: float
    """Received power when the node transmits on Beam 0."""

    noise_dbm: float
    """Receiver noise floor in the measurement bandwidth."""

    ask_snr_db: float
    """SNR of the OTAM ASK decision (level *difference* vs noise)."""

    fsk_snr_db: float
    """SNR of the joint tone-discrimination decision.

    The two bits ride on *orthogonal* tones (section 6.3 / the
    AskFskConfig default), so the binary decision distance is
    ``sqrt(|h1|^2 + |h0|^2)`` — the mean of the two level powers vs
    noise.  When one beam's signal vanishes this degenerates to OOK on
    the surviving tone (-3 dB vs the ASK branch); when the levels are
    equal it equals either level's SNR, which is why FSK rescues the
    ambiguous-amplitude placements."""

    no_otam_snr_db: float
    """SNR of the conventional baseline: OOK through Beam 1 only."""

    inverted: bool
    """Whether Beam 0 arrives stronger than Beam 1 (blocked LoS)."""

    @property
    def otam_snr_db(self) -> float:
        """Effective joint ASK-FSK SNR: the better branch wins (§6.3)."""
        return max(self.ask_snr_db, self.fsk_snr_db)

    @property
    def ask_contrast_db(self) -> float:
        """|level gap| between the beams — small means 'need FSK'."""
        return abs(self.beam1_level_dbm - self.beam0_level_dbm)

    def ber_with_otam(self) -> float:
        """Predicted BER of the joint decoder (best branch's curve).

        Uses the paper's §9.3 methodology: substitute SNR into the
        standard ASK BER table (:func:`repro.phy.ber.ber_ask_table`)
        for the amplitude branch, the non-coherent FSK curve for the
        frequency branch.
        """
        ask = float(ber_theory.ber_ask_table(self.ask_snr_db))
        fsk = float(ber_theory.ber_fsk_noncoherent(self.fsk_snr_db))
        return min(ask, fsk)

    def ber_without_otam(self) -> float:
        """Predicted BER of the Beam-1-only OOK baseline (same table)."""
        return float(ber_theory.ber_ask_table(self.no_otam_snr_db))


def _amplitude(level_dbm: float) -> float:
    """Field amplitude in sqrt(mW) units for a dBm level (0 for -inf)."""
    if level_dbm == float("-inf"):
        return 0.0
    return float(db_to_amplitude(level_dbm))


def _level(amplitude: float) -> float:
    """Inverse of :func:`_amplitude`."""
    if amplitude <= 0.0:
        return float("-inf")
    return float(amplitude_to_db(amplitude))


def _fsk_drift_penalty_db(offset_hz: float, config: AskFskConfig) -> float:
    """Goertzel integration loss when the VCO drifts off its tones.

    The AP projects each bit period onto fixed bins at the two
    configured tone frequencies.  A carrier offset of ``f`` detunes
    both tones equally; coherent integration over one bit period then
    captures ``|sinc(f * T_bit)|`` of the tone amplitude.  At an offset
    of one tone separation the transmitted tones land on each other's
    bins and the branch is unusable — returned as ``inf``.
    """
    offset = abs(offset_hz)
    if offset >= config.tone_separation_hz:
        return float("inf")
    x = offset / config.bit_rate_bps
    attenuation = abs(np.sinc(x))
    if attenuation <= 1e-9:
        return float("inf")
    return -float(amplitude_to_db(attenuation))


def perturb_breakdown(breakdown: SnrBreakdown,
                      disturbance,
                      config: AskFskConfig) -> SnrBreakdown:
    """Apply a :class:`repro.faults.LinkDisturbance` to a clean breakdown.

    This is the analytic fault model the chaos experiments run on: it
    recomputes every decision SNR from the *perturbed* per-beam received
    levels, so the joint ASK-FSK structure responds to each fault class
    the way the hardware would —

    * blockage subtracts per-beam excess loss (the LoS beam pays more
      than the NLoS beam, so the ASK contrast can shrink or invert);
    * a stuck SPDT radiates every symbol through the welded port,
      collapsing the ASK contrast to zero while FSK survives;
    * VCO drift detunes the Goertzel bins, degrading only the FSK
      branch (:func:`_fsk_drift_penalty_db`);
    * in-band interference raises the effective noise floor, so every
      reported SNR is really an SINR and ``noise_dbm`` is what the AP
      *measures* (the resilience layer keys interferer detection off
      that jump);
    * a node power dropout silences everything.

    The ASK level distance uses the amplitude difference of the two
    perturbed levels (phases are unknowable once faults perturb the
    traced channel); the fault-free path through
    :meth:`OtamLink.snr_breakdown` is untouched.
    """
    if disturbance.node_down:
        ninf = float("-inf")
        return SnrBreakdown(
            beam1_level_dbm=ninf, beam0_level_dbm=ninf,
            noise_dbm=breakdown.noise_dbm, ask_snr_db=ninf,
            fsk_snr_db=ninf, no_otam_snr_db=ninf, inverted=False)
    level1 = breakdown.beam1_level_dbm - disturbance.beam1_extra_loss_db
    level0 = breakdown.beam0_level_dbm - disturbance.beam0_extra_loss_db
    if disturbance.stuck_beam == 1:
        level0 = level1
    elif disturbance.stuck_beam == 0:
        level1 = level0
    noise_mw = float(dbm_to_milliwatts(breakdown.noise_dbm))
    if disturbance.has_interference:
        noise_mw += float(dbm_to_milliwatts(disturbance.interference_dbm))
    noise_dbm = float(milliwatts_to_dbm(noise_mw))
    a1, a0 = _amplitude(level1), _amplitude(level0)
    ask_snr = _level(abs(a1 - a0)) - noise_dbm
    fsk_level = _level(math.sqrt((a1 * a1 + a0 * a0) / 2.0))
    penalty = _fsk_drift_penalty_db(disturbance.vco_offset_hz, config)
    fsk_snr = float("-inf") if math.isinf(penalty) \
        else fsk_level - penalty - noise_dbm
    return SnrBreakdown(
        beam1_level_dbm=level1,
        beam0_level_dbm=level0,
        noise_dbm=noise_dbm,
        ask_snr_db=ask_snr,
        fsk_snr_db=fsk_snr,
        no_otam_snr_db=level1 - noise_dbm,
        inverted=a0 > a1,
    )


@dataclass(frozen=True)
class BistaticBreakdown:
    """Analytic link quality of a bistatic backscatter link.

    The passive-tag counterpart of :class:`SnrBreakdown`: the carrier
    makes two trips (AP → tag, tag → AP) and the tag keys data by
    switching its antenna reflection coefficient between
    ``gamma_on``/``gamma_off`` — reflection-coefficient ASK (Sun et
    al. backscatter survey).  Field names mirror the active breakdown
    so downstream consumers (BER tables, renderers) treat both alike.
    """

    carrier_at_tag_dbm: float
    """Illumination carrier power incident on the tag antenna."""

    on_level_dbm: float
    """Received power at the AP while the tag reflects with Γ_on."""

    off_level_dbm: float
    """Received power at the AP while the tag reflects with Γ_off."""

    noise_dbm: float
    """AP receiver noise floor in the measurement bandwidth."""

    ask_snr_db: float
    """SNR of the reflection-ASK decision (level difference vs
    noise) — the only modulation dimension a passive tag has."""

    @property
    def ask_contrast_db(self) -> float:
        """|level gap| between the two reflection states."""
        return abs(self.on_level_dbm - self.off_level_dbm)

    def ber(self) -> float:
        """Predicted BER via the same §9.3 ASK table the active link
        uses (:func:`repro.phy.ber.ber_ask_table`)."""
        return float(ber_theory.ber_ask_table(self.ask_snr_db))


def bistatic_breakdown(*, downlink_m: float, uplink_m: float | None = None,
                       ap_eirp_dbm: float = 20.0,
                       ap_rx_gain_dbi: float = AP_ANTENNA_GAIN_DBI,
                       tag_gain_dbi: float = 5.0,
                       gamma_on: float = 0.8, gamma_off: float = 0.1,
                       conversion_loss_db: float = 6.0,
                       excess_loss_db: float = 0.0,
                       frequency_hz: float = CARRIER_FREQUENCY_HZ,
                       bandwidth_hz: float = 1e6,
                       noise_figure_db: float | None = None
                       ) -> BistaticBreakdown:
    """The bistatic AP → tag → AP link budget.

    Three legs, each plain Friis plus the tag's reflection physics:

    1. carrier at the tag = AP EIRP − FSPL(downlink) + tag gain;
    2. reflected EIRP for state Γ = carrier + tag gain −
       conversion loss + ``20 log10 |Γ|`` (the tag re-radiates through
       the same aperture; the modulator's insertion cost and scattering
       inefficiency sit in ``conversion_loss_db``);
    3. level at the AP = reflected EIRP − FSPL(uplink) + AP rx gain.

    The ASK decision distance is the *amplitude difference* of the two
    reflection states — identical maths to the OTAM beam-contrast
    decision in :func:`perturb_breakdown`, which is why the existing
    envelope/Goertzel demodulator decodes backscatter unchanged.
    ``uplink_m`` defaults to the downlink distance (monostatic-style
    co-located illuminator and receiver).  ``excess_loss_db`` lets
    fault disturbances (blockage) tax both trips.
    """
    if downlink_m <= 0:
        raise ValueError("downlink distance must be positive")
    up_m = downlink_m if uplink_m is None else uplink_m
    if up_m <= 0:
        raise ValueError("uplink distance must be positive")
    if not 0.0 <= gamma_off < gamma_on <= 1.0:
        raise ValueError("need 0 <= gamma_off < gamma_on <= 1")
    if conversion_loss_db < 0 or excess_loss_db < 0:
        raise ValueError("losses cannot be negative")
    nf = noise_figure_db if noise_figure_db is not None \
        else AccessPointHardware().cascade_noise_figure_db
    carrier_at_tag = float(friis_received_power_dbm(
        eirp_dbm=ap_eirp_dbm, rx_gain_dbi=tag_gain_dbi,
        distance_m=downlink_m, frequency_hz=frequency_hz)) \
        - excess_loss_db

    def _reflected_level(gamma: float) -> float:
        if gamma == 0.0:
            return float("-inf")
        # The reflection coefficient acts once on the field, so the
        # power term is 20 log10|Γ| — exactly amplitude_to_db(gamma).
        reflected_eirp = (carrier_at_tag + tag_gain_dbi
                          - conversion_loss_db
                          + float(amplitude_to_db(gamma)))
        return float(friis_received_power_dbm(
            eirp_dbm=reflected_eirp, rx_gain_dbi=ap_rx_gain_dbi,
            distance_m=up_m, frequency_hz=frequency_hz)) - excess_loss_db

    on_level = _reflected_level(gamma_on)
    off_level = _reflected_level(gamma_off)
    noise = noise_power_dbm(bandwidth_hz, nf)
    a_on, a_off = _amplitude(on_level), _amplitude(off_level)
    ask_snr = _level(abs(a_on - a_off)) - noise
    return BistaticBreakdown(carrier_at_tag_dbm=carrier_at_tag,
                             on_level_dbm=on_level,
                             off_level_dbm=off_level,
                             noise_dbm=noise,
                             ask_snr_db=ask_snr)


@dataclass(frozen=True)
class LinkReport:
    """Sample-level transmission outcome."""

    demod: DemodResult
    bit_errors: int
    ber: float
    num_bits: int


@dataclass
class OtamLink:
    """A node-AP link through a simulated room."""

    placement: Placement
    room: object
    config: AskFskConfig = field(default_factory=AskFskConfig)
    beams: OrthogonalBeamPair = None
    ap_element: DipoleElement = field(default_factory=DipoleElement)
    ap_hardware: AccessPointHardware = field(default_factory=AccessPointHardware)
    frequency_hz: float = CARRIER_FREQUENCY_HZ
    eirp_dbm: float = NODE_EIRP_DBM
    ap_gain_dbi: float = AP_ANTENNA_GAIN_DBI
    implementation_loss_db: float = 10.0
    max_bounces: int = 2

    def __post_init__(self):
        if self.beams is None:
            self.beams = measured_mmx_beams()
        self.modulator = OtamModulator(
            self.config,
            eirp_dbm=(self.eirp_dbm - self.implementation_loss_db))
        self.demodulator = JointDemodulator(self.config)

    # --- channel ------------------------------------------------------------

    def channel_response(self) -> ChannelResponse:
        """Trace the room and evaluate both beams for this placement."""
        return two_beam_gains(
            self.placement.node_position,
            self.placement.ap_position,
            self.room,
            beams=self.beams,
            ap_element=self.ap_element,
            node_orientation_rad=self.placement.node_orientation_rad,
            ap_orientation_rad=self.placement.ap_orientation_rad,
            frequency_hz=self.frequency_hz,
            max_bounces=self.max_bounces,
        )

    # --- analytic view --------------------------------------------------------

    def _level_dbm(self, gain: float) -> float:
        """Received power [dBm] for a channel field gain magnitude."""
        if gain <= 0.0:
            return float("-inf")
        return (self.eirp_dbm + self.ap_gain_dbi
                - self.implementation_loss_db
                + float(amplitude_to_db(gain)))

    def snr_breakdown(self, channel: ChannelResponse | None = None,
                      bandwidth_hz: float = EVAL_NODE_CHANNEL_BANDWIDTH_HZ,
                      disturbance=None) -> SnrBreakdown:
        """Closed-form link quality for this placement.

        ``bandwidth_hz`` defaults to the 25 MHz per-node channel of the
        multi-node experiment (section 9.5) so SNR numbers sit on the
        paper's Fig. 10/12 scales.

        ``disturbance`` optionally applies an active
        :class:`repro.faults.LinkDisturbance` (see
        :func:`perturb_breakdown`); ``None`` or a clear disturbance
        leaves the fault-free computation bit-identical to the seed.
        """
        ch = channel or self.channel_response()
        noise = noise_power_dbm(bandwidth_hz,
                                self.ap_hardware.cascade_noise_figure_db)
        level1 = self._level_dbm(abs(ch.h1))
        level0 = self._level_dbm(abs(ch.h0))
        ask_snr = self._level_dbm(ch.difference_gain()) - noise
        joint_gain = math.sqrt((abs(ch.h1) ** 2 + abs(ch.h0) ** 2) / 2.0)
        fsk_snr = self._level_dbm(joint_gain) - noise
        no_otam = level1 - noise
        breakdown = SnrBreakdown(
            beam1_level_dbm=level1,
            beam0_level_dbm=level0,
            noise_dbm=noise,
            ask_snr_db=ask_snr,
            fsk_snr_db=fsk_snr,
            no_otam_snr_db=no_otam,
            inverted=ch.inverted,
        )
        if disturbance is not None and not disturbance.is_clear:
            breakdown = perturb_breakdown(breakdown, disturbance,
                                          self.config)
        return breakdown

    # --- sample-level view ------------------------------------------------------

    def received_with_noise(self, bits, channel: ChannelResponse | None = None,
                            rng: np.random.Generator | None = None,
                            use_otam: bool = True) -> Waveform:
        """Noisy AP baseband capture for a transmitted bit sequence."""
        ch = channel or self.channel_response()
        if use_otam:
            clean = self.modulator.received_waveform(bits, ch)
        else:
            clean = self.modulator.ask_only_waveform(bits, ch)
        noise_dbm = noise_power_dbm(self.config.sample_rate_hz,
                                    self.ap_hardware.cascade_noise_figure_db)
        noise = complex_awgn(len(clean), noise_dbm, rng)
        return Waveform(clean.samples + noise, clean.sample_rate_hz)

    def simulate_transmission(self, bits,
                              channel: ChannelResponse | None = None,
                              rng: np.random.Generator | None = None,
                              use_otam: bool = True) -> LinkReport:
        """Transmit, receive with noise, jointly demodulate, count errors."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        wave = self.received_with_noise(bits, channel, rng, use_otam)
        demod = self.demodulator.demodulate(wave)
        n = min(bits.size, demod.bits.size)
        errors = int(np.count_nonzero(bits[:n] != demod.bits[:n]))
        errors += abs(bits.size - demod.bits.size)
        ber = errors / bits.size if bits.size else 0.0
        return LinkReport(demod=demod, bit_errors=errors, ber=ber,
                          num_bits=int(bits.size))
