"""mmX packet framing: preamble + header + payload + CRC (section 6.1).

"Similar to most wireless communication systems, each mmX's packet has
known preamble bits" used to distinguish Beam 0's signal from Beam 1's.
The frame layout here:

    [ preamble: 26 bits (2x Barker-13) ]
    [ header:   16-bit payload length | 8-bit sequence number ]
    [ payload:  length * 8 bits ]
    [ CRC-16 over header+payload: 16 bits ]

Optionally the header+payload+CRC body is protected with Hamming(7,4)
FEC, padding the body to a multiple of 4 bits first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..phy.bits import (
    as_bit_array,
    bits_to_bytes,
    bytes_to_bits,
    pack_uint,
    unpack_uint,
)
from ..phy.coding import HammingCode74, crc16_ccitt, deinterleave, interleave
from ..phy.preamble import default_preamble_bits

__all__ = ["Packet", "PacketCodec", "PacketError"]

_LENGTH_BITS = 16
_SEQ_BITS = 8
_CRC_BITS = 16
MAX_PAYLOAD_BYTES = (1 << _LENGTH_BITS) - 1


class PacketError(Exception):
    """Raised when a received frame cannot be recovered."""


@dataclass(frozen=True)
class Packet:
    """An application payload plus its sequence number."""

    payload: bytes
    sequence: int = 0

    def __post_init__(self):
        if len(self.payload) > MAX_PAYLOAD_BYTES:
            raise ValueError("payload too large for the 16-bit length field")
        if not 0 <= self.sequence < (1 << _SEQ_BITS):
            raise ValueError("sequence number must fit in 8 bits")


class PacketCodec:
    """Encodes packets to bit frames and recovers them from bit streams.

    ``use_interleaver`` (requires ``use_fec``) block-interleaves the
    FEC-coded body with depth 7, so a burst of up to 7 consecutive
    channel-bit errors — a blocker clipping the beam for a moment —
    lands at most one error in each Hamming codeword and is fully
    corrected.
    """

    INTERLEAVE_DEPTH = 7

    def __init__(self, preamble=None, use_fec: bool = False,
                 use_interleaver: bool = False):
        if use_interleaver and not use_fec:
            raise ValueError("interleaving without FEC protects nothing")
        self.preamble = (default_preamble_bits() if preamble is None
                         else np.asarray(preamble, dtype=np.uint8))
        self.use_fec = use_fec
        self.use_interleaver = use_interleaver
        self._fec = HammingCode74() if use_fec else None

    # --- encoding -----------------------------------------------------------

    def _body_bits(self, packet: Packet) -> np.ndarray:
        header = np.concatenate([
            pack_uint(len(packet.payload), _LENGTH_BITS),
            pack_uint(packet.sequence, _SEQ_BITS),
        ])
        payload_bits = bytes_to_bits(packet.payload)
        crc_input = np.concatenate([header, payload_bits])
        crc = crc16_ccitt(np.packbits(crc_input).tobytes())
        return np.concatenate([crc_input, pack_uint(crc, _CRC_BITS)])

    def encode(self, packet: Packet) -> np.ndarray:
        """Full over-the-air bit frame for a packet."""
        body = self._body_bits(packet)
        if self._fec is not None:
            pad = (-body.size) % 4
            body = np.concatenate([body, np.zeros(pad, dtype=np.uint8)])
            body = self._fec.encode(body)
            if self.use_interleaver:
                # FEC output length is a multiple of 7 == the depth, so
                # the interleaver's divisibility requirement holds.
                body = interleave(body, self.INTERLEAVE_DEPTH)
        return np.concatenate([self.preamble, body]).astype(np.uint8)

    def frame_length_bits(self, payload_bytes: int) -> int:
        """Total frame length for a payload size — for scheduling math."""
        if not 0 <= payload_bytes <= MAX_PAYLOAD_BYTES:
            raise ValueError("invalid payload size")
        body = _LENGTH_BITS + _SEQ_BITS + 8 * payload_bytes + _CRC_BITS
        if self.use_fec:
            body += (-body) % 4
            body = body * 7 // 4
        return self.preamble.size + body

    # --- decoding -----------------------------------------------------------

    def decode(self, bits) -> Packet:
        """Recover a packet from a *polarity-corrected* bit frame.

        Expects the frame to start at the preamble (the demodulator's
        output already is frame-aligned for single-frame captures).
        Raises :class:`PacketError` on truncation or CRC failure.
        """
        arr = as_bit_array(bits)
        n_pre = self.preamble.size
        if arr.size < n_pre:
            raise PacketError("frame shorter than the preamble")
        if not np.array_equal(arr[:n_pre], self.preamble):
            raise PacketError("preamble mismatch (bad alignment or polarity)")
        body = arr[n_pre:]
        if self._fec is not None:
            usable = body.size - body.size % 7
            if usable == 0:
                raise PacketError("frame truncated before FEC blocks")
            body = body[:usable]
            if self.use_interleaver:
                body = deinterleave(body, self.INTERLEAVE_DEPTH)
            body = self._fec.decode(body)
        header_bits = _LENGTH_BITS + _SEQ_BITS
        if body.size < header_bits + _CRC_BITS:
            raise PacketError("frame truncated inside the header")
        length = unpack_uint(body[:_LENGTH_BITS])
        sequence = unpack_uint(body[_LENGTH_BITS:header_bits])
        payload_end = header_bits + 8 * length
        if body.size < payload_end + _CRC_BITS:
            raise PacketError("frame truncated inside the payload")
        payload_bits = body[header_bits:payload_end]
        received_crc = unpack_uint(body[payload_end:payload_end + _CRC_BITS])
        crc_input = np.packbits(body[:payload_end]).tobytes()
        if crc16_ccitt(crc_input) != received_crc:
            raise PacketError("CRC check failed")
        return Packet(payload=bits_to_bytes(payload_bits), sequence=sequence)
