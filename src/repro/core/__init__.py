"""mmX core: OTAM modulation, joint ASK-FSK, packets and the full link.

This is the paper's contribution.  :mod:`repro.core.otam` turns bits into
beam selections (modulation happens *over the air*),
:mod:`repro.core.demodulator` is the AP-side joint ASK-FSK decoder with
preamble-based polarity resolution, :mod:`repro.core.packet` frames bits,
and :mod:`repro.core.link` wires node hardware, antennas, the channel and
the AP into one end-to-end simulated link.
"""

from .ask_fsk import AskFskConfig
from .demodulator import JointDemodulator, DemodResult
from .link import OtamLink, LinkReport, SnrBreakdown
from .otam import OtamModulator, transmitted_beam_bits
from .packet import Packet, PacketCodec, PacketError
from .throughput import (
    CODING_MODES,
    CodingMode,
    RateAdapter,
    frame_success_probability,
    goodput_bps,
)

__all__ = [
    "AskFskConfig",
    "CODING_MODES",
    "CodingMode",
    "DemodResult",
    "JointDemodulator",
    "LinkReport",
    "OtamLink",
    "OtamModulator",
    "Packet",
    "PacketCodec",
    "PacketError",
    "RateAdapter",
    "SnrBreakdown",
    "frame_success_probability",
    "goodput_bps",
    "transmitted_beam_bits",
]
