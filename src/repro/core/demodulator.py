"""The AP's joint ASK-FSK demodulator with polarity resolution (§6.1, §6.3).

Decoding proceeds per bit period on the complex baseband capture:

1. **ASK branch** — average envelope per bit, 2-means level estimation,
   threshold midway.  This branch carries an inherent *polarity
   ambiguity*: when the LoS is blocked, Beam 0 arrives stronger than
   Beam 1 and every bit inverts (Fig. 4b).  The known preamble resolves
   it.
2. **FSK branch** — Goertzel tone powers at the two configured
   frequencies; bit = stronger tone.  No polarity ambiguity (the bit
   chooses the VCO frequency directly), but it fails when one beam's
   signal is too weak to detect its tone.
3. **Joint decision** — each branch reports a decision SNR; the better
   branch wins.  This is exactly the paper's argument for why *both* are
   needed: "FSK or ASK alone is not sufficient to decode the signal in
   all scenarios".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..phy.envelope import envelope_detect, threshold_levels
from ..phy.goertzel import goertzel_block_powers
from ..phy.preamble import default_preamble_bits, locate_preamble
from ..phy.snr import estimate_snr_two_level
from ..phy.timing import align_to_bits
from ..phy.waveform import Waveform
from .ask_fsk import AskFskConfig

__all__ = ["DemodResult", "JointDemodulator"]


@dataclass(frozen=True)
class DemodResult:
    """Joint demodulation outcome for one capture."""

    bits: np.ndarray
    """Decoded bits (preamble included, polarity corrected)."""

    branch: str
    """Which branch produced the decision: 'ask', 'fsk' or 'none'."""

    ask_snr_db: float
    """Decision SNR of the ASK (envelope) branch."""

    fsk_snr_db: float
    """Decision SNR of the FSK (tone-contrast) branch."""

    inverted: bool
    """Whether the ASK branch had to invert its bits (blocked-LoS case)."""

    preamble_found: bool
    """Whether the preamble correlation cleared its threshold."""

    @property
    def snr_db(self) -> float:
        """Decision SNR of the branch actually used."""
        return self.ask_snr_db if self.branch == "ask" else self.fsk_snr_db


class JointDemodulator:
    """Decodes OTAM captures; one instance per configured link."""

    def __init__(self, config: AskFskConfig, preamble=None,
                 preamble_threshold: float = 0.6,
                 health_monitor=None):
        self.config = config
        self.preamble = (default_preamble_bits() if preamble is None
                         else np.asarray(preamble, dtype=np.uint8))
        self.preamble_threshold = preamble_threshold
        self.health_monitor = health_monitor
        """Optional :class:`repro.resilience.LinkHealthMonitor`; when
        attached, every capture's decision SNR is folded into the link's
        health estimate (``observe_demod``) as a side effect of
        :meth:`demodulate`."""

    # --- per-branch soft demodulation -----------------------------------

    def ask_soft_values(self, wave: Waveform) -> np.ndarray:
        """Per-bit mean envelope (the ASK observable)."""
        self._check_rate(wave)
        sps = self.config.samples_per_bit
        env = envelope_detect(wave.samples)
        num_bits = env.size // sps
        return env[: num_bits * sps].reshape(num_bits, sps).mean(axis=1)

    def fsk_tone_powers(self, wave: Waveform) -> np.ndarray:
        """Per-bit (power at f0, power at f1) matrix."""
        self._check_rate(wave)
        return goertzel_block_powers(
            wave.samples, self.config.samples_per_bit,
            [self.config.freq_zero_hz, self.config.freq_one_hz],
            wave.sample_rate_hz)

    # --- branch decisions -------------------------------------------------

    def demodulate_ask(self, wave: Waveform) -> tuple[np.ndarray, float]:
        """Envelope threshold decisions plus the branch decision SNR.

        Bits are *raw* (possibly inverted); polarity is resolved later
        against the preamble.
        """
        soft = self.ask_soft_values(wave)
        if soft.size == 0:
            return np.zeros(0, dtype=np.uint8), float("-inf")
        low, high, threshold = threshold_levels(soft)
        bits = (soft > threshold).astype(np.uint8)
        snr_db = estimate_snr_two_level(soft, bits)
        return bits, snr_db

    def demodulate_fsk(self, wave: Waveform) -> tuple[np.ndarray, float]:
        """Tone-contrast decisions plus the branch decision SNR.

        Decision statistic per bit is ``P(f1) - P(f0)``; its SNR is the
        separation of the two decision clusters, same metric as the ASK
        branch so the joint comparison is apples-to-apples.
        """
        powers = self.fsk_tone_powers(wave)
        if powers.shape[0] == 0:
            return np.zeros(0, dtype=np.uint8), float("-inf")
        contrast = powers[:, 1] - powers[:, 0]
        bits = (contrast > 0.0).astype(np.uint8)
        # Normalise contrast to an SNR-like separation statistic.
        snr_db = estimate_snr_two_level(contrast, bits)
        return bits, snr_db

    # --- joint decision ---------------------------------------------------

    def demodulate(self, wave: Waveform,
                   recover_timing: bool = False) -> DemodResult:
        """Full joint ASK-FSK demodulation with polarity resolution.

        ``recover_timing=True`` first estimates the bit-boundary sample
        offset blindly (:mod:`repro.phy.timing`) — required when the
        capture did not start exactly on a bit edge, as real captures
        never do.
        """
        if recover_timing and len(wave):
            wave, _ = align_to_bits(wave, self.config.samples_per_bit)
        ask_bits, ask_snr = self.demodulate_ask(wave)
        fsk_bits, fsk_snr = self.demodulate_fsk(wave)

        # Resolve ASK polarity against the preamble (start of capture).
        inverted = False
        preamble_found = False
        if ask_bits.size >= self.preamble.size:
            soft = 2.0 * ask_bits.astype(float) - 1.0
            detection = locate_preamble(soft, self.preamble,
                                        threshold=self.preamble_threshold)
            preamble_found = detection.found
            if detection.found and detection.inverted:
                inverted = True
                ask_bits = (1 - ask_bits).astype(np.uint8)

        if ask_bits.size == 0 and fsk_bits.size == 0:
            result = DemodResult(bits=np.zeros(0, dtype=np.uint8),
                                 branch="none",
                                 ask_snr_db=ask_snr, fsk_snr_db=fsk_snr,
                                 inverted=False, preamble_found=False)
        else:
            # If the ASK branch found no preamble its polarity is a
            # guess; a clean FSK branch is then preferable even at
            # comparable SNR.
            ask_effective = ask_snr if preamble_found else ask_snr - 6.0
            if ask_effective >= fsk_snr:
                branch, bits = "ask", ask_bits
            else:
                branch, bits = "fsk", fsk_bits
            result = DemodResult(bits=bits, branch=branch,
                                 ask_snr_db=ask_snr, fsk_snr_db=fsk_snr,
                                 inverted=inverted,
                                 preamble_found=preamble_found)
        if self.health_monitor is not None:
            self.health_monitor.observe_demod(result)
        return result

    # --- helpers ------------------------------------------------------------

    def _check_rate(self, wave: Waveform) -> None:
        if abs(wave.sample_rate_hz - self.config.sample_rate_hz) > 1e-6:
            raise ValueError(
                f"waveform rate {wave.sample_rate_hz} does not match "
                f"configured {self.config.sample_rate_hz}")
