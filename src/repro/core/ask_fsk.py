"""Joint ASK-FSK air-interface configuration (section 6.3).

A single mmX symbol carries one bit along two physical dimensions at once:

* **ASK** — which *beam* radiates the carrier, so the received amplitude
  is set by that beam's channel gain (this is OTAM); and
* **FSK** — a small VCO frequency nudge tied to the same bit, so the
  received *tone frequency* also identifies the bit.

The AP can decode from amplitude when the beams' path losses differ, and
falls back to frequency when they happen to coincide (<10 % of
placements); the configuration here pins down the numerology both ends
share.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AskFskConfig"]


@dataclass(frozen=True)
class AskFskConfig:
    """Shared modulation numerology for one mmX link.

    Attributes
    ----------
    bit_rate_bps:
        Data rate; capped at 100 Mbps by the RF switch in real hardware.
    sample_rate_hz:
        Complex-baseband simulation/DSP rate; must be an integer multiple
        of the bit rate.
    fsk_deviation_hz:
        Tone offsets: bit 1 is sent at ``+deviation``, bit 0 at
        ``-deviation`` relative to the channel centre.  The default
        separation of one bit-rate (``2*deviation = bit_rate``) makes the
        two tones orthogonal over a bit period — the minimum for clean
        non-coherent FSK.
    """

    bit_rate_bps: float = 1e6
    sample_rate_hz: float = 8e6
    fsk_deviation_hz: float | None = None

    def __post_init__(self):
        if self.bit_rate_bps <= 0:
            raise ValueError("bit rate must be positive")
        if self.sample_rate_hz < 2 * self.bit_rate_bps:
            raise ValueError("sample rate must be at least 2x the bit rate")
        sps = self.sample_rate_hz / self.bit_rate_bps
        if abs(sps - round(sps)) > 1e-9:
            raise ValueError("sample rate must be an integer multiple "
                             "of the bit rate")
        if self.fsk_deviation_hz is None:
            object.__setattr__(self, "fsk_deviation_hz",
                               self.bit_rate_bps / 2.0)
        if self.fsk_deviation_hz <= 0:
            raise ValueError("FSK deviation must be positive")
        if 2 * self.fsk_deviation_hz >= self.sample_rate_hz / 2:
            raise ValueError("FSK tones must fit inside Nyquist")

    @property
    def samples_per_bit(self) -> int:
        """Samples spanning one bit period."""
        return int(round(self.sample_rate_hz / self.bit_rate_bps))

    @property
    def freq_one_hz(self) -> float:
        """Baseband tone frequency transmitted for bit 1."""
        return +self.fsk_deviation_hz

    @property
    def freq_zero_hz(self) -> float:
        """Baseband tone frequency transmitted for bit 0."""
        return -self.fsk_deviation_hz

    @property
    def tone_separation_hz(self) -> float:
        """Distance between the two FSK tones."""
        return self.freq_one_hz - self.freq_zero_hz

    @property
    def occupied_bandwidth_hz(self) -> float:
        """Rough occupied bandwidth: tone separation plus two main lobes."""
        return self.tone_separation_hz + 2.0 * self.bit_rate_bps

    def tones_orthogonal(self) -> bool:
        """Whether the tone separation is a multiple of the bit rate.

        Non-coherent FSK detection is interference-free exactly when the
        separation is ``k / T_bit``.
        """
        ratio = self.tone_separation_hz / self.bit_rate_bps
        return abs(ratio - round(ratio)) < 1e-9 and round(ratio) >= 1
