"""Sanctioned randomness construction for the mmX stack.

Every simulation result in this repo must be replayable from a seed, so
reprolint's ``RNG001`` rule forbids unseeded ``np.random.default_rng()``
calls (and all legacy global-state ``np.random.*`` use) everywhere in
``src/``.  This module is the one sanctioned factory: APIs that accept
an optional ``rng`` fall back to :func:`fresh_rng`, which

* honours the ``REPRO_SEED`` environment variable when set, so an
  entire run — including every "just give me some entropy" fallback —
  can be pinned from the outside without touching call sites; and
* otherwise draws OS entropy exactly like ``default_rng()`` would.

Library code that *can* thread a seeded generator through should; this
fallback exists for interactive use and demo paths, not as an excuse to
drop the seed plumbing.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["DEFAULT_SEED_ENV", "fresh_rng", "ensure_rng"]

DEFAULT_SEED_ENV = "REPRO_SEED"
"""Environment variable that pins every :func:`fresh_rng` fallback."""


def fresh_rng(seed: int | np.random.SeedSequence | None = None
              ) -> np.random.Generator:
    """A new Generator: seeded if asked, ``REPRO_SEED``-pinned otherwise.

    With ``seed=None`` and ``REPRO_SEED`` unset this is plain OS
    entropy — the same behaviour as ``np.random.default_rng()`` — but
    routed through the one module the lint rule exempts, so every such
    fallback in the codebase is enumerable.
    """
    if seed is None:
        env_seed = os.environ.get(DEFAULT_SEED_ENV)
        if env_seed is not None:
            return np.random.default_rng(int(env_seed))
    return np.random.default_rng(seed)


def ensure_rng(rng: np.random.Generator | None) -> np.random.Generator:
    """The common ``rng or fresh_rng()`` fallback, spelled once."""
    return rng if rng is not None else fresh_rng()
