"""Deterministic JSONL / CSV / collapsed-stack exporters.

Exports are a *replayable artifact*: two runs of the same code with the
same seed must produce byte-identical files (the hypothesis test in
``tests/test_telemetry_determinism.py`` pins this).  Everything that
could wobble is nailed down:

* no wall-clock stamps anywhere — timestamps are simulated seconds;
* JSON with sorted keys and fixed separators;
* metrics emitted in name order, spans in completion order, events in
  emission order (both deterministic given a seeded simulation);
* non-finite floats (an ``-inf`` SNR gauge) serialised as ``null`` so
  every line is strict JSON.

The JSONL layout is one self-describing object per line with a
``record`` discriminator: ``meta``, ``counter``, ``gauge``,
``histogram``, ``span``, ``event``.  ``collapsed_stacks`` renders
finished spans in the Brendan-Gregg collapsed format
(``root;child value``) that flamegraph tooling consumes, with values in
simulated microseconds.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from ..durability.io import FsBackend, atomic_replace
from .recorder import Recorder
from .tracer import SpanRecord

__all__ = ["EXPORT_FORMAT_VERSION", "collapsed_stacks", "to_csv",
           "to_jsonl", "to_jsonl_lines", "write_csv", "write_jsonl"]

EXPORT_FORMAT_VERSION = 1
"""Bump on any change to the JSONL line layout."""


def _json_safe(value: Any) -> Any:
    """Map non-finite floats to ``None`` so every line is strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _dumps(obj: dict[str, Any]) -> str:
    """Canonical one-line JSON: sorted keys, no whitespace."""
    return json.dumps(_json_safe(obj), sort_keys=True,
                      separators=(",", ":"))


def to_jsonl_lines(recorder: Recorder) -> list[str]:
    """Serialise one recorder into JSONL lines (no trailing newline)."""
    lines = [_dumps({"record": "meta", "format": "repro-telemetry",
                     "version": EXPORT_FORMAT_VERSION,
                     "clock_s": recorder.clock.now_s})]
    for counter in recorder.metrics.counters():
        lines.append(_dumps({"record": "counter", "name": counter.name,
                             "value": counter.value}))
    for gauge in recorder.metrics.gauges():
        lines.append(_dumps({"record": "gauge", "name": gauge.name,
                             "value": gauge.value}))
    for histogram in recorder.metrics.histograms():
        lines.append(_dumps({
            "record": "histogram", "name": histogram.name,
            "count": histogram.count, "sum": histogram.total,
            "min": histogram.min if histogram.count else None,
            "max": histogram.max if histogram.count else None,
            "buckets": [[upper, count]
                        for upper, count in histogram.buckets()]}))
    for span in recorder.tracer.finished:
        lines.append(_dumps({
            "record": "span", "id": span.span_id, "name": span.name,
            "start_s": span.start_s, "end_s": span.end_s,
            "parent": span.parent_id, "attrs": span.attrs}))
    for event in recorder.events:
        lines.append(_dumps({"record": "event", "name": event.name,
                             "time_s": event.time_s,
                             "fields": event.fields}))
    return lines


def to_jsonl(recorder: Recorder) -> str:
    """The full JSONL export as one newline-terminated string."""
    return "\n".join(to_jsonl_lines(recorder)) + "\n"


def write_jsonl(recorder: Recorder, path: str | Path,
                fs: FsBackend | None = None) -> Path:
    """Write the JSONL export to ``path``; returns the path written.

    Atomic and durable (:func:`repro.durability.atomic_replace`): a
    crash mid-export leaves the previous file or none, never a torn
    one — a half-written export would replay as a *different* run.
    """
    return atomic_replace(Path(path), to_jsonl(recorder), fs=fs)


def to_csv(recorder: Recorder) -> str:
    """A flat CSV view: ``record,name,time_s,value,detail`` rows.

    Spreadsheets cannot ingest nested JSON; this projection keeps one
    row per telemetry item with the distribution/attribute detail
    packed into the final column.
    """
    rows = ["record,name,time_s,value,detail"]

    def cell(value: Any) -> str:
        text = "" if value is None else str(value)
        if any(c in text for c in ",\"\n"):
            text = '"' + text.replace('"', '""') + '"'
        return text

    for counter in recorder.metrics.counters():
        rows.append(f"counter,{cell(counter.name)},,{counter.value},")
    for gauge in recorder.metrics.gauges():
        value = _json_safe(gauge.value)
        rows.append(f"gauge,{cell(gauge.name)},,"
                    f"{'' if value is None else value},")
    for histogram in recorder.metrics.histograms():
        detail = (f"sum={histogram.total};mean={histogram.mean};"
                  f"min={histogram.min if histogram.count else ''};"
                  f"max={histogram.max if histogram.count else ''}")
        rows.append(f"histogram,{cell(histogram.name)},,"
                    f"{histogram.count},{cell(detail)}")
    for span in recorder.tracer.finished:
        detail = f"id={span.span_id};parent={span.parent_id}"
        rows.append(f"span,{cell(span.name)},{span.start_s},"
                    f"{span.duration_s},{cell(detail)}")
    for event in recorder.events:
        detail = ";".join(f"{k}={_json_safe(v)}"
                          for k, v in sorted(event.fields.items()))
        rows.append(f"event,{cell(event.name)},{event.time_s},,"
                    f"{cell(detail)}")
    return "\n".join(rows) + "\n"


def write_csv(recorder: Recorder, path: str | Path,
              fs: FsBackend | None = None) -> Path:
    """Write the CSV export to ``path``; returns the path written.

    Atomic and durable, like :func:`write_jsonl`.
    """
    return atomic_replace(Path(path), to_csv(recorder), fs=fs)


def collapsed_stacks(spans: list[SpanRecord]) -> list[str]:
    """Finished spans folded into flamegraph collapsed-stack lines.

    Each line is ``parent;child count`` where the count is the span's
    *self* time (duration minus finished children) in whole simulated
    microseconds — the units flamegraph renderers treat as sample
    counts.  Lines come out sorted, so the export is deterministic.
    """
    names = {span.span_id: span.name for span in spans}
    parents = {span.span_id: span.parent_id for span in spans}
    child_time: dict[int | None, float] = {}
    for span in spans:
        parent = span.parent_id
        child_time[parent] = child_time.get(parent, 0.0) + span.duration_s

    def stack(span: SpanRecord) -> str:
        chain = [span.name]
        parent = span.parent_id
        while parent is not None and parent in names:
            chain.append(names[parent])
            parent = parents[parent]
        return ";".join(reversed(chain))

    totals: dict[str, int] = {}
    for span in spans:
        self_s = span.duration_s - child_time.get(span.span_id, 0.0)
        micros = int(round(max(self_s, 0.0) * 1e6))
        key = stack(span)
        totals[key] = totals.get(key, 0) + micros
    return [f"{key} {value}" for key, value in sorted(totals.items())]
