"""Counters, gauges and exponential-bucket histograms.

The metric model is deliberately small — three instrument kinds, each a
plain Python object with one hot method — because instrumentation sits
inside simulation inner loops and must cost nanoseconds, not
microseconds:

* :class:`Counter` — a monotone float total (``mac.frames_delivered``);
* :class:`Gauge` — a last-value sample (``transport.rto_s``);
* :class:`Histogram` — an exponential-bucket distribution
  (``mac.latency_s``) whose bucket edges are ``least * growth**i``, the
  classic HdrHistogram/Prometheus-native layout that covers microseconds
  to minutes in a few dozen sparse buckets.

Names follow a ``subsystem.metric`` convention (validated on creation):
the segment before the first dot is the subsystem the summarizer groups
tables by.  See ``docs/observability.md`` for the full catalogue.
"""

from __future__ import annotations

import math
import re

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_-]+)+$")


def _validate_name(name: str) -> str:
    """Enforce the ``subsystem.metric`` naming convention."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} must be lowercase dotted "
            "'subsystem.metric' (segments of [a-z0-9_-])")
    return name


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = _validate_name(name)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0.0:
            raise ValueError("counters only go up")
        self.value += float(amount)


class Gauge:
    """A last-value sample; ``None`` until first set."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = _validate_name(name)
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current reading (non-finite values are kept as-is
        in memory but exported as ``null``)."""
        self.value = float(value)


class Histogram:
    """Sparse exponential-bucket histogram.

    Bucket ``i`` holds observations in ``(least * growth**(i-1),
    least * growth**i]``; bucket 0 holds everything at or below
    ``least``.  Only touched buckets are stored, so a latency histogram
    spanning six decades costs a handful of dict entries.
    """

    __slots__ = ("name", "least", "growth", "count", "total",
                 "min", "max", "_buckets")

    def __init__(self, name: str, least: float = 1e-6,
                 growth: float = 2.0) -> None:
        if least <= 0.0:
            raise ValueError("least bucket bound must be positive")
        if growth <= 1.0:
            raise ValueError("bucket growth factor must exceed 1")
        self.name = _validate_name(name)
        self.least = float(least)
        self.growth = float(growth)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: dict[int, int] = {}

    def bucket_index(self, value: float) -> int:
        """The bucket an observation lands in (0 for ``value <= least``)."""
        if value <= self.least:
            return 0
        index = math.ceil(math.log(value / self.least)
                          / math.log(self.growth))
        # Guard the edge where float log puts an exact bound one short.
        if self.least * self.growth ** index < value:
            index += 1
        return max(index, 0)

    def upper_bound(self, index: int) -> float:
        """Inclusive upper edge of bucket ``index``."""
        if index < 0:
            raise ValueError("bucket index cannot be negative")
        return self.least * self.growth ** index

    def observe(self, value: float) -> None:
        """Record one (finite, non-negative) observation."""
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ValueError("histograms record finite non-negative values")
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        index = self.bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of everything observed (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, count)`` per touched bucket, ascending."""
        return [(self.upper_bound(i), self._buckets[i])
                for i in sorted(self._buckets)]

    @classmethod
    def from_state(cls, name: str, least: float, growth: float,
                   count: int, total: float, min_value: float | None,
                   max_value: float | None,
                   bucket_counts: dict[int, int]) -> Histogram:
        """Rebuild a histogram from captured state (the snapshot path).

        ``min_value``/``max_value`` may be ``None`` for an empty
        histogram (the JSON-safe encoding of the untouched ±inf
        sentinels).
        """
        histogram = cls(name, least=least, growth=growth)
        if count < 0 or total < 0.0:
            raise ValueError("histogram state cannot be negative")
        histogram.count = int(count)
        histogram.total = float(total)
        histogram.min = math.inf if min_value is None else float(min_value)
        histogram.max = -math.inf if max_value is None else float(max_value)
        for index, bucket_count in bucket_counts.items():
            if index < 0 or bucket_count < 0:
                raise ValueError("histogram buckets cannot be negative")
            histogram._buckets[int(index)] = int(bucket_count)
        return histogram

    def bucket_counts(self) -> dict[int, int]:
        """A copy of the sparse ``{bucket_index: count}`` map.

        The raw indices (not the float upper bounds) are what a
        cross-process merge needs: two histograms with the same
        ``least``/``growth`` layout can be combined exactly by adding
        counts index-by-index.
        """
        return dict(self._buckets)

    def absorb(self, other: Histogram) -> None:
        """Merge another histogram's distribution into this one.

        Both histograms must share a bucket layout (``least`` and
        ``growth``), which holds whenever the same instrument name was
        observed on both sides — the cross-process telemetry merge case
        (:meth:`repro.telemetry.Recorder.absorb`).
        """
        if (other.least, other.growth) != (self.least, self.growth):
            raise ValueError(
                f"histogram {self.name!r}: cannot absorb a different "
                f"bucket layout (least={other.least}, "
                f"growth={other.growth})")
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, bucket_count in other.bucket_counts().items():
            self._buckets[index] = self._buckets.get(index, 0) \
                + bucket_count

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper bounds (0.0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for upper, bucket_count in self.buckets():
            seen += bucket_count
            if seen >= target:
                return min(upper, self.max)
        return self.max


class MetricsRegistry:
    """Get-or-create home for every instrument, keyed by name.

    Lookup is a single dict hit so repeated calls from hot loops are
    cheap; iteration is always name-sorted so exports are byte-stable.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, least: float = 1e-6,
                  growth: float = 2.0) -> Histogram:
        """The histogram under ``name`` (bucket layout fixed on creation)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, least=least, growth=growth)
        return histogram

    def counters(self) -> list[Counter]:
        """Every counter, name-sorted."""
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> list[Gauge]:
        """Every gauge, name-sorted."""
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> list[Histogram]:
        """Every histogram, name-sorted."""
        return [self._histograms[k] for k in sorted(self._histograms)]

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))
