"""Serializable telemetry snapshots for cross-process merging.

A :class:`Recorder` lives in one process; a sharded Monte-Carlo campaign
(:mod:`repro.engine`) runs trials in *worker* processes, each with its
own recorder.  :class:`TelemetrySnapshot` is the bridge: it captures
everything a worker recorded as plain JSON-safe primitives, travels back
over the pickle/JSONL boundary, and is absorbed into the campaign's
recorder with :meth:`Recorder.absorb`.

The merge discipline is what keeps exports byte-identical to a serial
run.  Snapshots are absorbed in shard order (global trial order), and:

* spans are renumbered onto the target tracer's id sequence in *begin*
  order, then appended in *completion* order — exactly the ids and
  ordering one shared tracer would have assigned;
* events are appended in recorded order with their recorded sim-time
  stamps;
* counters add, gauges last-write-wins in absorb order, histograms
  merge bucket-by-bucket (the layouts match because both sides name the
  same instrument);
* the target clock advances to the latest instant the snapshot saw
  (:meth:`~repro.telemetry.clock.SimClock.advance_to` keeps it
  monotone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .recorder import EventRecord, Recorder
from .tracer import Primitive, SpanRecord

__all__ = ["SNAPSHOT_SCHEMA_VERSION", "TelemetrySnapshot"]

SNAPSHOT_SCHEMA_VERSION = 1
"""Bump on any change to the snapshot dict layout; ``from_dict``
refuses unknown schemas rather than misreading them."""


def _primitive(value: Any) -> Primitive:
    """Validate that a snapshot field is a JSON-safe scalar."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"snapshot fields must be JSON scalars, got "
                    f"{type(value).__name__}")


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One recorder's complete contents as plain primitives.

    Everything is a tuple/dict of JSON scalars, so a snapshot pickles
    across process boundaries and round-trips through the engine's
    JSONL result store without loss.
    """

    schema_version: int = SNAPSHOT_SCHEMA_VERSION
    clock_s: float = 0.0
    counters: tuple[tuple[str, float], ...] = ()
    """Name-sorted ``(name, value)`` pairs."""

    gauges: tuple[tuple[str, float | None], ...] = ()
    """Name-sorted ``(name, last_value)`` pairs."""

    histograms: tuple[dict[str, Any], ...] = field(default_factory=tuple)
    """Name-sorted dicts: name, least, growth, count, total, min, max,
    and the sparse ``{bucket_index: count}`` map."""

    spans: tuple[dict[str, Any], ...] = field(default_factory=tuple)
    """Finished spans in completion order, with the source tracer's
    local ids (renumbered on absorb)."""

    events: tuple[dict[str, Any], ...] = field(default_factory=tuple)
    """Point events in emission order."""

    # --- capture ----------------------------------------------------------

    @classmethod
    def capture(cls, recorder: Recorder) -> TelemetrySnapshot:
        """Snapshot a live :class:`Recorder` (metrics, spans, events)."""
        counters = tuple((c.name, c.value)
                         for c in recorder.metrics.counters())
        gauges = tuple((g.name, g.value)
                       for g in recorder.metrics.gauges())
        histograms = tuple(
            {"name": h.name, "least": h.least, "growth": h.growth,
             "count": h.count, "total": h.total,
             "min": h.min if h.count else None,
             "max": h.max if h.count else None,
             "buckets": {str(i): n
                         for i, n in sorted(h.bucket_counts().items())}}
            for h in recorder.metrics.histograms())
        spans = tuple(
            {"id": s.span_id, "name": s.name, "start_s": s.start_s,
             "end_s": s.end_s, "parent": s.parent_id,
             "attrs": {k: _primitive(v) for k, v in s.attrs.items()}}
            for s in recorder.tracer.finished)
        events = tuple(
            {"time_s": e.time_s, "name": e.name,
             "fields": {k: _primitive(v) for k, v in e.fields.items()}}
            for e in recorder.events)
        return cls(schema_version=SNAPSHOT_SCHEMA_VERSION,
                   clock_s=recorder.clock.now_s, counters=counters,
                   gauges=gauges, histograms=histograms, spans=spans,
                   events=events)

    # --- serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-safe dict (tuples become lists)."""
        return {
            "schema_version": self.schema_version,
            "clock_s": self.clock_s,
            "counters": [list(pair) for pair in self.counters],
            "gauges": [list(pair) for pair in self.gauges],
            "histograms": [dict(h) for h in self.histograms],
            "spans": [dict(s) for s in self.spans],
            "events": [dict(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> TelemetrySnapshot:
        """Deserialise, verifying the schema version."""
        if not isinstance(data, dict):
            raise ValueError("telemetry snapshot must be a dict")
        version = data.get("schema_version")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported telemetry snapshot schema {version!r} "
                f"(this build reads {SNAPSHOT_SCHEMA_VERSION})")
        try:
            return cls(
                schema_version=int(version),
                clock_s=float(data["clock_s"]),
                counters=tuple((str(n), float(v))
                               for n, v in data["counters"]),
                gauges=tuple(
                    (str(n), None if v is None else float(v))
                    for n, v in data["gauges"]),
                histograms=tuple(dict(h) for h in data["histograms"]),
                spans=tuple(dict(s) for s in data["spans"]),
                events=tuple(dict(e) for e in data["events"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed telemetry snapshot: {exc}") from exc

    # --- merge ------------------------------------------------------------

    def shifted(self, offset_s: float) -> TelemetrySnapshot:
        """A copy with every timestamp moved ``offset_s`` later.

        Workers record on private clocks that start at zero; a campaign
        that wants worker timelines to *stack* (the way serial drivers
        sharing one recorder accumulate a cumulative axis) shifts each
        snapshot to the merge clock's current instant before absorbing
        it.  Metric values are untouched — only span edges, event
        stamps and the final clock reading move.
        """
        if offset_s < 0.0:
            raise ValueError("snapshots cannot shift backwards in time")
        if offset_s == 0.0:
            return self
        spans = tuple(dict(s, start_s=float(s["start_s"]) + offset_s,
                           end_s=float(s["end_s"]) + offset_s)
                      for s in self.spans)
        events = tuple(dict(e, time_s=float(e["time_s"]) + offset_s)
                       for e in self.events)
        return TelemetrySnapshot(
            schema_version=self.schema_version,
            clock_s=self.clock_s + offset_s, counters=self.counters,
            gauges=self.gauges, histograms=self.histograms,
            spans=spans, events=events)

    def span_records(self) -> list[SpanRecord]:
        """The snapshot's spans as :class:`SpanRecord` objects.

        Ids are still the *source* tracer's local ids; feed them to
        :meth:`~repro.telemetry.tracer.Tracer.absorb` (or
        :meth:`Recorder.absorb`) to renumber onto a target timeline.
        """
        return [SpanRecord(span_id=int(s["id"]), name=str(s["name"]),
                           start_s=float(s["start_s"]),
                           end_s=float(s["end_s"]),
                           parent_id=(None if s["parent"] is None
                                      else int(s["parent"])),
                           attrs=dict(s["attrs"]))
                for s in self.spans]

    def event_records(self) -> list[EventRecord]:
        """The snapshot's events as :class:`EventRecord` objects."""
        return [EventRecord(time_s=float(e["time_s"]),
                            name=str(e["name"]),
                            fields=dict(e["fields"]))
                for e in self.events]
