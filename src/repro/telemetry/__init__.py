"""``repro.telemetry`` — sim-time observability for the whole stack.

The repo's simulations used to report only end-of-run aggregates; this
package adds the instrumentation layer mmX's own evaluation (§9) is
built on: per-event counters, last-value gauges, exponential-bucket
latency histograms, and spans measured in **simulated seconds** — never
wall time, so every export regenerates byte-identically from a seed.

Pieces
------
``clock``     :class:`SimClock` — the simulated-time source of truth
``metrics``   :class:`Counter` / :class:`Gauge` / :class:`Histogram`
              behind a :class:`MetricsRegistry`
``tracer``    :class:`Tracer` — scoped and cross-step spans
``recorder``  the facade: :class:`Recorder` records,
              :class:`NullRecorder` (the default everywhere) costs ~0
``snapshot``  :class:`TelemetrySnapshot` — serializable capture of one
              recorder, merged across processes via ``Recorder.absorb``
``export``    deterministic JSONL / CSV / flamegraph exporters
``summary``   per-subsystem tables for ``repro telemetry summarize``

Usage
-----
>>> from repro.telemetry import Recorder, to_jsonl
>>> from repro.resilience import ChaosSimulation  # doctest: +SKIP
>>> rec = Recorder()                              # doctest: +SKIP
>>> ChaosSimulation(link, injector, telemetry=rec).run(30)  # doctest: +SKIP
>>> print(to_jsonl(rec))                          # doctest: +SKIP
"""

from .clock import SimClock
from .export import (
    collapsed_stacks,
    to_csv,
    to_jsonl,
    to_jsonl_lines,
    write_csv,
    write_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import EventRecord, NullRecorder, Recorder, TelemetryRecorder
from .snapshot import SNAPSHOT_SCHEMA_VERSION, TelemetrySnapshot
from .summary import (
    SpanStats,
    SubsystemSummary,
    TelemetrySummary,
    load_jsonl,
    load_path,
    render,
    spans_to_collapsed,
    summarize,
)
from .tracer import ActiveSpan, SpanRecord, Tracer

__all__ = [
    "ActiveSpan",
    "Counter",
    "EventRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "Recorder",
    "SNAPSHOT_SCHEMA_VERSION",
    "SimClock",
    "SpanRecord",
    "SpanStats",
    "SubsystemSummary",
    "TelemetryRecorder",
    "TelemetrySnapshot",
    "TelemetrySummary",
    "Tracer",
    "collapsed_stacks",
    "load_jsonl",
    "load_path",
    "render",
    "spans_to_collapsed",
    "summarize",
    "to_csv",
    "to_jsonl",
    "to_jsonl_lines",
    "write_csv",
    "write_jsonl",
]
