"""Sim-time spans: how long (in simulated seconds) work actually took.

A span is an interval on the :class:`~repro.telemetry.clock.SimClock`
timeline with a name, optional attributes and a parent.  Two usage
shapes cover everything the stack needs:

* scoped — ``with tracer.span("sim.trial", index=3): ...`` for work
  that nests cleanly (a Monte-Carlo trial, a transport transfer);
* manual — ``handle = tracer.begin("cluster.ap_outage"); ...;
  tracer.end(handle)`` for intervals that open and close on different
  simulation steps (an AP's crash-to-recovery window, a link's
  outage-to-healthy recovery), which may overlap arbitrarily.

Parentage is the innermost span open at ``begin`` time, so nested work
rolls up into flamegraph stacks
(:func:`repro.telemetry.export.collapsed_stacks`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from .clock import SimClock

__all__ = ["ActiveSpan", "SpanRecord", "Tracer"]

Primitive = float | int | str | bool | None
"""Attribute/field values must stay JSON-scalar so exports are stable."""


@dataclass(frozen=True)
class SpanRecord:
    """One finished span on the simulated timeline."""

    span_id: int
    name: str
    start_s: float
    end_s: float
    parent_id: int | None
    attrs: dict[str, Primitive] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Simulated seconds between begin and end."""
        return self.end_s - self.start_s


class ActiveSpan:
    """Handle for a span that has begun but not yet ended."""

    __slots__ = ("span_id", "name", "start_s", "parent_id", "attrs")

    def __init__(self, span_id: int, name: str, start_s: float,
                 parent_id: int | None,
                 attrs: dict[str, Primitive]) -> None:
        self.span_id = span_id
        self.name = name
        self.start_s = start_s
        self.parent_id = parent_id
        self.attrs = attrs


class Tracer:
    """Opens and closes spans against one simulation clock."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.finished: list[SpanRecord] = []
        self._open: dict[int, ActiveSpan] = {}
        self._stack: list[int] = []
        self._next_id = 1

    def begin(self, name: str, **attrs: Primitive) -> ActiveSpan:
        """Open a span now; its parent is the innermost open span."""
        span = ActiveSpan(
            span_id=self._next_id, name=name, start_s=self.clock.now_s,
            parent_id=self._stack[-1] if self._stack else None,
            attrs=dict(attrs))
        self._next_id += 1
        self._open[span.span_id] = span
        self._stack.append(span.span_id)
        return span

    def end(self, span: ActiveSpan) -> SpanRecord:
        """Close a span now (out-of-order ends are fine)."""
        if self._open.pop(span.span_id, None) is None:
            raise ValueError(f"span {span.span_id} is not open")
        self._stack.remove(span.span_id)
        record = SpanRecord(
            span_id=span.span_id, name=span.name, start_s=span.start_s,
            end_s=self.clock.now_s, parent_id=span.parent_id,
            attrs=span.attrs)
        self.finished.append(record)
        return record

    @contextmanager
    def span(self, name: str, **attrs: Primitive) -> Iterator[ActiveSpan]:
        """Scoped span: closed when the ``with`` block exits."""
        handle = self.begin(name, **attrs)
        try:
            yield handle
        finally:
            self.end(handle)

    def absorb(self, spans: Iterable[SpanRecord]) -> list[SpanRecord]:
        """Adopt finished spans from another tracer, renumbering ids.

        The incoming records carry the *source* tracer's local ids.
        Fresh ids are assigned in the source's begin order (ascending
        local id — the order one shared tracer would have issued them),
        parent references are remapped, and the renumbered records are
        appended to :attr:`finished` preserving the source's completion
        order.  This is the merge step that makes a sharded campaign's
        trace byte-identical to a serial run's
        (:mod:`repro.engine`).
        """
        records = list(spans)
        mapping: dict[int, int] = {}
        for local_id in sorted(r.span_id for r in records):
            mapping[local_id] = self._next_id
            self._next_id += 1
        absorbed = []
        for record in records:
            parent = record.parent_id
            renumbered = SpanRecord(
                span_id=mapping[record.span_id], name=record.name,
                start_s=record.start_s, end_s=record.end_s,
                parent_id=None if parent is None else mapping.get(parent),
                attrs=dict(record.attrs))
            self.finished.append(renumbered)
            absorbed.append(renumbered)
        return absorbed

    @property
    def open_count(self) -> int:
        """Spans currently begun but not ended."""
        return len(self._open)
