"""The telemetry clock is *simulation* time, never wall time.

Every timestamp telemetry ever records — metric events, span edges —
comes from a :class:`SimClock` that only moves when a simulation driver
advances it.  That is the property the whole subsystem hangs on:

* exports are byte-identical across runs of the same seed (reprolint's
  DET001 stays clean — there is no ``time.time()`` anywhere to leak
  host jitter into a trace);
* a recorder shared across trials accumulates a single monotone
  timeline, so per-trial spans stack into a flamegraph-style profile of
  *simulated* seconds.

Drivers own the clock: :class:`repro.resilience.ChaosSimulation`,
:class:`repro.cluster.FailoverSimulation`,
:class:`repro.transport.ReliableLink` and
:class:`repro.network.mac.UplinkSimulator` each advance the recorder's
clock by their own time step as they run.  Leaf components (allocators,
supervisors, schedulers) never touch it — they just record against
whatever instant the driver has established.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotone simulated-seconds counter advanced by sim drivers.

    The clock never consults the host: it starts at ``start_s`` and
    moves only through :meth:`advance` (relative) or :meth:`advance_to`
    (absolute, clamped monotone).  Reading it is a plain attribute
    access, cheap enough for hot loops.
    """

    __slots__ = ("now_s",)

    def __init__(self, start_s: float = 0.0) -> None:
        if start_s < 0.0:
            raise ValueError("clock cannot start before t=0")
        self.now_s: float = float(start_s)

    def advance(self, dt_s: float) -> float:
        """Move forward by ``dt_s`` simulated seconds; returns the new now."""
        if dt_s < 0.0:
            raise ValueError("simulated time cannot run backwards")
        self.now_s += float(dt_s)
        return self.now_s

    def advance_to(self, now_s: float) -> float:
        """Move to an absolute instant, never backwards.

        An ``advance_to`` earlier than the current reading is a no-op
        rather than an error: independent drivers sharing one recorder
        each keep their own local origin, and the shared timeline is
        the running maximum.
        """
        self.now_s = max(self.now_s, float(now_s))
        return self.now_s
