"""The recorder facade every instrumented layer talks to.

Components never import the registry or tracer directly; they take an
optional ``telemetry`` argument typed as :class:`TelemetryRecorder` and
call five verbs — :meth:`~TelemetryRecorder.count`,
:meth:`~TelemetryRecorder.gauge`, :meth:`~TelemetryRecorder.observe`,
:meth:`~TelemetryRecorder.event` and
:meth:`~TelemetryRecorder.span`/:meth:`~TelemetryRecorder.begin`/
:meth:`~TelemetryRecorder.end`.  Two implementations exist:

* :class:`NullRecorder` — the default.  Every verb is an empty method
  and ``enabled`` is False, so an uninstrumented run pays one attribute
  check (or one no-op call) per site and allocates nothing.  Hot loops
  batch their instrumentation behind ``if telemetry.enabled:`` to make
  the disabled cost indistinguishable from the seed code — the
  ``benchmarks/test_telemetry_overhead.py`` gate pins this.
* :class:`Recorder` — the real thing: a
  :class:`~repro.telemetry.metrics.MetricsRegistry`, a
  :class:`~repro.telemetry.tracer.Tracer` and an ordered event log, all
  stamped from one :class:`~repro.telemetry.clock.SimClock`.
"""

from __future__ import annotations

from contextlib import AbstractContextManager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .clock import SimClock
from .metrics import Histogram, MetricsRegistry
from .tracer import ActiveSpan, Primitive, Tracer

if TYPE_CHECKING:  # imported lazily to avoid a snapshot<->recorder cycle
    from .snapshot import TelemetrySnapshot

__all__ = ["EventRecord", "NullRecorder", "Recorder", "TelemetryRecorder"]


@dataclass(frozen=True)
class EventRecord:
    """One point event on the simulated timeline."""

    time_s: float
    name: str
    fields: dict[str, Primitive] = field(default_factory=dict)


class _NullSpan:
    """Shared do-nothing span handle / context manager."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        """No-op."""
        return self

    def __exit__(self, *exc: object) -> None:
        """No-op."""
        return None


_NULL_SPAN = _NullSpan()


class TelemetryRecorder:
    """Interface (and null implementation) of the telemetry verbs.

    The base class *is* the null behaviour: subclass and override to
    actually record.  ``enabled`` lets hot loops skip whole
    instrumentation blocks in one boolean check.
    """

    enabled: bool = False
    __slots__ = ("clock",)

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter ``name`` (no-op here)."""
        return None

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (no-op here)."""
        return None

    def observe(self, name: str, value: float, least: float = 1e-6,
                growth: float = 2.0) -> None:
        """Record ``value`` into the histogram ``name`` (no-op here)."""
        return None

    def event(self, name: str, **fields: Primitive) -> None:
        """Log a point event at the clock's current instant (no-op here)."""
        return None

    def begin(self, name: str, **attrs: Primitive) -> ActiveSpan | _NullSpan:
        """Open a span that a later :meth:`end` closes (no-op here)."""
        return _NULL_SPAN

    def end(self, span: ActiveSpan | _NullSpan) -> None:
        """Close a span opened with :meth:`begin` (no-op here)."""
        return None

    def span(self, name: str, **attrs: Primitive
             ) -> AbstractContextManager[ActiveSpan | _NullSpan]:
        """Context manager tracing one scoped block (no-op here)."""
        return _NULL_SPAN

    def absorb(self, snapshot: TelemetrySnapshot) -> None:
        """Merge a cross-process telemetry snapshot (no-op here)."""
        return None


class NullRecorder(TelemetryRecorder):
    """The explicit zero-overhead recorder — the default everywhere.

    Exists as a distinct class (rather than using the base directly) so
    call sites read ``telemetry or NullRecorder()`` and type checks can
    distinguish "default null" from "custom subclass".
    """

    __slots__ = ()


class Recorder(TelemetryRecorder):
    """A live recorder: metrics + spans + events on one sim clock."""

    enabled = True
    __slots__ = ("metrics", "tracer", "events")

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(clock)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.clock)
        self.events: list[EventRecord] = []

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter ``name`` by ``amount``."""
        self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value``."""
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float, least: float = 1e-6,
                growth: float = 2.0) -> None:
        """Record one observation into the histogram ``name``."""
        self.metrics.histogram(name, least=least, growth=growth) \
            .observe(value)

    def event(self, name: str, **fields: Primitive) -> None:
        """Append a point event stamped with the current sim time."""
        self.events.append(EventRecord(
            time_s=self.clock.now_s, name=name, fields=dict(fields)))

    def begin(self, name: str, **attrs: Primitive) -> ActiveSpan:
        """Open a (possibly cross-step) span at the current sim time."""
        return self.tracer.begin(name, **attrs)

    def end(self, span: ActiveSpan | _NullSpan) -> None:
        """Close a span opened with :meth:`begin`."""
        if isinstance(span, ActiveSpan):
            self.tracer.end(span)

    def span(self, name: str, **attrs: Primitive
             ) -> AbstractContextManager[ActiveSpan | _NullSpan]:
        """Context manager tracing one scoped block in sim time."""
        return self.tracer.span(name, **attrs)

    def absorb(self, snapshot: TelemetrySnapshot) -> None:
        """Merge a :class:`~repro.telemetry.snapshot.TelemetrySnapshot`
        captured from another recorder (typically in a worker process).

        Counters add, gauges take the snapshot's last value, histograms
        merge bucket-by-bucket, spans are renumbered onto this tracer's
        id sequence (:meth:`~repro.telemetry.tracer.Tracer.absorb`),
        events append in recorded order, and the clock advances to the
        snapshot's final instant.  Absorbing shard snapshots in shard
        order therefore reproduces exactly the state one shared
        recorder would have reached serially.
        """
        for name, value in snapshot.counters:
            self.metrics.counter(name).inc(value)
        for name, gauge_value in snapshot.gauges:
            if gauge_value is not None:
                self.metrics.gauge(name).set(gauge_value)
        for spec in snapshot.histograms:
            source = Histogram.from_state(
                str(spec["name"]), least=float(spec["least"]),
                growth=float(spec["growth"]), count=int(spec["count"]),
                total=float(spec["total"]),
                min_value=spec["min"], max_value=spec["max"],
                bucket_counts={int(i): int(n)
                               for i, n in spec["buckets"].items()})
            self.metrics.histogram(source.name, least=source.least,
                                   growth=source.growth).absorb(source)
        self.tracer.absorb(snapshot.span_records())
        self.events.extend(snapshot.event_records())
        self.clock.advance_to(snapshot.clock_s)
