"""Summarise a telemetry export into per-subsystem tables.

The ``python -m repro telemetry summarize`` CLI is a thin wrapper over
this module: :func:`load_jsonl` parses an export produced by
:mod:`repro.telemetry.export`, :func:`summarize` groups every record by
its subsystem (the segment before the first dot of the metric/span
name) and :func:`render` prints fixed-width tables — the "where did the
time and the failures go" view the chaos and failover experiments were
missing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["SpanStats", "SubsystemSummary", "TelemetrySummary",
           "load_jsonl", "load_path", "render", "spans_to_collapsed",
           "subsystem_of", "summarize"]


def load_jsonl(text: str) -> list[dict[str, Any]]:
    """Parse a JSONL export back into a list of record dicts.

    Raises ``ValueError`` on malformed lines or a missing ``record``
    discriminator — a truncated artifact should fail loudly, not
    summarise quietly wrong.
    """
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON") from exc
        if not isinstance(record, dict) or "record" not in record:
            raise ValueError(f"line {lineno}: missing 'record' field")
        records.append(record)
    return records


def subsystem_of(name: str) -> str:
    """The grouping key: everything before the first dot."""
    return name.split(".", 1)[0]


@dataclass
class SpanStats:
    """Aggregate over every span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        """Average span duration (0.0 when no spans were recorded)."""
        return self.total_s / self.count if self.count else 0.0

    def add(self, duration_s: float) -> None:
        """Fold one span's duration into the aggregate."""
        self.count += 1
        self.total_s += duration_s
        self.max_s = max(self.max_s, duration_s)


@dataclass
class SubsystemSummary:
    """Everything one subsystem reported."""

    name: str
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float | None] = field(default_factory=dict)
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)
    spans: dict[str, SpanStats] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)


@dataclass
class TelemetrySummary:
    """The whole export, grouped by subsystem."""

    clock_s: float = 0.0
    subsystems: dict[str, SubsystemSummary] = field(default_factory=dict)

    def subsystem(self, name: str) -> SubsystemSummary:
        """Get-or-create one subsystem's bucket."""
        bucket = self.subsystems.get(name)
        if bucket is None:
            bucket = self.subsystems[name] = SubsystemSummary(name=name)
        return bucket


def summarize(records: list[dict[str, Any]]) -> TelemetrySummary:
    """Fold parsed JSONL records into a :class:`TelemetrySummary`."""
    summary = TelemetrySummary()
    for record in records:
        kind = record["record"]
        if kind == "meta":
            summary.clock_s = float(record.get("clock_s") or 0.0)
            continue
        name = str(record.get("name", ""))
        if not name:
            continue
        bucket = summary.subsystem(subsystem_of(name))
        if kind == "counter":
            bucket.counters[name] = float(record["value"])
        elif kind == "gauge":
            value = record["value"]
            bucket.gauges[name] = None if value is None else float(value)
        elif kind == "histogram":
            count = int(record["count"])
            total = float(record["sum"])
            bucket.histograms[name] = {
                "count": count,
                "sum": total,
                "mean": total / count if count else 0.0,
                "min": record.get("min"),
                "max": record.get("max"),
            }
        elif kind == "span":
            stats = bucket.spans.get(name)
            if stats is None:
                stats = bucket.spans[name] = SpanStats(name=name)
            stats.add(float(record["end_s"]) - float(record["start_s"]))
        elif kind == "event":
            bucket.events[name] = bucket.events.get(name, 0) + 1
    return summary


def _fmt(value: float | None) -> str:
    """Compact numeric cell: ints stay ints, floats get 6 sig figs."""
    if value is None:
        return "-"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render(summary: TelemetrySummary) -> str:
    """Fixed-width per-subsystem tables for the terminal."""
    lines = [f"telemetry summary ({summary.clock_s:.6g} simulated s, "
             f"{len(summary.subsystems)} subsystem(s))"]
    for name in sorted(summary.subsystems):
        bucket = summary.subsystems[name]
        lines.append("")
        lines.append(f"== {name} " + "=" * max(1, 58 - len(name)))
        if bucket.counters:
            lines.append("  counters")
            for metric in sorted(bucket.counters):
                lines.append(f"    {metric:<42} "
                             f"{_fmt(bucket.counters[metric]):>12}")
        if bucket.gauges:
            lines.append("  gauges")
            for metric in sorted(bucket.gauges):
                lines.append(f"    {metric:<42} "
                             f"{_fmt(bucket.gauges[metric]):>12}")
        if bucket.histograms:
            lines.append("  histograms"
                         + " " * 22 + f"{'count':>8} {'mean':>10} "
                         f"{'min':>10} {'max':>10}")
            for metric in sorted(bucket.histograms):
                h = bucket.histograms[metric]
                lines.append(
                    f"    {metric:<28} {_fmt(h['count']):>8} "
                    f"{_fmt(h['mean']):>10} {_fmt(h['min']):>10} "
                    f"{_fmt(h['max']):>10}")
        if bucket.spans:
            lines.append("  spans" + " " * 27
                         + f"{'count':>8} {'total_s':>10} "
                         f"{'mean_s':>10} {'max_s':>10}")
            for metric in sorted(bucket.spans):
                s = bucket.spans[metric]
                lines.append(
                    f"    {metric:<28} {s.count:>8} "
                    f"{_fmt(s.total_s):>10} {_fmt(s.mean_s):>10} "
                    f"{_fmt(s.max_s):>10}")
        if bucket.events:
            lines.append("  events")
            for metric in sorted(bucket.events):
                lines.append(f"    {metric:<42} "
                             f"{bucket.events[metric]:>12}")
    return "\n".join(lines)


def spans_to_collapsed(records: list[dict[str, Any]]) -> list[str]:
    """Collapsed flamegraph stacks straight from parsed JSONL records.

    The file-based twin of
    :func:`repro.telemetry.export.collapsed_stacks`, for the
    ``telemetry flame`` CLI which only has the export to work from.
    """
    from .tracer import SpanRecord

    spans = [SpanRecord(span_id=int(r["id"]), name=str(r["name"]),
                        start_s=float(r["start_s"]),
                        end_s=float(r["end_s"]),
                        parent_id=(None if r.get("parent") is None
                                   else int(r["parent"])),
                        attrs=dict(r.get("attrs") or {}))
             for r in records if r["record"] == "span"]
    from .export import collapsed_stacks

    return collapsed_stacks(spans)


def load_path(path: str | Path) -> list[dict[str, Any]]:
    """Read and parse one JSONL export file."""
    return load_jsonl(Path(path).read_text(encoding="utf-8"))
