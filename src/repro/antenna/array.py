"""Uniform linear arrays and array-factor math.

All angles are azimuth angles theta [rad] measured from the array's
broadside (boresight).  Element n sits at position ``n * spacing`` along
the array axis, so the phase advance toward direction theta is
``2*pi/lambda * n * d * sin(theta)`` — the convention used in the paper's
TMA equation (Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import amplitude_to_db, wavelength

__all__ = ["array_factor", "UniformLinearArray"]


def array_factor(theta_rad, weights, spacing_m: float,
                 frequency_hz: float) -> np.ndarray:
    """Complex array factor for arbitrary per-element complex weights.

    Parameters
    ----------
    theta_rad:
        Azimuth angle(s) from broadside [rad].
    weights:
        Complex excitation per element (amplitude and phase).
    spacing_m:
        Inter-element spacing [m].
    frequency_hz:
        Carrier frequency [Hz].

    Returns the complex sum ``sum_n w_n exp(j 2 pi n d sin(theta)/lambda)``.
    """
    theta = np.atleast_1d(np.asarray(theta_rad, dtype=float))
    w = np.asarray(weights, dtype=np.complex128).ravel()
    if w.size == 0:
        raise ValueError("need at least one element weight")
    if spacing_m <= 0:
        raise ValueError("element spacing must be positive")
    lam = wavelength(frequency_hz)
    n = np.arange(w.size)
    phase = 2.0 * np.pi * spacing_m / lam * np.outer(np.sin(theta), n)
    result = np.exp(1j * phase) @ w
    return result if np.ndim(theta_rad) else result[0]


@dataclass(frozen=True)
class UniformLinearArray:
    """A ULA of identical elements with fixed complex excitation.

    Combines the element pattern (pattern multiplication principle) with
    the array factor.  ``field`` returns amplitude normalised so the peak
    over [-pi, pi] is 1.0, making patterns directly comparable to the
    paper's normalised Fig. 8.
    """

    element: object
    num_elements: int
    spacing_m: float
    frequency_hz: float
    weights: np.ndarray = None

    def __post_init__(self):
        if self.num_elements < 1:
            raise ValueError("array needs at least one element")
        if self.spacing_m <= 0:
            raise ValueError("element spacing must be positive")
        w = self.weights
        if w is None:
            w = np.ones(self.num_elements, dtype=np.complex128)
        w = np.asarray(w, dtype=np.complex128).ravel()
        if w.size != self.num_elements:
            raise ValueError("weights length must match num_elements")
        object.__setattr__(self, "weights", w)
        # Precompute normalisation over a fine azimuth grid.
        grid = np.linspace(-np.pi, np.pi, 3601)
        peak = float(np.max(np.abs(self._raw_field(grid))))
        object.__setattr__(self, "_peak", peak if peak > 0 else 1.0)

    def _raw_field(self, theta_rad) -> np.ndarray:
        af = array_factor(theta_rad, self.weights, self.spacing_m,
                          self.frequency_hz)
        return self.element.field(theta_rad) * np.abs(af)

    def field(self, theta_rad) -> np.ndarray:
        """Normalised field amplitude (1.0 at the pattern peak)."""
        return self._raw_field(theta_rad) / self._peak

    def power_db(self, theta_rad) -> np.ndarray:
        """Normalised power pattern [dB relative to the pattern peak]."""
        amp = self.field(theta_rad)
        return amplitude_to_db(np.maximum(amp, 1e-12))

    def steered(self, steer_theta_rad: float) -> UniformLinearArray:
        """Return a copy phased to steer the main lobe to a direction.

        This is what a *phased array* does with its phase shifters; the
        mmX node deliberately avoids it, but the beam-search baselines
        need it.
        """
        lam = wavelength(self.frequency_hz)
        n = np.arange(self.num_elements)
        steer = np.exp(-1j * 2.0 * np.pi * self.spacing_m / lam
                       * n * np.sin(steer_theta_rad))
        return UniformLinearArray(self.element, self.num_elements,
                                  self.spacing_m, self.frequency_hz,
                                  weights=self.weights * steer)
