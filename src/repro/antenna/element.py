"""Single-antenna element models: patch, dipole and isotropic reference.

Patterns are azimuth cuts (the plane the paper's Fig. 8 measures): a
function of angle theta [rad] measured from the element's boresight, and
return *field amplitude* relative to the boresight peak (1.0 at peak).
Power patterns are the square of these amplitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import amplitude_to_db, db_to_amplitude

__all__ = ["PatchElement", "DipoleElement", "IsotropicElement"]


@dataclass(frozen=True)
class PatchElement:
    """Microstrip patch: broad forward lobe, weak back lobe.

    The analytic approximation for a patch cut is ``cos(theta)^q`` over
    the forward hemisphere.  ``q = 1`` is the textbook E-plane shape;
    the azimuth (H-plane) cut of a fabricated patch is broader, and the
    paper's measured Fig. 8 pattern keeps useful gain out to the ±60°
    field-of-view edge, so the default is ``q = 0.5``.  ``back_lobe_db``
    sets the rear leakage floor (typical for RO4835 boards).
    """

    back_lobe_db: float = -20.0
    exponent: float = 1.0

    def field(self, theta_rad) -> np.ndarray:
        """Field amplitude at azimuth angle(s) theta from boresight."""
        theta = np.asarray(theta_rad, dtype=float)
        cos = np.cos(theta)
        forward = np.where(cos > 0.0, np.power(np.maximum(cos, 0.0),
                                               self.exponent), 0.0)
        floor = db_to_amplitude(self.back_lobe_db)
        return np.maximum(forward, floor)

    def power_db(self, theta_rad) -> np.ndarray:
        """Power pattern [dB relative to peak]."""
        amp = self.field(theta_rad)
        return amplitude_to_db(amp)


@dataclass(frozen=True)
class DipoleElement:
    """The AP's dipole: 5 dBi gain, 62 deg 3-dB beamwidth (section 8.2).

    Modelled as a Gaussian-shaped main lobe in dB — the standard
    engineering fit for a measured single-lobe pattern — with a -15 dB
    floor outside the lobe.
    """

    gain_dbi: float = 5.0
    beamwidth_deg: float = 62.0
    floor_db: float = -15.0

    def power_db(self, theta_rad) -> np.ndarray:
        """Power pattern [dB relative to peak] with Gaussian main lobe."""
        theta_deg = np.degrees(np.asarray(theta_rad, dtype=float))
        # Gaussian lobe: -3 dB at +-beamwidth/2.
        lobe = -3.0 * (2.0 * theta_deg / self.beamwidth_deg) ** 2
        return np.maximum(lobe, self.floor_db)

    def gain_dbi_at(self, theta_rad) -> np.ndarray:
        """Absolute gain [dBi] including the 5 dBi peak."""
        return self.gain_dbi + self.power_db(theta_rad)

    def field(self, theta_rad) -> np.ndarray:
        """Field amplitude relative to the peak."""
        return db_to_amplitude(self.power_db(theta_rad))


@dataclass(frozen=True)
class IsotropicElement:
    """Unit-gain reference element, mostly for tests and WiFi baselines."""

    def field(self, theta_rad) -> np.ndarray:
        """Unit field in every direction."""
        return np.ones_like(np.asarray(theta_rad, dtype=float))

    def power_db(self, theta_rad) -> np.ndarray:
        """0 dB everywhere."""
        return np.zeros_like(np.asarray(theta_rad, dtype=float))
