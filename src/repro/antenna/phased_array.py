"""Conventional phased array — the hardware mmX *avoids* needing.

The beam-searching baselines (section 3, "mmWave Beam Alignment") steer a
phased array across candidate directions.  This model includes the two
costs the paper holds against phased arrays: quantised phase shifters and
per-element power/cost overhead (each element needs one LNA/PA and one
phase shifter — footnote 6 and section 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import linear_to_db, wavelength
from .array import UniformLinearArray
from .element import PatchElement

__all__ = ["PhasedArray"]

# Paper section "Expensive hardware": amplifier $220, phase shifter $150.
_COST_PER_ELEMENT_USD = 220.0 + 150.0
# Section 6: "A phased array with even a small number of antennas
# (8 elements) consumes more than a watt" -> ~0.15 W per element.
_POWER_PER_ELEMENT_W = 0.15


@dataclass
class PhasedArray:
    """An N-element half-wavelength ULA with quantised phase shifters."""

    num_elements: int
    frequency_hz: float
    phase_bits: int = 5
    element: object = None

    def __post_init__(self):
        if self.num_elements < 2:
            raise ValueError("a phased array needs at least 2 elements")
        if self.phase_bits < 1:
            raise ValueError("phase shifters need at least 1 bit")
        if self.element is None:
            self.element = PatchElement()
        self.spacing_m = float(wavelength(self.frequency_hz)) / 2.0

    @property
    def power_consumption_w(self) -> float:
        """Array power draw: one LNA/PA + phase shifter per element."""
        return self.num_elements * _POWER_PER_ELEMENT_W

    @property
    def cost_usd(self) -> float:
        """Array BOM cost from the paper's per-component prices."""
        return self.num_elements * _COST_PER_ELEMENT_USD

    def _quantise(self, phases_rad: np.ndarray) -> np.ndarray:
        step = 2.0 * np.pi / (1 << self.phase_bits)
        return np.round(phases_rad / step) * step

    def steered_pattern(self, steer_theta_rad: float) -> UniformLinearArray:
        """Pattern with the main lobe steered to a direction.

        Phase-shifter quantisation is applied, so very fine steering
        angles collapse onto the nearest realisable beam — one reason
        codebook beam search uses a finite set of directions.
        """
        lam = wavelength(self.frequency_hz)
        n = np.arange(self.num_elements)
        ideal = -2.0 * np.pi * self.spacing_m / lam * n * np.sin(steer_theta_rad)
        weights = np.exp(1j * self._quantise(ideal))
        return UniformLinearArray(self.element, self.num_elements,
                                  self.spacing_m, self.frequency_hz,
                                  weights=weights)

    def codebook_directions_rad(self, num_beams: int | None = None) -> np.ndarray:
        """A uniform-in-sine steering codebook covering ±90°.

        Defaults to ``num_elements`` beams — the resolution limit of the
        array — matching how exhaustive search enumerates beams.
        """
        count = num_beams or self.num_elements
        if count < 1:
            raise ValueError("codebook needs at least one beam")
        sines = np.linspace(-0.9, 0.9, count)
        return np.arcsin(sines)

    def gain_dbi_at(self, steer_theta_rad: float, look_theta_rad) -> np.ndarray:
        """Absolute gain toward ``look_theta`` when steered to ``steer_theta``.

        Peak gain scales as 10*log10(N) + element gain (~5 dBi for a
        patch sub-array), the standard array-gain rule.
        """
        peak = float(linear_to_db(self.num_elements)) + 5.0
        pattern = self.steered_pattern(steer_theta_rad)
        return peak + pattern.power_db(look_theta_rad)
