"""Antenna substrate: element patterns, arrays, and the mmX beam pair.

The mmX node has no phase shifters — just two fixed 2-patch arrays wired
for in-phase (Beam 1, broadside) and anti-phase (Beam 0, split toward
±30°) excitation (sections 6.2 and 8.1).  This subpackage synthesises
those patterns analytically, provides the AP dipole, and implements a
conventional phased array for the beam-searching baselines.
"""

from .array import UniformLinearArray, array_factor
from .element import PatchElement, DipoleElement, IsotropicElement
from .orthogonal import OrthogonalBeamPair, design_mmx_beams
from .patterns import (
    half_power_beamwidth_deg,
    find_null_directions_deg,
    peak_direction_deg,
    pattern_orthogonality_db,
    directivity_dbi,
)
from .phased_array import PhasedArray

__all__ = [
    "DipoleElement",
    "IsotropicElement",
    "OrthogonalBeamPair",
    "PatchElement",
    "PhasedArray",
    "UniformLinearArray",
    "array_factor",
    "design_mmx_beams",
    "directivity_dbi",
    "find_null_directions_deg",
    "half_power_beamwidth_deg",
    "pattern_orthogonality_db",
    "peak_direction_deg",
]
