"""Pattern metrics: beamwidth, nulls, peaks, orthogonality, directivity.

These are the quantities the paper reads off its measured Fig. 8 pattern:
Beam 1 peak at broadside, Beam 0 peaks at ±30°, mutual nulls, and a 40°
azimuth 3-dB beamwidth.  The benchmarks assert exactly these properties.
"""

from __future__ import annotations

import numpy as np

from ..units import db_to_linear, linear_to_db

__all__ = [
    "half_power_beamwidth_deg",
    "find_null_directions_deg",
    "peak_direction_deg",
    "pattern_orthogonality_db",
    "directivity_dbi",
]

_GRID_DEG = np.linspace(-180.0, 180.0, 7201)


def _power_db_on_grid(pattern, grid_deg=None) -> tuple[np.ndarray, np.ndarray]:
    grid = _GRID_DEG if grid_deg is None else np.asarray(grid_deg, dtype=float)
    return grid, np.asarray(pattern.power_db(np.radians(grid)), dtype=float)


def peak_direction_deg(pattern) -> float:
    """Azimuth of the pattern's global maximum [deg].

    When a pattern has several directions tied at the maximum (a
    symmetric array factor repeats its broadside value at ±180°), the
    one closest to boresight is reported.
    """
    grid, p = _power_db_on_grid(pattern)
    peak = float(np.max(p))
    tied = grid[p >= peak - 1e-9]
    return float(tied[int(np.argmin(np.abs(tied)))])


def half_power_beamwidth_deg(pattern, around_deg: float | None = None) -> float:
    """3-dB beamwidth of the lobe containing ``around_deg`` (default: peak).

    Walks outward from the lobe peak until the pattern first drops 3 dB on
    each side and returns the angular distance between those crossings.
    """
    grid, p = _power_db_on_grid(pattern)
    if around_deg is None:
        centre = int(np.argmax(p))
    else:
        # Find the local peak nearest the requested direction.
        idx = int(np.argmin(np.abs(grid - around_deg)))
        centre = idx
        while 0 < centre < p.size - 1:
            if p[centre + 1] > p[centre]:
                centre += 1
            elif p[centre - 1] > p[centre]:
                centre -= 1
            else:
                break
    level = p[centre] - 3.0
    left = centre
    while left > 0 and p[left] > level:
        left -= 1
    right = centre
    while right < p.size - 1 and p[right] > level:
        right += 1
    return float(grid[right] - grid[left])


def find_null_directions_deg(pattern, depth_db: float = -15.0,
                             search_range_deg: tuple[float, float] = (-90, 90),
                             ) -> np.ndarray:
    """Directions of pattern nulls (local minima below ``depth_db``)."""
    lo, hi = search_range_deg
    grid = np.linspace(lo, hi, int((hi - lo) * 20) + 1)
    _, p = _power_db_on_grid(pattern, grid)
    nulls = []
    for i in range(1, p.size - 1):
        if p[i] <= p[i - 1] and p[i] <= p[i + 1] and p[i] < depth_db:
            nulls.append(grid[i])
    return np.asarray(nulls)


def pattern_orthogonality_db(pattern_a, pattern_b) -> float:
    """How deep pattern B is at pattern A's peak direction [dB].

    The paper's orthogonality requirement (section 6.2): "each beam has
    nulls at the main direction of the other".  A strongly negative number
    means the pair is orthogonal in this sense.
    """
    peak_a = peak_direction_deg(pattern_a)
    value = pattern_b.power_db(np.radians(peak_a))
    return float(np.asarray(value))


def directivity_dbi(pattern) -> float:
    """Azimuth-cut directivity estimate [dBi].

    2-D directivity: peak power over the mean power around the full
    azimuth circle.  This understates true 3-D directivity but preserves
    ordering between patterns, which is all the reproduction relies on.
    """
    grid, p = _power_db_on_grid(pattern)
    linear = db_to_linear(p)
    mean = float(np.trapezoid(linear, grid) / (grid[-1] - grid[0]))
    return float(linear_to_db(linear.max() / mean))
