"""The mmX orthogonal beam pair (sections 6.2 and 8.1).

Each mmX node carries two fixed 2-patch arrays behind the SPDT switch:

* **Beam 1** — patches excited in phase: a broadside lobe at 0°.
* **Beam 0** — patches excited with 180° phase difference: a null at
  broadside and two peaks at about ±30°.

The paper adds that "the distance between antenna elements corresponding
to Beam 1 is properly designed to create a null at ±30°, so that the two
beams are orthogonal".  For a 2-element array with spacing ``d``:

* in-phase array factor  ``|2 cos(pi d/lambda sin(theta))|`` — null where
  ``d/lambda sin(theta) = 1/2``;
* anti-phase array factor ``|2 sin(pi d/lambda sin(theta))|`` — null at
  broadside, peak where ``d/lambda sin(theta) = 1/2``.

Choosing ``d = lambda`` for both arrays therefore puts Beam 1's null
exactly on Beam 0's ±30° peaks and vice versa — the mutual-null structure
of Fig. 8 drops out of the geometry with no phase shifters anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import BEAM0_PEAK_DEG, CARRIER_FREQUENCY_HZ
from ..units import amplitude_to_db, db_to_amplitude, wavelength
from .array import UniformLinearArray
from .element import PatchElement

__all__ = ["OrthogonalBeamPair", "design_mmx_beams", "ParametricBeam",
           "measured_mmx_beams"]


@dataclass(frozen=True)
class OrthogonalBeamPair:
    """The node's two switchable beams plus absolute-gain calibration.

    ``peak_gain_dbi`` anchors the normalised patterns to an absolute gain
    so link budgets can use ``gain_dbi(beam, theta)`` directly.  A
    2-element patch array has ~8-9 dBi peak gain; the default of 8 dBi
    together with the VCO's 12 dBm output and ~2 dB switch loss lands on
    the paper's 10 dBm radiated EIRP by construction.
    """

    beam1: object
    beam0: object
    peak_gain_dbi: float = 8.0

    def __post_init__(self):
        # Both beams radiate the same total power (they share the one
        # VCO), but Beam 0 splits its power across two arms.  Patterns
        # come peak-normalised from the array model, so rescale Beam 0
        # to match Beam 1's integrated power — its per-arm peak then
        # sits the physical ~2-3 dB below Beam 1's single lobe, as the
        # measured Fig. 8 shows.
        grid = np.linspace(-np.pi, np.pi, 1441)
        p1 = float(np.trapezoid(self.beam1.field(grid) ** 2, grid))
        p0 = float(np.trapezoid(self.beam0.field(grid) ** 2, grid))
        object.__setattr__(self, "_beam0_scale",
                           np.sqrt(p1 / p0) if p0 > 0 else 1.0)

    def pattern(self, bit: int):
        """The beam selected when the data bit is ``bit`` (0 or 1).

        Either a :class:`~repro.antenna.array.UniformLinearArray`
        (analytic design) or a :class:`ParametricBeam` (measured fit) —
        anything exposing ``field`` / ``power_db``.
        """
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        return self.beam1 if bit == 1 else self.beam0

    def field(self, bit: int, theta_rad) -> np.ndarray:
        """Field amplitude of the selected beam, power-normalised.

        Beam 1's peak is 1.0; Beam 0 carries the equal-power rescale
        (see ``__post_init__``), so its arm peaks come out below 1.0.
        """
        value = self.pattern(bit).field(theta_rad)
        if bit == 0:
            value = value * self._beam0_scale
        return value

    def gain_dbi(self, bit: int, theta_rad) -> np.ndarray:
        """Absolute gain [dBi] of the selected beam toward ``theta_rad``."""
        gain = self.peak_gain_dbi + self.pattern(bit).power_db(theta_rad)
        if bit == 0:
            gain = gain + amplitude_to_db(self._beam0_scale)
        return gain

    def amplitude_gain(self, bit: int, theta_rad) -> np.ndarray:
        """Linear field-amplitude gain (sqrt of power gain) toward a direction."""
        return db_to_amplitude(self.gain_dbi(bit, theta_rad))


@dataclass(frozen=True)
class ParametricBeam:
    """A beam pattern built from Gaussian lobes, notches and a floor.

    This is the standard way to encode a *measured* antenna cut: each
    lobe is a Gaussian in dB (-3 dB at half its width off its centre),
    the overall response never falls below ``floor_db`` (fabricated
    boards always leak), and explicit notches carve the deep nulls the
    measurement shows.
    """

    lobes: tuple[tuple[float, float], ...]
    """(centre_deg, 3dB-width_deg) per lobe."""

    notches: tuple[tuple[float, float, float], ...] = ()
    """(centre_deg, depth_db, width_deg) per forced null."""

    floor_db: float = -18.0
    """Leakage floor relative to the pattern peak."""

    def power_db(self, theta_rad) -> np.ndarray:
        """Power pattern [dB relative to the strongest lobe peak]."""
        theta_deg = np.degrees(np.asarray(theta_rad, dtype=float))

        def wrapped_delta(centre):
            return (theta_deg - centre + 180.0) % 360.0 - 180.0

        value = np.full_like(theta_deg, -np.inf, dtype=float)
        for centre, width in self.lobes:
            delta = wrapped_delta(centre)
            value = np.maximum(value, -3.0 * (2.0 * delta / width) ** 2)
        value = np.maximum(value, self.floor_db)
        for centre, depth, width in self.notches:
            delta = np.abs(wrapped_delta(centre))
            notch = depth * np.exp(-0.5 * (delta / (width / 2.0)) ** 2)
            value = value + notch
        return value

    def field(self, theta_rad) -> np.ndarray:
        """Field amplitude relative to the pattern peak."""
        return db_to_amplitude(self.power_db(theta_rad))


def measured_mmx_beams(peak_gain_dbi: float = 8.0) -> OrthogonalBeamPair:
    """The node beams as a parametric fit to the *measured* Fig. 8 cut.

    Where :func:`design_mmx_beams` derives the patterns from first
    principles (2-element array factors), this fits what the paper
    actually measured in the anechoic chamber: Beam 1 a single 40°-wide
    broadside lobe with deep nulls at ±30°; Beam 0 two 40°-wide arms at
    ±30° with a deep null at broadside; both with a realistic -18 dB
    fabrication floor, and enough gain left at the ±60° field-of-view
    edge that the node's quoted 120° FoV holds.  The links use this
    pair by default — evaluation should run against the measured
    antenna, not its idealisation.
    """
    beam1 = ParametricBeam(
        lobes=((0.0, 40.0),),
        notches=((-30.0, -25.0, 6.0), (30.0, -25.0, 6.0)),
    )
    beam0 = ParametricBeam(
        lobes=((-30.0, 40.0), (30.0, 40.0)),
        notches=((0.0, -25.0, 6.0),),
    )
    return OrthogonalBeamPair(beam1=beam1, beam0=beam0,
                              peak_gain_dbi=peak_gain_dbi)


def design_mmx_beams(frequency_hz: float = CARRIER_FREQUENCY_HZ,
                     peak_gain_dbi: float = 8.0,
                     back_lobe_db: float = -20.0,
                     beam1_element_exponent: float = 2.0,
                     beam0_element_exponent: float = 0.5
                     ) -> OrthogonalBeamPair:
    """Synthesise the mmX node's beam pair at a carrier frequency.

    Spacing is ``lambda`` (see module docstring) so Beam 0 peaks land at
    ±30° (:data:`repro.constants.BEAM0_PEAK_DEG`) and the two patterns
    are mutually nulled.

    The element exponents fit each array's envelope to the *measured*
    Fig. 8 cut: the in-phase array shows a clean single lobe with its
    off-axis response suppressed below about -10 dB (a wide-element
    analytic model would leave a -6 dB grating shoulder at ±55° that
    the fabricated board does not exhibit), while the anti-phase array
    keeps useful gain out to the ±60° field-of-view edge.  Two 2-patch
    arrays with separate feed networks on different board regions do
    not share one element pattern, so fitting them separately is the
    honest way to match the measurement.
    """
    lam = float(wavelength(frequency_hz))
    # d/lambda = 1/(2 sin(peak)) puts the anti-phase peak (and the
    # in-phase null) exactly at the designed +-30 degrees.
    spacing = lam / (2.0 * np.sin(np.radians(BEAM0_PEAK_DEG)))
    beam1 = UniformLinearArray(
        PatchElement(back_lobe_db=back_lobe_db,
                     exponent=beam1_element_exponent),
        num_elements=2, spacing_m=spacing, frequency_hz=frequency_hz,
        weights=np.array([1.0, 1.0]))
    beam0 = UniformLinearArray(
        PatchElement(back_lobe_db=back_lobe_db,
                     exponent=beam0_element_exponent),
        num_elements=2, spacing_m=spacing, frequency_hz=frequency_hz,
        weights=np.array([1.0, -1.0]))
    return OrthogonalBeamPair(beam1=beam1, beam0=beam0,
                              peak_gain_dbi=peak_gain_dbi)
