"""Passive backscatter tags: reflection-coefficient ASK, decoded by
the *unchanged* mmX receiver.

The deep trick (and the reason this fits mmX so naturally): OTAM
already treats modulation as something the **channel** does — the node
radiates a constant carrier and the data bit selects which channel
gain the AP sees.  A backscatter tag is the same abstraction one layer
down: the AP radiates a constant illumination carrier and the data bit
selects which *reflection coefficient* (Γ_on / Γ_off) the tag presents,
so the AP again sees a two-level amplitude keying of its own carrier.

This module makes that correspondence executable: it maps the bistatic
link budget (:func:`repro.core.link.bistatic_breakdown`) into a
synthetic :class:`~repro.channel.ChannelResponse` whose two "beam
gains" are the two reflection states, then drives the stock
:class:`~repro.core.OtamModulator` → envelope/Goertzel
:class:`~repro.core.JointDemodulator` pipeline.  No new receiver code:
the differential test in ``tests/test_energy.py`` pins the measured
BER against the closed-form ASK table at matched SNR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..channel.multipath import ChannelResponse
from ..channel.noise import complex_awgn, noise_power_dbm
from ..core.ask_fsk import AskFskConfig
from ..core.demodulator import DemodResult, JointDemodulator
from ..core.link import BistaticBreakdown, LinkReport, bistatic_breakdown
from ..core.otam import OtamModulator, transmitted_beam_bits
from ..hardware.chains import AccessPointHardware
from ..phy.waveform import Waveform, two_level_waveform
from ..units import db_to_amplitude
from .classes import BACKSCATTER_CLASS, NodeClassSpec, node_class

__all__ = ["BackscatterLink", "backscatter_config"]


def backscatter_config(bitrate_bps: float | None = None) -> AskFskConfig:
    """ASK-FSK numerology scaled to tag switching speeds.

    A passive modulator toggles ~10⁶ times/s, not 10⁸.  The config
    still carries the standard tone plan, but the tag transmits *both*
    bits on the bit-1 tone (a tag has no VCO to nudge, so there is no
    FSK dimension) — the joint demodulator then sees zero tone
    contrast and its ASK branch does all the work.
    """
    rate = float(bitrate_bps) if bitrate_bps is not None \
        else node_class(BACKSCATTER_CLASS).bitrate_bps
    if rate <= 0:
        raise ValueError("bitrate must be positive")
    return AskFskConfig(bit_rate_bps=rate, sample_rate_hz=16.0 * rate)


@dataclass
class BackscatterLink:
    """One AP ↔ passive tag link (bistatic, illumination-powered).

    The active-link mirror of :class:`repro.core.OtamLink`: analytic
    view via :meth:`breakdown`, sample-level view via
    :meth:`simulate_transmission` — both riding the existing PHY.
    """

    downlink_m: float = 2.0
    uplink_m: float | None = None
    ap_eirp_dbm: float = 20.0
    gamma_on: float = 0.8
    gamma_off: float = 0.1
    conversion_loss_db: float = 6.0
    tag_gain_dbi: float = 5.0
    spec: NodeClassSpec = None  # type: ignore[assignment]
    config: AskFskConfig = None  # type: ignore[assignment]
    ap_hardware: AccessPointHardware = field(
        default_factory=AccessPointHardware)

    def __post_init__(self) -> None:
        if self.spec is None:
            self.spec = node_class(BACKSCATTER_CLASS)
        if self.spec.modulation != "backscatter-ask":
            raise ValueError(f"node class {self.spec.name!r} is not a "
                             "backscatter class")
        if self.config is None:
            self.config = backscatter_config(self.spec.bitrate_bps)
        self.modulator = OtamModulator(self.config, eirp_dbm=0.0)
        self.demodulator = JointDemodulator(self.config)

    def breakdown(self, excess_loss_db: float = 0.0) -> BistaticBreakdown:
        """The bistatic AP → tag → AP budget for this geometry."""
        return bistatic_breakdown(
            downlink_m=self.downlink_m,
            uplink_m=self.uplink_m,
            ap_eirp_dbm=self.ap_eirp_dbm,
            tag_gain_dbi=self.tag_gain_dbi,
            gamma_on=self.gamma_on,
            gamma_off=self.gamma_off,
            conversion_loss_db=self.conversion_loss_db,
            excess_loss_db=excess_loss_db,
            bandwidth_hz=self.config.bit_rate_bps,
            noise_figure_db=self.ap_hardware.cascade_noise_figure_db)

    def reflection_channel(self,
                           excess_loss_db: float = 0.0) -> ChannelResponse:
        """The tag's two reflection states as a two-"beam" channel.

        ``h1``/``h0`` carry the *received field amplitudes* of the
        Γ_on/Γ_off states (dBm-referenced, matching the modulator's
        ``eirp_dbm=0`` normalisation), so the OTAM modulator reproduces
        the bistatic budget sample-for-sample.
        """
        bd = self.breakdown(excess_loss_db)
        h_on = 0.0 if bd.on_level_dbm == float("-inf") \
            else float(db_to_amplitude(bd.on_level_dbm))
        h_off = 0.0 if bd.off_level_dbm == float("-inf") \
            else float(db_to_amplitude(bd.off_level_dbm))
        return ChannelResponse(h1=complex(h_on), h0=complex(h_off),
                               paths=())

    def received_with_noise(self, bits,
                            rng: np.random.Generator | None = None,
                            excess_loss_db: float = 0.0) -> Waveform:
        """Noisy AP baseband capture of one tag burst.

        Amplitudes come from the stock OTAM modulator (its
        leak-through model doubles as the tag's residual Γ_off
        reflection), but both bits ride the *same* tone — a tag cannot
        nudge the illuminator's frequency, so the FSK dimension
        carries no information by construction.
        """
        channel = self.reflection_channel(excess_loss_db)
        amp_one, amp_zero = self.modulator.per_bit_amplitudes(channel)
        bit_array = transmitted_beam_bits(bits)
        if bit_array.size == 0:
            raise ValueError("cannot modulate an empty bit sequence")
        clean = two_level_waveform(
            bit_array,
            bit_rate_bps=self.config.bit_rate_bps,
            sample_rate_hz=self.config.sample_rate_hz,
            amp_one=amp_one,
            amp_zero=amp_zero,
            freq_one_hz=self.config.freq_one_hz,
            freq_zero_hz=self.config.freq_one_hz)
        noise_dbm = noise_power_dbm(
            self.config.sample_rate_hz,
            self.ap_hardware.cascade_noise_figure_db)
        noise = complex_awgn(len(clean), noise_dbm, rng)
        return Waveform(clean.samples + noise, clean.sample_rate_hz)

    def demodulate(self, wave: Waveform) -> DemodResult:
        """Decode a capture through the stock envelope/Goertzel path."""
        return self.demodulator.demodulate(wave)

    def simulate_transmission(self, bits,
                              rng: np.random.Generator | None = None,
                              excess_loss_db: float = 0.0) -> LinkReport:
        """Backscatter, receive with noise, demodulate, count errors."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        wave = self.received_with_noise(bits, rng, excess_loss_db)
        demod = self.demodulator.demodulate(wave)
        n = min(bits.size, demod.bits.size)
        errors = int(np.count_nonzero(bits[:n] != demod.bits[:n]))
        errors += abs(bits.size - demod.bits.size)
        ber = errors / bits.size if bits.size else 0.0
        return LinkReport(demod=demod, bit_errors=errors, ber=ber,
                          num_bits=int(bits.size))
