"""Node-class comparison campaign: Table 1, extended down-market.

The paper's Table 1 compares the mmX prototype against WiFi/BLE on
cost, power and rate.  This module runs the same comparison *within*
the mmX family — the always-on active node, the passive backscatter
tag and the harvesting duty-cycled node — and measures what the static
columns cannot: each class's BER through the actual sample-level
receive path, the realised duty cycle, and the fleet-relevant delivery
ratio once energy gating and illumination airtime are accounted for.

Packaged as a :mod:`repro.engine` campaign preset (the
:mod:`repro.admission.saturation` pattern): one hermetic trial per
(class, replicate), every random draw from the trial's own seeded
stream, so serial and supervised-parallel runs are byte-identical at a
fixed master seed — asserted by ``benchmarks/test_energy_nodes.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from typing import Any

import numpy as np

from ..engine import CampaignResult, ResultStore, ShardExecutor, run_campaign
from ..hardware.power import PowerStateProfile
from ..phy.preamble import default_preamble_bits
from ..telemetry import TelemetryRecorder
from .backscatter import BackscatterLink
from .battery import EnergyStateMachine, EnergyStore
from .classes import (
    ACTIVE_CLASS,
    BACKSCATTER_CLASS,
    HARVESTING_CLASS,
    NodeClassSpec,
    node_class,
)
from .harvest import HarvestModel
from .scheduler import DutyCycleScheduler

__all__ = ["CompareConfig", "CompareResult", "compare_trial",
           "default_config", "run_compare", "render"]

DEFAULT_CLASSES = (ACTIVE_CLASS, BACKSCATTER_CLASS, HARVESTING_CLASS)

BURST_AIRTIME_FRACTION = 1e-3
"""Fraction of a transmit *step* the harvesting radio actually keys up.

The machine steps on the harvest timescale (seconds); a 100 Mbps radio
empties a sensor report in microseconds, so within one transmit step
the front end burns its 1.1 W for only this sliver and sleeps the
rest.  The per-state draws handed to the battery machine are
step-averaged accordingly."""


@dataclass(frozen=True)
class CompareConfig:
    """Everything one comparison campaign depends on (all hashable)."""

    classes: tuple[str, ...] = DEFAULT_CLASSES
    replicates: int = 4
    """Independent trials per node class."""

    num_bits: int = 400
    """Bits pushed through the sample-level receive path per trial."""

    active_distance_m: float = 4.0
    """Active/harvesting eval range (the paper's mid-room regime)."""

    backscatter_distance_m: float = 1.0
    """Tag eval range — bistatic loss confines tags to short reach."""

    illumination_duty: float = 0.2
    """Carrier-airtime fraction the AP grants an illuminated tag."""

    frame_bits: int = 2048
    harvest_distance_m: float = 1.0
    sim_steps: int = 400
    dt_s: float = 1.0
    offered_frames_per_step: int = 1
    frame_success_probability: float = 0.98
    capacity_j: float = 50e-3
    wake_threshold_j: float = 10e-3
    reserve_j: float = 1e-3
    max_retries: int = 3

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("need at least one node class")
        for name in self.classes:
            node_class(name)  # raises on unknown names, at config time
        if self.replicates < 1:
            raise ValueError("need at least one replicate")
        if self.num_bits < 1 or self.frame_bits < 1:
            raise ValueError("bit counts must be positive")
        if not 0.0 < self.illumination_duty <= 1.0:
            raise ValueError("illumination duty must be in (0, 1]")
        if self.sim_steps < 1 or self.dt_s <= 0:
            raise ValueError("need a positive simulation horizon")
        if not 0.0 <= self.frame_success_probability <= 1.0:
            raise ValueError("frame success must be a probability")

    @property
    def num_trials(self) -> int:
        """Campaign size: one trial per (class, replicate) pair."""
        return len(self.classes) * self.replicates


def default_config(replicates: int = 4,
                   num_bits: int = 400) -> CompareConfig:
    """The stock comparison (CLI and benchmark entry point)."""
    return CompareConfig(replicates=replicates, num_bits=num_bits)


def _facing_link(distance_m: float):
    """A facing active node at ``distance_m`` in the default lab room."""
    from ..core.link import OtamLink
    from ..sim.environment import default_lab_room
    from ..sim.geometry import Point, angle_of
    from ..sim.placement import Placement

    room = default_lab_room()
    ap = Point(room.width_m / 2.0, 0.15)
    node = Point(room.width_m / 2.0, 0.15 + distance_m)
    placement = Placement(node, angle_of(node, ap), ap, math.pi / 2)
    return OtamLink(placement=placement, room=room)


def burst_profile(spec: NodeClassSpec,
                  airtime_fraction: float = BURST_AIRTIME_FRACTION
                  ) -> PowerStateProfile:
    """Step-averaged draws for a bursty radio on the harvest timescale.

    Scaling every rail by the same airtime fraction (plus the sleep
    floor, which is paid regardless) preserves the profile's
    ``tx >= rx >= idle >= sleep`` ordering.
    """
    if not 0.0 < airtime_fraction <= 1.0:
        raise ValueError("airtime fraction must be in (0, 1]")
    p = spec.power
    return PowerStateProfile(
        tx_w=p.tx_w * airtime_fraction + p.sleep_w,
        rx_w=p.rx_w * airtime_fraction + p.sleep_w,
        idle_w=p.idle_w * airtime_fraction + p.sleep_w,
        sleep_w=p.sleep_w)


def _frame_delivery(ber: float, frame_bits: int) -> float:
    """Uncoded frame-survival probability at a measured BER."""
    return float((1.0 - ber) ** frame_bits)


def _harvesting_metrics(rng: np.random.Generator,
                        config: CompareConfig,
                        spec: NodeClassSpec) -> dict[str, float]:
    """Run the duty-cycle rig for one harvesting replicate."""
    model = HarvestModel()
    series = model.harvest_series(config.harvest_distance_m,
                                  config.sim_steps, rng)
    store = EnergyStore(capacity_j=config.capacity_j, initial_j=0.0)
    machine = EnergyStateMachine(
        store, burst_profile(spec),
        wake_threshold_j=config.wake_threshold_j,
        reserve_j=config.reserve_j,
        frame_energy_j=spec.energy_per_bit_j * config.frame_bits,
        frames_per_step=max(1, config.offered_frames_per_step * 4))
    scheduler = DutyCycleScheduler(
        machine,
        frame_success_probability=config.frame_success_probability,
        max_retries=config.max_retries)
    for i in range(config.sim_steps):
        scheduler.offer(config.offered_frames_per_step)
        scheduler.step(config.dt_s, float(series[i]), rng)
    stats = scheduler.stats()
    assert abs(store.conservation_error_j) < 1e-9
    return {
        "duty_cycle": stats.duty_cycle,
        "delivery_ratio": stats.delivery_ratio,
        "harvested_uw": float(series.mean()) * 1e6,
        "dormant_steps": float(stats.dormant_steps),
    }


def compare_trial(rng: np.random.Generator, index: int, *,
                  config: CompareConfig) -> dict[str, Any]:
    """One (class, replicate) cell of the comparison.

    The flat trial index maps class-major:
    ``classes[index // replicates]``.  Module-level (parameterised
    with :func:`functools.partial`) so it pickles into process-pool
    workers; the registry is read-only from here.
    """
    name = config.classes[index // config.replicates]
    spec = node_class(name)
    # Every real mmX burst leads with the preamble — without it the
    # demodulator's ASK polarity resolution is guessing against random
    # payload and can false-match an inverted pattern.
    bits = np.concatenate([
        default_preamble_bits(),
        rng.integers(0, 2, size=config.num_bits, dtype=np.uint8)])

    if spec.modulation == "backscatter-ask":
        tag = BackscatterLink(downlink_m=config.backscatter_distance_m,
                              spec=spec)
        report = tag.simulate_transmission(bits, rng)
        ber = report.ber
        duty = config.illumination_duty
        delivery = _frame_delivery(ber, config.frame_bits) * duty
        harvested_uw = 0.0
        dormant_steps = 0.0
    else:
        link = _facing_link(config.active_distance_m)
        report = link.simulate_transmission(bits, rng=rng)
        ber = report.ber
        if spec.duty_model == "duty-cycled":
            energy = _harvesting_metrics(rng, config, spec)
            duty = energy["duty_cycle"]
            delivery = energy["delivery_ratio"]
            harvested_uw = energy["harvested_uw"]
            dormant_steps = energy["dormant_steps"]
        else:
            duty = 1.0
            delivery = _frame_delivery(ber, config.frame_bits)
            harvested_uw = 0.0
            dormant_steps = 0.0

    return {
        "cost_usd": spec.cost_usd,
        "active_power_w": spec.active_power_w,
        "energy_per_bit_j": spec.energy_per_bit_j,
        "bitrate_bps": spec.bitrate_bps,
        "range_m": spec.range_m,
        "measured_ber": float(ber),
        "duty_cycle": float(duty),
        "delivery_ratio": float(delivery),
        "harvested_uw": float(harvested_uw),
        "dormant_steps": float(dormant_steps),
    }


@dataclass(frozen=True)
class CompareResult:
    """Per-class aggregates over replicates (Table-1 extension)."""

    config: CompareConfig
    campaign: CampaignResult
    classes: tuple[str, ...]
    cost_usd: np.ndarray
    active_power_w: np.ndarray
    energy_per_bit_j: np.ndarray
    bitrate_bps: np.ndarray
    range_m: np.ndarray
    measured_ber: np.ndarray
    duty_cycle: np.ndarray
    delivery_ratio: np.ndarray
    harvested_uw: np.ndarray

    def rows(self) -> list[dict[str, float | str]]:
        """JSON-friendly per-class rows (CLI ``--json``, CI artifact)."""
        return [
            {"node_class": name,
             "cost_usd": float(self.cost_usd[i]),
             "active_power_w": float(self.active_power_w[i]),
             "energy_per_bit_j": float(self.energy_per_bit_j[i]),
             "bitrate_bps": float(self.bitrate_bps[i]),
             "range_m": float(self.range_m[i]),
             "measured_ber": float(self.measured_ber[i]),
             "duty_cycle": float(self.duty_cycle[i]),
             "delivery_ratio": float(self.delivery_ratio[i]),
             "harvested_uw": float(self.harvested_uw[i])}
            for i, name in enumerate(self.classes)]


def run_compare(config: CompareConfig | None = None,
                master_seed: int = 0,
                executor: ShardExecutor | None = None,
                num_shards: int | None = None,
                store: ResultStore | str | None = None,
                telemetry: TelemetryRecorder | None = None
                ) -> CompareResult:
    """Run the node-class comparison campaign and aggregate the table.

    Serial by default; pass a :class:`~repro.engine.SupervisedPool`
    (or ``ProcessPool``) to fan out, and ``store=`` for crash-safe
    resume.  The aggregate depends only on ``master_seed`` and
    ``config``.
    """
    cfg = config if config is not None else default_config()
    if num_shards is None:
        num_shards = max(1, getattr(executor, "jobs", 1))
    trial_fn = partial(compare_trial, config=cfg)
    outcome = run_campaign(trial_fn, cfg.num_trials,
                           master_seed=master_seed,
                           num_shards=num_shards, executor=executor,
                           store=store, telemetry=telemetry)
    n_classes = len(cfg.classes)

    def per_class(key: str) -> np.ndarray:
        samples = outcome.collect(key).reshape(n_classes, cfg.replicates)
        return np.asarray([row.mean() for row in samples])

    return CompareResult(
        config=cfg,
        campaign=outcome,
        classes=cfg.classes,
        cost_usd=per_class("cost_usd"),
        active_power_w=per_class("active_power_w"),
        energy_per_bit_j=per_class("energy_per_bit_j"),
        bitrate_bps=per_class("bitrate_bps"),
        range_m=per_class("range_m"),
        measured_ber=per_class("measured_ber"),
        duty_cycle=per_class("duty_cycle"),
        delivery_ratio=per_class("delivery_ratio"),
        harvested_uw=per_class("harvested_uw"),
    )


def _si(value: float, unit: str) -> str:
    """Short engineering formatting for the table cells."""
    for scale, prefix in ((1.0, ""), (1e-3, "m"), (1e-6, "µ"),
                          (1e-9, "n"), (1e-12, "p")):
        if abs(value) >= scale:
            return f"{value / scale:.3g} {prefix}{unit}"
    return f"0 {unit}"


def render(result: CompareResult) -> str:
    """The node-class comparison as a Table-1-style text table."""
    from ..experiments.report import format_table

    rows = []
    for i, name in enumerate(result.classes):
        spec = node_class(name)
        rows.append([
            name,
            f"${result.cost_usd[i]:.0f}",
            _si(float(result.active_power_w[i]), "W"),
            _si(float(result.energy_per_bit_j[i]), "J/b"),
            f"{result.bitrate_bps[i] / 1e6:.3g} Mbps",
            f"{result.range_m[i]:.0f} m",
            spec.duty_model,
            f"{result.duty_cycle[i]:.3f}",
            f"{result.delivery_ratio[i]:.3f}",
            f"{result.measured_ber[i]:.2e}",
        ])
    return format_table(
        ["class", "cost", "power", "energy/bit", "bitrate", "range",
         "duty model", "duty cycle", "delivery", "BER"],
        rows,
        title="Node-class comparison — Table 1 extended down-market")
