"""AP-side illumination carrier scheduling for backscatter tags.

A passive tag is only audible while the AP *shines a carrier on it*,
so admitting a tag consumes a resource no FDM slot models: fractions
of the AP's illumination airtime.  The AP has one illumination chain;
every granted tag pre-books a duty fraction of it, and the sum of
grants can never exceed the configured capacity — an AP that granted
130 % of its airtime would simply be promising illumination it cannot
deliver.

:class:`CarrierScheduler` is that budget: a deliberately small,
deterministic ledger (no RNG, no wall clock) that
:class:`repro.node.MmxAccessPoint` and
:class:`repro.admission.AdmissionController` consult as an extra
admission rung.  Grants are **not** part of AP checkpoints: after a
failover the standby AP re-illuminates from its own (empty) budget as
tags re-register, exactly like demodulator state.
"""

from __future__ import annotations

from ..telemetry import NullRecorder, TelemetryRecorder

__all__ = ["CarrierScheduler"]


class CarrierScheduler:
    """Fractional illumination-airtime budget for one AP.

    Parameters
    ----------
    airtime_capacity:
        Total schedulable illumination duty, in ``(0, 1]``.  The
        default reserves nothing for the AP's other duties; real
        deployments cap below 1 so active-node receive windows always
        exist.
    telemetry:
        Optional ``energy.carrier.*`` sink.
    """

    def __init__(self, airtime_capacity: float = 1.0,
                 telemetry: TelemetryRecorder | None = None) -> None:
        if not 0.0 < airtime_capacity <= 1.0:
            raise ValueError("airtime capacity must be in (0, 1]")
        self.airtime_capacity = airtime_capacity
        self.telemetry = telemetry if telemetry is not None \
            else NullRecorder()
        self._grants: dict[int, float] = {}
        self._granted = 0.0

    def __len__(self) -> int:
        return len(self._grants)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._grants

    @property
    def granted_airtime(self) -> float:
        """Sum of all granted duty fractions."""
        return self._granted

    @property
    def free_airtime(self) -> float:
        """Illumination duty still schedulable (never negative)."""
        return max(0.0, self.airtime_capacity - self._granted)

    @property
    def utilization(self) -> float:
        """Granted / capacity, in [0, 1]."""
        return self._granted / self.airtime_capacity

    @property
    def grants(self) -> dict[int, float]:
        """Node → granted duty fraction (a copy)."""
        return dict(self._grants)

    def duty_for(self, node_id: int) -> float:
        """The duty fraction one tag holds."""
        try:
            return self._grants[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} holds no carrier "
                           "grant") from None

    def reserve(self, node_id: int, duty_fraction: float) -> bool:
        """Try to book illumination airtime for one tag.

        Returns ``False`` (and books nothing) when the budget cannot
        take the grant — the admission ladder's "blocked" signal.
        A tolerance-free comparison keeps the ledger deterministic.
        """
        if node_id in self._grants:
            raise ValueError(f"node {node_id} already holds a carrier "
                             "grant")
        if not 0.0 < duty_fraction <= 1.0:
            raise ValueError("duty fraction must be in (0, 1]")
        if self._granted + duty_fraction > self.airtime_capacity:
            if self.telemetry.enabled:
                self.telemetry.count("energy.carrier.rejected")
            return False
        self._grants[node_id] = duty_fraction
        self._granted += duty_fraction
        if self.telemetry.enabled:
            self.telemetry.count("energy.carrier.granted")
            self.telemetry.gauge("energy.carrier.utilization",
                                 self.utilization)
        return True

    def release(self, node_id: int) -> None:
        """Return one tag's airtime to the budget."""
        duty = self._grants.pop(node_id, None)
        if duty is None:
            raise KeyError(f"node {node_id} holds no carrier grant")
        # Re-sum instead of subtracting: float subtraction drift could
        # otherwise leak airtime over long churn runs.
        self._granted = sum(self._grants.values())
        if self.telemetry.enabled:
            self.telemetry.count("energy.carrier.released")
            self.telemetry.gauge("energy.carrier.utilization",
                                 self.utilization)
