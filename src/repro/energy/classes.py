"""The node-class registry: per-class capability descriptors.

The seed codebase bakes one device into every layer: `MmxNode` is
always on, generates its own carrier with a free-running VCO, and
modulates by beam switching (joint ASK-FSK).  The "billions of things"
vision needs tiers below that — passive backscatter tags that reflect
an AP-provided carrier, and harvesting-powered nodes that sleep most
of their lives — and those differ in *capabilities*, not parameters.

This module factors the assumptions into a :class:`NodeClassSpec`
descriptor (power source, carrier source, modulation, duty model, plus
the cost/power/bitrate figures the Table-1 comparison reports) and a
process-wide registry.  The registry is populated once at import time
with the three built-in classes and is **read-only from worker code**:
campaign trials only ever look classes up, so parallel shards see the
same frozen specs and the serial/parallel determinism contract holds.

Built-in classes
----------------
``mmx-active``        the paper's $110 / 1.1 W always-on prototype,
                      re-registered *unchanged* (same hardware ledger
                      Table 1 uses).
``mmx-backscatter``   a passive tag: an RF switch toggling its antenna
                      reflection coefficient keys ASK onto the AP's
                      illumination carrier (Sun et al. survey).
``mmx-harvesting``    the active front-end behind a rectenna + storage
                      capacitor, duty-cycled by the battery state
                      machine (Khan et al. harvesting models).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constants import NODE_EIRP_DBM
from ..hardware.chains import NodeHardware
from ..hardware.power import PowerStateProfile, active_node_profile

__all__ = [
    "ACTIVE_CLASS",
    "BACKSCATTER_CLASS",
    "CARRIER_SOURCES",
    "DUTY_MODELS",
    "HARVESTING_CLASS",
    "MODULATIONS",
    "NodeClassSpec",
    "POWER_SOURCES",
    "node_class",
    "register_node_class",
    "registered_classes",
]

POWER_SOURCES = ("mains", "battery", "harvested", "passive")
"""Where the node's energy comes from.  ``passive`` means the device
consumes only what its logic sips — it has no transmitter to feed."""

CARRIER_SOURCES = ("self", "ap")
"""Who generates the mmWave carrier: the node's own VCO, or the AP
illuminating the node (backscatter)."""

MODULATIONS = ("ask-fsk", "backscatter-ask")
"""How data gets onto the carrier: the paper's joint beam-switched
ASK-FSK, or reflection-coefficient ASK against an external carrier."""

DUTY_MODELS = ("always-on", "duty-cycled", "illuminated")
"""When the node can talk: continuously, when its energy store allows,
or only while the AP shines a carrier on it."""

ACTIVE_CLASS = "mmx-active"
BACKSCATTER_CLASS = "mmx-backscatter"
HARVESTING_CLASS = "mmx-harvesting"


@dataclass(frozen=True)
class NodeClassSpec:
    """Capability descriptor for one class of mmX end device.

    Frozen and hashable so specs can ride inside campaign configs and
    cross process boundaries without aliasing risk.
    """

    name: str
    power_source: str
    carrier_source: str
    modulation: str
    duty_model: str
    cost_usd: float
    power: PowerStateProfile
    bitrate_bps: float
    tx_power_dbm: float
    range_m: float
    carrier_ghz: float = 24.125
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node class needs a name")
        if self.power_source not in POWER_SOURCES:
            raise ValueError(f"unknown power source {self.power_source!r}; "
                             f"choose from {POWER_SOURCES}")
        if self.carrier_source not in CARRIER_SOURCES:
            raise ValueError(f"unknown carrier source "
                             f"{self.carrier_source!r}; "
                             f"choose from {CARRIER_SOURCES}")
        if self.modulation not in MODULATIONS:
            raise ValueError(f"unknown modulation {self.modulation!r}; "
                             f"choose from {MODULATIONS}")
        if self.duty_model not in DUTY_MODELS:
            raise ValueError(f"unknown duty model {self.duty_model!r}; "
                             f"choose from {DUTY_MODELS}")
        if self.cost_usd < 0:
            raise ValueError("cost cannot be negative")
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if self.range_m <= 0:
            raise ValueError("range must be positive")
        if self.carrier_ghz <= 0:
            raise ValueError("carrier frequency must be positive")
        # Capability coherence: a backscatter modulator by definition
        # rides an external carrier, and a self-carrier node cannot be
        # purely passive (its VCO alone burns milliwatts).
        if self.modulation == "backscatter-ask" \
                and self.carrier_source != "ap":
            raise ValueError("backscatter modulation needs an AP carrier")
        if self.power_source == "passive" and self.carrier_source == "self":
            raise ValueError("a passive node cannot generate its own "
                             "carrier")

    @property
    def is_passive(self) -> bool:
        """Whether the device has no transmitter of its own."""
        return self.power_source == "passive"

    @property
    def generates_carrier(self) -> bool:
        """Whether the node radiates its own carrier (vs reflecting)."""
        return self.carrier_source == "self"

    @property
    def needs_illumination(self) -> bool:
        """Whether the AP must spend carrier airtime to hear this node."""
        return self.carrier_source == "ap"

    @property
    def energy_per_bit_j(self) -> float:
        """Transmit-state energy per bit [J] — the Table-1 metric."""
        return self.power.tx_w / self.bitrate_bps

    @property
    def active_power_w(self) -> float:
        """Draw while communicating [W] (tx state of the ledger)."""
        return self.power.tx_w


_REGISTRY: dict[str, NodeClassSpec] = {}


def register_node_class(spec: NodeClassSpec, *,
                        replace: bool = False) -> NodeClassSpec:
    """Register a node class; refuses silent redefinition.

    Registration is an import-time act (module top level), never done
    from campaign trial code — the registry must look identical to
    every worker process for determinism.
    """
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"node class {spec.name!r} is already "
                         "registered (pass replace=True to override)")
    _REGISTRY[spec.name] = spec
    return spec


def node_class(name: str) -> NodeClassSpec:
    """Look up one registered class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown node class {name!r}; "
                       f"registered: {known}") from None


def registered_classes() -> tuple[str, ...]:
    """Names of all registered classes, in registration order."""
    return tuple(_REGISTRY)


def _builtin_active() -> NodeClassSpec:
    """The paper's prototype, re-registered unchanged.

    Every figure is taken from the same :class:`NodeHardware` ledger
    the Table-1 comparison already uses — this descriptor *describes*
    the existing node, it does not re-specify it.
    """
    hw = NodeHardware()
    return NodeClassSpec(
        name=ACTIVE_CLASS,
        power_source="mains",
        carrier_source="self",
        modulation="ask-fsk",
        duty_model="always-on",
        cost_usd=hw.total_cost_usd,
        power=active_node_profile(hw),
        bitrate_bps=hw.max_bitrate_bps,
        tx_power_dbm=hw.radiated_eirp_dbm,
        range_m=18.0,
        description="the paper's always-on active transmitter (§8)",
    )


def _builtin_backscatter() -> NodeClassSpec:
    """A passive mmWave tag (Sun et al. survey, Table 3 platforms).

    The bill of materials is an antenna, an RF switch and control
    logic — a few dollars.  The "tx" state is the switch toggling the
    reflection coefficient (tens of microwatts); the tag radiates no
    carrier of its own, so ``tx_power_dbm`` is the *conversion-loss
    budget* applied to the illumination, not an EIRP (the bistatic
    budget in :mod:`repro.core.link` computes the actual reflected
    level).  Bitrate is envelope-limited, far below the active 100
    Mbps.
    """
    return NodeClassSpec(
        name=BACKSCATTER_CLASS,
        power_source="passive",
        carrier_source="ap",
        modulation="backscatter-ask",
        duty_model="illuminated",
        cost_usd=4.0,
        power=PowerStateProfile(tx_w=30e-6, rx_w=10e-6,
                                idle_w=2e-6, sleep_w=0.5e-6),
        bitrate_bps=1e6,
        tx_power_dbm=-10.0,
        range_m=4.0,
        description="passive reflection-coefficient ASK tag",
    )


def _builtin_harvesting() -> NodeClassSpec:
    """The active front end behind a rectenna and storage capacitor.

    Same radio as ``mmx-active`` (same tx draw, bitrate, EIRP) plus a
    rectenna and power-management IC (Khan et al.), so it costs a few
    dollars more — but it is *duty-cycled*: the battery state machine
    in :mod:`repro.energy.battery` decides when it may transmit.
    """
    hw = NodeHardware()
    active = active_node_profile(hw)
    return NodeClassSpec(
        name=HARVESTING_CLASS,
        power_source="harvested",
        carrier_source="self",
        modulation="ask-fsk",
        duty_model="duty-cycled",
        cost_usd=hw.total_cost_usd + 8.0,
        power=PowerStateProfile(tx_w=active.tx_w, rx_w=active.rx_w,
                                idle_w=active.idle_w, sleep_w=100e-6),
        bitrate_bps=hw.max_bitrate_bps,
        tx_power_dbm=NODE_EIRP_DBM,
        range_m=18.0,
        description="duty-cycled energy-harvesting node",
    )


register_node_class(_builtin_active())
register_node_class(_builtin_backscatter())
register_node_class(_builtin_harvesting())
