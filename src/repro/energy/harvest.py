"""mmWave RF energy harvesting: the Khan et al. closed forms.

Khan et al. ("Millimeter Wave Energy Harvesting", PAPERS.md) model a
rectenna fed by a large-array mmWave transmitter with two closed
forms, both reproduced here:

* the **incident RF power** at the rectenna is plain Friis — the same
  :func:`repro.channel.pathloss.friis_received_power_dbm` budget every
  other link in this repository uses, evaluated at the illuminator's
  EIRP and the rectenna gain;
* the **rectifier** is *nonlinear*: below its sensitivity it harvests
  nothing (the diodes never turn on), above saturation it clips at a
  maximum output, and in between it follows the logistic (sigmoid)
  law of Boshkovska et al. that the survey adopts:

  .. math::

     P_{harv}(P_{in}) \\;=\\;
       \\frac{P_{sat}\\,\\bigl[\\sigma(P_{in}) - \\Omega\\bigr]}
            {1 - \\Omega},
     \\qquad
     \\sigma(P_{in}) = \\frac{1}{1 + e^{-a (P_{in} - b)}},
     \\qquad
     \\Omega = \\frac{1}{1 + e^{a b}}

  with ``a`` the curve steepness [1/W] and ``b`` the turn-on midpoint
  [W].  The subtraction of :math:`\\Omega` pins ``P_harv(0) = 0`` so
  the model never mints energy from a dark rectenna.

Shadowing makes the incident power wander; :meth:`HarvestModel.
harvest_series` draws per-step lognormal shadowing from a *handed-in*
generator (the :mod:`repro.rng` discipline — the model owns no RNG
state), so a harvest trajectory depends only on its seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..channel.pathloss import friis_received_power_dbm
from ..constants import CARRIER_FREQUENCY_HZ
from ..units import FloatArray, dbm_to_milliwatts

__all__ = ["HarvestModel", "rectified_power_w"]


def rectified_power_w(incident_w: float, *, saturation_w: float,
                      steepness_per_w: float, midpoint_w: float) -> float:
    """The nonlinear rectifier closed form (see module docstring).

    Monotone in ``incident_w``, zero at zero input, asymptoting to
    ``saturation_w`` — and never above the incident power itself
    (a rectifier cannot exceed unit efficiency; the parameterisation
    is clamped to enforce it).
    """
    if incident_w < 0:
        raise ValueError("incident power cannot be negative")
    if saturation_w <= 0 or steepness_per_w <= 0 or midpoint_w <= 0:
        raise ValueError("rectifier parameters must be positive")
    sigmoid = 1.0 / (1.0 + math.exp(-steepness_per_w
                                    * (incident_w - midpoint_w)))
    omega = 1.0 / (1.0 + math.exp(steepness_per_w * midpoint_w))
    harvested = saturation_w * (sigmoid - omega) / (1.0 - omega)
    return min(max(harvested, 0.0), incident_w)


@dataclass(frozen=True)
class HarvestModel:
    """One illuminator → rectenna harvesting link.

    Defaults follow the Khan et al. survey's reference scenario: a
    large-array dedicated mmWave power transmitter (40 dBm EIRP — such
    arrays exist precisely because mmWave path loss demands them), a
    high-gain rectenna, and a rectifier that turns on around tens of
    microwatts and saturates near a milliwatt.
    """

    illuminator_eirp_dbm: float = 40.0
    rectenna_gain_dbi: float = 15.0
    frequency_hz: float = CARRIER_FREQUENCY_HZ
    saturation_w: float = 1e-3
    steepness_per_w: float = 3.0e4
    midpoint_w: float = 8e-5
    shadowing_sigma_db: float = 2.0
    """Per-step lognormal shadowing spread on the incident power."""

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.saturation_w <= 0 or self.steepness_per_w <= 0 \
                or self.midpoint_w <= 0:
            raise ValueError("rectifier parameters must be positive")
        if self.shadowing_sigma_db < 0:
            raise ValueError("shadowing spread cannot be negative")

    def incident_power_dbm(self, distance_m: float) -> float:
        """Friis incident RF power [dBm] at the rectenna."""
        return float(friis_received_power_dbm(
            eirp_dbm=self.illuminator_eirp_dbm,
            rx_gain_dbi=self.rectenna_gain_dbi,
            distance_m=distance_m,
            frequency_hz=self.frequency_hz))

    def harvested_power_w(self, distance_m: float,
                          shadowing_db: float = 0.0) -> float:
        """Mean rectified DC power [W] at a range (+ optional shadow)."""
        incident_dbm = self.incident_power_dbm(distance_m) + shadowing_db
        incident_w = float(dbm_to_milliwatts(incident_dbm)) * 1e-3
        return rectified_power_w(incident_w,
                                 saturation_w=self.saturation_w,
                                 steepness_per_w=self.steepness_per_w,
                                 midpoint_w=self.midpoint_w)

    def harvest_series(self, distance_m: float, steps: int,
                       rng: np.random.Generator) -> FloatArray:
        """Per-step harvested power [W] with seeded shadowing.

        One lognormal shadowing draw per step on the incident power,
        each pushed through the nonlinear rectifier — so deep shadows
        can starve the rectifier entirely (below sensitivity it
        harvests *nothing*, which is what makes energy outages real
        events rather than proportional dips).
        """
        if steps < 0:
            raise ValueError("step count cannot be negative")
        shadows = rng.normal(0.0, self.shadowing_sigma_db, size=steps) \
            if self.shadowing_sigma_db > 0 else np.zeros(steps)
        out = np.empty(steps, dtype=np.float64)
        for i in range(steps):
            out[i] = self.harvested_power_w(distance_m,
                                            shadowing_db=float(shadows[i]))
        return out
