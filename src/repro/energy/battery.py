"""The energy store and the harvest → charge → wake → transmit → sleep
state machine that duty-cycles a harvesting-powered node.

Two invariants rule this module and are property-tested in
``tests/test_energy.py``:

* **energy is never negative** — a withdrawal can only take what the
  store holds; a node that runs dry mid-state goes *dormant* instead
  of going into debt;
* **conservation** — at every step,
  ``initial + harvested == level + consumed + spilled`` (spill is
  harvest arriving into a full store), within float tolerance.

The machine is deliberately dumb and deterministic: given the same
per-step harvest series and offered traffic it walks the same states.
All stochastic inputs (harvest shadowing, MAC delivery) are drawn
*outside* by the caller from seeded :mod:`repro.rng` streams, so a
trajectory depends only on its seed — the campaign determinism
contract.

Dormancy semantics matter downstream: a dormant node is **not dead**.
:mod:`repro.resilience` holds its recovery ladder instead of tearing
down the link, and :mod:`repro.cluster` classifies its silence as
``dormant`` rather than counting it toward AP failure suspicion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.power import PowerStateProfile
from ..telemetry import NullRecorder, TelemetryRecorder

__all__ = [
    "ENERGY_STATES",
    "EnergyStateMachine",
    "EnergyStep",
    "EnergyStore",
]

ENERGY_STATES = ("charge", "wake", "transmit", "sleep")
"""The duty cycle, in the order the machine walks it.

``charge``    below the wake threshold: everything gated off except
              the harvester; pays only the sleep draw.
``wake``      the controller boots (idle draw for one step) before the
              radio may key up.
``transmit``  the radio is up and draining the store at the tx draw.
``sleep``     awake-capable but no pending traffic; sleep draw.
"""


@dataclass
class EnergyStore:
    """A capacitor/battery: a bounded, never-negative energy ledger.

    Tracks lifetime totals so conservation can be *checked*, not
    assumed: ``initial + harvested = level + consumed + spilled``.
    """

    capacity_j: float
    initial_j: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= self.initial_j <= self.capacity_j:
            raise ValueError("initial charge must fit the capacity")
        self._level_j = float(self.initial_j)
        self._harvested_j = 0.0
        self._consumed_j = 0.0
        self._spilled_j = 0.0

    @property
    def level_j(self) -> float:
        """Stored energy [J]; always in ``[0, capacity_j]``."""
        return self._level_j

    @property
    def harvested_j(self) -> float:
        """Lifetime energy deposited [J] (spill included)."""
        return self._harvested_j

    @property
    def consumed_j(self) -> float:
        """Lifetime energy withdrawn [J]."""
        return self._consumed_j

    @property
    def spilled_j(self) -> float:
        """Lifetime harvest lost to a full store [J]."""
        return self._spilled_j

    @property
    def conservation_error_j(self) -> float:
        """``initial + harvested - level - consumed - spilled``.

        Zero (to float tolerance) by construction; exposed so tests
        assert it rather than trust it.
        """
        return (self.initial_j + self._harvested_j
                - self._level_j - self._consumed_j - self._spilled_j)

    def deposit(self, amount_j: float) -> float:
        """Harvest in; returns what was *stored* (excess spills)."""
        if amount_j < 0:
            raise ValueError("cannot deposit negative energy")
        stored = min(amount_j, self.capacity_j - self._level_j)
        self._level_j += stored
        self._harvested_j += amount_j
        self._spilled_j += amount_j - stored
        return stored

    def withdraw(self, amount_j: float) -> float:
        """Drain; returns what was actually drawn (never overdrafts)."""
        if amount_j < 0:
            raise ValueError("cannot withdraw negative energy")
        drawn = min(amount_j, self._level_j)
        self._level_j -= drawn
        self._consumed_j += drawn
        return drawn


@dataclass(frozen=True)
class EnergyStep:
    """What one :meth:`EnergyStateMachine.step` did."""

    state: str
    """The state the machine occupied *during* this step."""

    harvested_j: float
    consumed_j: float
    level_j: float
    frames_sent: int
    dormant: bool
    """True while the machine is energy-gated (charging): the node is
    silent but alive — the liveness code the cluster layer consumes."""


class EnergyStateMachine:
    """Walks harvest → charge → wake → transmit → sleep.

    Parameters
    ----------
    store:
        The energy ledger this machine charges and drains.
    profile:
        Per-state draw (:class:`~repro.hardware.power
        .PowerStateProfile`).
    wake_threshold_j:
        Stored energy required before the controller may boot out of
        ``charge`` — the classic harvesting hysteresis upper rail.
    reserve_j:
        Floor below which the machine drops back to ``charge``
        (hysteresis lower rail); must be below the wake threshold.
    frame_energy_j:
        Energy to push one frame (tx draw × frame airtime), *in
        addition to* the tx-state floor draw for the step.
    frames_per_step:
        MAC budget: at most this many frames leave per transmit step.
    telemetry:
        Optional ``energy.*`` recorder (defaults to the null sink).
    """

    def __init__(self, store: EnergyStore, profile: PowerStateProfile, *,
                 wake_threshold_j: float, reserve_j: float = 0.0,
                 frame_energy_j: float = 0.0, frames_per_step: int = 1,
                 telemetry: TelemetryRecorder | None = None) -> None:
        if not 0.0 <= reserve_j < wake_threshold_j:
            raise ValueError("need 0 <= reserve < wake threshold")
        if wake_threshold_j > store.capacity_j:
            raise ValueError("wake threshold cannot exceed capacity")
        if frame_energy_j < 0:
            raise ValueError("frame energy cannot be negative")
        if frames_per_step < 1:
            raise ValueError("need at least one frame per step")
        self.store = store
        self.profile = profile
        self.wake_threshold_j = wake_threshold_j
        self.reserve_j = reserve_j
        self.frame_energy_j = frame_energy_j
        self.frames_per_step = frames_per_step
        self.telemetry = telemetry if telemetry is not None \
            else NullRecorder()
        self.state = "charge" if store.level_j < wake_threshold_j \
            else "sleep"
        self.steps = 0
        self.state_steps: dict[str, int] = {s: 0 for s in ENERGY_STATES}

    @property
    def dormant(self) -> bool:
        """Whether the node is energy-gated (charging) right now."""
        return self.state == "charge"

    def duty_cycle(self) -> float:
        """Fraction of elapsed steps spent in ``transmit``."""
        if self.steps == 0:
            return 0.0
        return self.state_steps["transmit"] / self.steps

    def step(self, dt_s: float, harvest_w: float,
             pending_frames: int = 0) -> EnergyStep:
        """Advance one timestep.

        Harvest is credited first (a rectenna charges regardless of
        state), then the current state's draw is paid, then the
        transition fires.  If the store cannot cover the state's floor
        draw the machine browns out to ``charge`` immediately — energy
        never goes negative.
        """
        if dt_s <= 0:
            raise ValueError("timestep must be positive")
        if harvest_w < 0:
            raise ValueError("harvest power cannot be negative")
        if pending_frames < 0:
            raise ValueError("pending frames cannot be negative")

        harvested = self.store.deposit(harvest_w * dt_s)
        state = self.state
        floor_j = self.profile.energy_j(
            "sleep" if state == "charge" else
            "idle" if state == "wake" else
            "tx" if state == "transmit" else "sleep", dt_s)

        frames_sent = 0
        want_j = floor_j
        if state == "transmit":
            budget = self.store.level_j - self.reserve_j - floor_j
            if budget > 0 and self.frame_energy_j > 0:
                frames_sent = min(pending_frames, self.frames_per_step,
                                  int(budget / self.frame_energy_j))
            elif budget > 0:
                frames_sent = min(pending_frames, self.frames_per_step)
            want_j += frames_sent * self.frame_energy_j
        consumed = self.store.withdraw(want_j)
        browned_out = consumed < want_j - 1e-15

        level = self.store.level_j
        if browned_out or level <= self.reserve_j:
            next_state = "charge"
        elif state == "charge":
            next_state = "wake" if level >= self.wake_threshold_j \
                else "charge"
        elif state == "wake":
            next_state = "transmit" if pending_frames > 0 else "sleep"
        elif state == "transmit":
            next_state = "transmit" if pending_frames - frames_sent > 0 \
                else "sleep"
        else:  # sleep
            next_state = "wake" if pending_frames > 0 else "sleep"

        self.steps += 1
        self.state_steps[state] += 1
        self.telemetry.count("energy.steps")
        self.telemetry.count(f"energy.state.{state}")
        self.telemetry.gauge("energy.level_j", level)
        if frames_sent:
            self.telemetry.count("energy.frames_sent", frames_sent)
        if next_state == "charge" and state != "charge":
            self.telemetry.count("energy.brownouts")
            self.telemetry.event("energy.dormant", state_from=state,
                                 level_j=level)
        self.state = next_state
        return EnergyStep(state=state, harvested_j=harvested,
                          consumed_j=consumed, level_j=level,
                          frames_sent=frames_sent,
                          dormant=next_state == "charge")
