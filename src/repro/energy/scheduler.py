"""Duty-cycle scheduler: the energy state machine meets the MAC.

A harvesting node cannot run the paper's MAC verbatim: a frame that
fails CRC would normally be retransmitted immediately, but an
energy-gated node may be *dormant* when the retry timer fires.  This
scheduler sits between offered traffic and the
:class:`~repro.energy.battery.EnergyStateMachine`:

* new frames and retries queue while the node is dormant — they are
  **deferred, not dropped** (dormant ≠ dead);
* each transmitted frame succeeds or fails against a per-frame
  delivery probability drawn from the *handed-in* seeded generator
  (the :mod:`repro.rng` discipline), failures re-queue up to
  ``max_retries`` and then drop;
* the scheduler reports delivery/retry/drop counts and the realised
  duty cycle, the numbers the outage-survival campaign aggregates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .battery import EnergyStateMachine, EnergyStep

__all__ = ["DutyCycleScheduler", "SchedulerStats"]


@dataclass(frozen=True)
class SchedulerStats:
    """Cumulative MAC outcome of one scheduler run."""

    offered: int
    delivered: int
    retries: int
    dropped: int
    pending: int
    duty_cycle: float
    dormant_steps: int

    @property
    def delivery_ratio(self) -> float:
        """Delivered / offered (1.0 for an idle run)."""
        return self.delivered / self.offered if self.offered else 1.0


class DutyCycleScheduler:
    """Queue + retry policy wrapped around an energy state machine."""

    def __init__(self, machine: EnergyStateMachine, *,
                 frame_success_probability: float = 1.0,
                 max_retries: int = 3,
                 queue_limit: int = 256) -> None:
        if not 0.0 <= frame_success_probability <= 1.0:
            raise ValueError("success probability must be in [0, 1]")
        if max_retries < 0:
            raise ValueError("retry budget cannot be negative")
        if queue_limit < 1:
            raise ValueError("queue must hold at least one frame")
        self.machine = machine
        self.frame_success_probability = frame_success_probability
        self.max_retries = max_retries
        self.queue_limit = queue_limit
        self._queue: deque[int] = deque()  # per-frame attempt counts
        self.offered = 0
        self.delivered = 0
        self.retries = 0
        self.dropped = 0
        self.dormant_steps = 0

    @property
    def pending(self) -> int:
        """Frames waiting (including deferred retries)."""
        return len(self._queue)

    def offer(self, frames: int) -> int:
        """Enqueue new traffic; returns how many frames fit."""
        if frames < 0:
            raise ValueError("cannot offer negative traffic")
        accepted = min(frames, self.queue_limit - len(self._queue))
        self._queue.extend([0] * accepted)
        self.offered += frames
        self.dropped += frames - accepted
        return accepted

    def step(self, dt_s: float, harvest_w: float,
             rng: np.random.Generator) -> EnergyStep:
        """One timestep: advance the machine, resolve MAC outcomes.

        While dormant the machine sees zero pending traffic — retries
        are *held*, not hammered against a radio that cannot key up
        (re-queueing them every step would just melt the retry budget
        during an outage).
        """
        held = self.machine.dormant
        pending = 0 if held else len(self._queue)
        outcome = self.machine.step(dt_s, harvest_w, pending)
        if held:
            self.dormant_steps += 1
        for _ in range(outcome.frames_sent):
            attempts = self._queue.popleft()
            if float(rng.random()) < self.frame_success_probability:
                self.delivered += 1
            elif attempts < self.max_retries:
                self.retries += 1
                self._queue.append(attempts + 1)
            else:
                self.dropped += 1
        return outcome

    def stats(self) -> SchedulerStats:
        """The cumulative MAC outcome so far."""
        return SchedulerStats(offered=self.offered,
                              delivered=self.delivered,
                              retries=self.retries,
                              dropped=self.dropped,
                              pending=len(self._queue),
                              duty_cycle=self.machine.duty_cycle(),
                              dormant_steps=self.dormant_steps)
