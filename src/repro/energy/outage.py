"""Outage-survival chaos preset: a harvesting fleet rides out a
wireless-power blackout without tripping the failure machinery.

The scenario: a fleet of duty-cycled harvesting nodes (one AP pair,
one power illuminator) loses its harvesting field for a window — the
``energy_outage`` fault kind.  Every store drains, every node goes
*dormant*, and the whole point of the energy layer's "dormant ≠ dead"
contract is exercised end to end:

* each node's :class:`~repro.resilience.LinkSupervisor` **holds** its
  recovery ladder (``dormant-hold``) instead of tearing the link down
  and storming the side channel with re-inits;
* the cluster's :class:`~repro.cluster.NodeLivenessTracker` classifies
  the silence as ``dormant``, so the silence-failover path — armed! —
  records **zero false positives** while an entire fleet sleeps;
* when the field returns, stores recharge, schedulers drain their
  deferred queues, and the supervisors log ``dormant-wake``.

Packaged as a :mod:`repro.engine` campaign preset (one hermetic trial
per replicate fleet), byte-identical serial vs supervised-parallel at
a fixed master seed — gated by ``benchmarks/test_energy_nodes.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any

import numpy as np

from ..cluster import Cluster, NodeLivenessTracker
from ..engine import CampaignResult, ResultStore, ShardExecutor, run_campaign
from ..faults import EnergyOutageProcess, FaultInjector
from ..node.access_point import MmxAccessPoint
from ..resilience import LinkSupervisor
from ..telemetry import TelemetryRecorder
from .battery import EnergyStateMachine, EnergyStore
from .classes import HARVESTING_CLASS, node_class
from .compare import _facing_link, burst_profile
from .harvest import HarvestModel
from .scheduler import DutyCycleScheduler

__all__ = ["OutageConfig", "OutageResult", "default_config",
           "outage_trial", "run_outage", "render"]


@dataclass(frozen=True)
class OutageConfig:
    """Everything one outage-survival campaign depends on."""

    nodes: int = 6
    replicates: int = 4
    """Independent fleet trials (each with its own seeded shadowing,
    MAC outcomes and fault schedule)."""

    duration_s: float = 120.0
    dt_s: float = 1.0
    outage_start_s: float = 30.0
    outage_duration_s: float = 30.0
    severity: float = 1.0
    """Fraction of harvested power lost during the window."""

    harvest_distance_m: tuple[float, float] = (0.8, 1.4)
    """Illuminator-to-rectenna range band the fleet is scattered over."""

    link_distance_m: float = 4.0
    demanded_rate_bps: float = 1e6
    """Control-plane spectrum demand per node.  Far below the radio's
    burst bitrate on purpose: a duty-cycled sensor books its *average*
    rate, not the 100 Mbps its bursts momentarily touch."""

    offered_frames_per_step: int = 1
    frame_bits: int = 2048
    frame_success_probability: float = 0.98
    capacity_j: float = 50e-3
    wake_threshold_j: float = 10e-3
    reserve_j: float = 1e-3
    max_retries: int = 3
    liveness_miss_threshold: int = 5

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.replicates < 1:
            raise ValueError("need at least one node and replicate")
        if self.duration_s <= 0 or self.dt_s <= 0:
            raise ValueError("need a positive simulation horizon")
        if self.outage_start_s < 0 or self.outage_duration_s <= 0:
            raise ValueError("need a valid outage window")
        if self.outage_start_s + self.outage_duration_s >= self.duration_s:
            raise ValueError("the outage must end before the run does "
                             "(recovery must be observable)")
        if not 0.0 < self.severity <= 1.0:
            raise ValueError("severity must be in (0, 1]")
        lo, hi = self.harvest_distance_m
        if not 0 < lo <= hi:
            raise ValueError("invalid harvest distance band")

    @property
    def num_trials(self) -> int:
        """Campaign size: one fleet run per replicate."""
        return self.replicates

    @property
    def num_steps(self) -> int:
        """Timesteps per fleet run."""
        return int(round(self.duration_s / self.dt_s))


def default_config(nodes: int = 6, replicates: int = 4) -> OutageConfig:
    """The stock outage drill (CLI and benchmark entry point)."""
    return OutageConfig(nodes=nodes, replicates=replicates)


def outage_trial(rng: np.random.Generator, index: int, *,
                 config: OutageConfig) -> dict[str, Any]:
    """One fleet's ride through one harvesting blackout.

    Module-level (parameterised with :func:`functools.partial`) so it
    pickles into process-pool workers.  Everything stochastic — fault
    seed, per-node ranges, shadowing, MAC coin flips, supervisor
    jitter — derives from the handed-in stream, so the trial depends
    only on its seed.
    """
    spec = node_class(HARVESTING_CLASS)
    injector = FaultInjector(
        [EnergyOutageProcess(start_s=config.outage_start_s,
                             duration_s=config.outage_duration_s,
                             severity=config.severity)],
        master_seed=int(rng.integers(2 ** 31)))
    schedule = injector.schedule(config.duration_s)
    clean = _facing_link(config.link_distance_m).snr_breakdown()

    liveness = NodeLivenessTracker(
        interval_s=config.dt_s,
        miss_threshold=config.liveness_miss_threshold)
    cluster = Cluster([MmxAccessPoint(), MmxAccessPoint()],
                      liveness=liveness, silence_failover=True)

    model = HarvestModel()
    lo, hi = config.harvest_distance_m
    steps = config.num_steps
    machines: list[EnergyStateMachine] = []
    schedulers: list[DutyCycleScheduler] = []
    supervisors: list[LinkSupervisor] = []
    harvests: list[np.ndarray] = []
    for i in range(config.nodes):
        distance = float(rng.uniform(lo, hi))
        harvests.append(np.asarray(
            model.harvest_series(distance, steps, rng)))
        store = EnergyStore(capacity_j=config.capacity_j, initial_j=0.0)
        machine = EnergyStateMachine(
            store, burst_profile(spec),
            wake_threshold_j=config.wake_threshold_j,
            reserve_j=config.reserve_j,
            frame_energy_j=spec.energy_per_bit_j * config.frame_bits,
            frames_per_step=max(1, config.offered_frames_per_step * 4))
        machines.append(machine)
        schedulers.append(DutyCycleScheduler(
            machine,
            frame_success_probability=config.frame_success_probability,
            max_retries=config.max_retries))
        supervisors.append(LinkSupervisor(
            rng=np.random.default_rng(int(rng.integers(2 ** 31)))))
        cluster.register_node(i, config.demanded_rate_bps,
                              preference=[0, 1])

    outage_end_s = config.outage_start_s + config.outage_duration_s
    dormant_node_steps = 0
    brownouts = 0
    recovery_s = [float(config.duration_s - outage_end_s)] * config.nodes
    was_dormant = [False] * config.nodes
    for k in range(steps):
        t = k * config.dt_s
        scale = schedule.disturbance_at(t).harvest_scale
        for i in range(config.nodes):
            schedulers[i].offer(config.offered_frames_per_step)
            outcome = schedulers[i].step(
                config.dt_s, float(harvests[i][k]) * scale, rng)
            if outcome.dormant:
                dormant_node_steps += 1
                cluster.node_dormant(i)
                supervisors[i].step(t, clean, dormant=True)
            else:
                supervisors[i].step(t, clean)
                if outcome.frames_sent:
                    cluster.node_heard(i, t)
                    if t >= outage_end_s \
                            and recovery_s[i] == config.duration_s \
                            - outage_end_s:
                        recovery_s[i] = t - outage_end_s
            if outcome.dormant and not was_dormant[i]:
                brownouts += 1
            was_dormant[i] = outcome.dormant
        cluster.step(t)

    offered = sum(s.offered for s in schedulers)
    delivered = sum(s.delivered for s in schedulers)
    dropped = sum(s.dropped for s in schedulers)
    holds = sum(sum(a.policy == "dormant-hold" for a in s.actions)
                for s in supervisors)
    wakes = sum(sum(a.policy == "dormant-wake" for a in s.actions)
                for s in supervisors)
    reinits = sum(sum(a.policy == "reinit-attempt" for a in s.actions)
                  for s in supervisors)
    return {
        "delivery_ratio": delivered / offered if offered else 1.0,
        "dropped_frames": float(dropped),
        "dormant_fraction": dormant_node_steps / (config.nodes * steps),
        "brownouts": float(brownouts),
        "mean_recovery_s": float(np.mean(recovery_s)),
        "dormant_holds": float(holds),
        "dormant_wakes": float(wakes),
        "reinit_attempts": float(reinits),
        "silence_failovers": float(cluster.silence_failovers),
        "orphaned_nodes": float(len(cluster.orphaned)),
    }


@dataclass(frozen=True)
class OutageResult:
    """Aggregate outcome of the outage-survival drill."""

    config: OutageConfig
    campaign: CampaignResult
    delivery_ratio: float
    dropped_frames: float
    dormant_fraction: float
    brownouts: float
    mean_recovery_s: float
    dormant_holds: float
    dormant_wakes: float
    reinit_attempts: float
    silence_failovers: float
    """Failover false positives across every trial — the number this
    preset exists to pin at zero."""

    orphaned_nodes: float

    def summary(self) -> dict[str, float]:
        """JSON-friendly aggregate (CLI ``--json``, CI artifact)."""
        return {
            "delivery_ratio": self.delivery_ratio,
            "dropped_frames": self.dropped_frames,
            "dormant_fraction": self.dormant_fraction,
            "brownouts": self.brownouts,
            "mean_recovery_s": self.mean_recovery_s,
            "dormant_holds": self.dormant_holds,
            "dormant_wakes": self.dormant_wakes,
            "reinit_attempts": self.reinit_attempts,
            "silence_failovers": self.silence_failovers,
            "orphaned_nodes": self.orphaned_nodes,
        }


def run_outage(config: OutageConfig | None = None,
               master_seed: int = 0,
               executor: ShardExecutor | None = None,
               num_shards: int | None = None,
               store: ResultStore | str | None = None,
               telemetry: TelemetryRecorder | None = None
               ) -> OutageResult:
    """Run the outage-survival campaign and aggregate the drill.

    Serial by default; pass a :class:`~repro.engine.SupervisedPool`
    (or ``ProcessPool``) to fan out.  The aggregate depends only on
    ``master_seed`` and ``config``.
    """
    cfg = config if config is not None else default_config()
    if num_shards is None:
        num_shards = max(1, getattr(executor, "jobs", 1))
    trial_fn = partial(outage_trial, config=cfg)
    outcome = run_campaign(trial_fn, cfg.num_trials,
                           master_seed=master_seed,
                           num_shards=num_shards, executor=executor,
                           store=store, telemetry=telemetry)

    def mean(key: str) -> float:
        return float(outcome.collect(key).mean())

    def total(key: str) -> float:
        return float(outcome.collect(key).sum())

    return OutageResult(
        config=cfg,
        campaign=outcome,
        delivery_ratio=mean("delivery_ratio"),
        dropped_frames=total("dropped_frames"),
        dormant_fraction=mean("dormant_fraction"),
        brownouts=total("brownouts"),
        mean_recovery_s=mean("mean_recovery_s"),
        dormant_holds=total("dormant_holds"),
        dormant_wakes=total("dormant_wakes"),
        reinit_attempts=total("reinit_attempts"),
        silence_failovers=total("silence_failovers"),
        orphaned_nodes=total("orphaned_nodes"),
    )


def render(result: OutageResult) -> str:
    """The outage drill as a text table."""
    from ..experiments.report import format_table

    cfg = result.config
    rows = [
        ["fleet", f"{cfg.nodes} nodes × {cfg.replicates} trials"],
        ["outage window", f"{cfg.outage_start_s:.0f}–"
                          f"{cfg.outage_start_s + cfg.outage_duration_s:.0f}"
                          f" s of {cfg.duration_s:.0f} s "
                          f"(severity {cfg.severity:.2f})"],
        ["delivery ratio", f"{result.delivery_ratio:.3f}"],
        ["dropped frames", f"{result.dropped_frames:.0f}"],
        ["dormant fraction", f"{result.dormant_fraction:.3f}"],
        ["brownouts", f"{result.brownouts:.0f}"],
        ["mean recovery", f"{result.mean_recovery_s:.1f} s"],
        ["dormant holds / wakes", f"{result.dormant_holds:.0f} / "
                                  f"{result.dormant_wakes:.0f}"],
        ["re-init attempts", f"{result.reinit_attempts:.0f}"],
        ["silence-failover false positives",
         f"{result.silence_failovers:.0f}"],
        ["orphaned nodes", f"{result.orphaned_nodes:.0f}"],
    ]
    return format_table(
        ["metric", "value"], rows,
        title="Energy-outage survival — dormant ≠ dead, end to end")
