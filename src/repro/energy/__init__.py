"""Node classes, backscatter, and energy-constrained operation.

The paper's prototype is one device: always on, self-carriered, $110.
The "billions of things" pitch needs tiers below it.  This package
supplies them, layered bottom-up:

* :mod:`~repro.energy.classes` — the node-class registry: per-class
  capability descriptors (power source, carrier source, modulation,
  duty model) with the paper's active node re-registered unchanged;
* :mod:`~repro.energy.backscatter` + :mod:`~repro.energy.carrier` —
  passive reflection-coefficient ASK tags riding the *unchanged*
  envelope/Goertzel receiver (the bistatic budget lives in
  :func:`repro.core.link.bistatic_breakdown`), plus the AP-side
  illumination-airtime ledger admission consults;
* :mod:`~repro.energy.harvest`, :mod:`~repro.energy.battery`,
  :mod:`~repro.energy.scheduler` — the Khan et al. harvesting closed
  forms, the never-negative energy store with its harvest → charge →
  wake → transmit → sleep machine, and the duty-cycle scheduler that
  defers (not drops) MAC traffic while the node is *dormant*;
* :mod:`~repro.energy.compare`, :mod:`~repro.energy.outage` — the
  Table-1-style node-class comparison and the energy-outage survival
  drill, both :mod:`repro.engine` campaign presets with the
  byte-identical serial/parallel contract
  (``python -m repro energy compare`` / ``... energy outage``).
"""

from .backscatter import BackscatterLink, backscatter_config
from .battery import (
    ENERGY_STATES,
    EnergyStateMachine,
    EnergyStep,
    EnergyStore,
)
from .carrier import CarrierScheduler
from .classes import (
    ACTIVE_CLASS,
    BACKSCATTER_CLASS,
    CARRIER_SOURCES,
    DUTY_MODELS,
    HARVESTING_CLASS,
    MODULATIONS,
    NodeClassSpec,
    POWER_SOURCES,
    node_class,
    register_node_class,
    registered_classes,
)
from .compare import (
    CompareConfig,
    CompareResult,
    compare_trial,
    run_compare,
)
from .harvest import HarvestModel, rectified_power_w
from .outage import OutageConfig, OutageResult, outage_trial, run_outage
from .scheduler import DutyCycleScheduler, SchedulerStats

__all__ = [
    "ACTIVE_CLASS",
    "BACKSCATTER_CLASS",
    "BackscatterLink",
    "CARRIER_SOURCES",
    "CarrierScheduler",
    "CompareConfig",
    "CompareResult",
    "DUTY_MODELS",
    "DutyCycleScheduler",
    "ENERGY_STATES",
    "EnergyStateMachine",
    "EnergyStep",
    "EnergyStore",
    "HARVESTING_CLASS",
    "HarvestModel",
    "MODULATIONS",
    "NodeClassSpec",
    "OutageConfig",
    "OutageResult",
    "POWER_SOURCES",
    "SchedulerStats",
    "backscatter_config",
    "compare_trial",
    "node_class",
    "outage_trial",
    "rectified_power_w",
    "register_node_class",
    "registered_classes",
    "run_compare",
    "run_outage",
]
