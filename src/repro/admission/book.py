"""Interval-indexed spectrum bookkeeping for million-node admission.

The seed :class:`repro.network.fdm.FdmAllocator` re-sorted every
occupied interval on every ``allocate`` — O(n log n) per call, so
registration churn over many nodes was quadratic.  The
:class:`SpectrumBook` replaces that scan with an explicit *gap index*:
the free spectrum is stored as a sorted sequence of maximal free
intervals, and first-fit placement walks only the gaps that could
possibly fit the request.

Equivalence, not approximation
------------------------------

The book is **byte-identical** to the seed scan, not merely
order-equivalent.  The original placement loop was::

    cursor = band_low
    for low, high in sorted(occupied):
        if cursor + pitch <= low:
            break
        cursor = max(cursor, high + width * guard_fraction)
    if cursor + width > band_high:
        raise SpectrumExhausted(...)

Every float the book produces reproduces that loop's floats exactly.
Each gap record therefore carries two extra coordinates beyond its
``(start, end)`` extent:

* ``base`` — the highest occupied edge at or left of the gap (``None``
  when no occupied interval exists to the left).  The scan's cursor for
  this gap is ``max(band_low, base + width * guard_fraction)``; carrying
  ``base`` explicitly reproduces the cursor push even for interferer
  blocks that lie *below* the managed band (their guard margin still
  leans into it).
* ``limit`` — the lowest occupied edge at or right of the gap (``None``
  when the gap runs to the true top of the band).  The scan admits a
  placement only when ``cursor + pitch <= limit``; carrying ``limit``
  reproduces the rejection caused by blocks *above* the band, whose
  guard pitch would not fit even though the raw width does.

The structural invariant: gaps are exactly the complement of the union
of committed plan intervals and blocked ranges, clipped to the managed
band.  ``tests/test_admission.py`` proves the equivalence with
hypothesis sequences against a verbatim copy of the seed scan.

Complexity
----------

Gaps and plans live in :class:`_SqrtList` — an order-maintained list of
√n-sized blocks (the classic "SortedList" layout): point queries are
O(√n) worst case with C-speed ``bisect``/``memmove`` constants, far
below the per-op Python overhead at 10⁶ intervals.  First-fit placement
additionally prunes whole blocks through a per-block max-gap-length
vector (a numpy array, scanned in C), so a full band with only
guard-sliver gaps costs microseconds, not a million comparisons.
``benchmarks/test_admission_scaling.py`` gates the resulting ≪10×
per-op growth for 10× nodes.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np

__all__ = ["SpectrumBook"]

_DEFAULT_BLOCK = 64
"""Target records per √n block; splits at 2x, merges below half.

Small on purpose: the two hot paths — the in-block record scan of
:meth:`SpectrumBook.place` and the max-span recompute after a block-max
removal — are both O(block), and at 10⁶ gaps a 64-record block
benchmarks ~6x faster end-to-end than 1024 (the block *count* costs
are vectorised numpy / bisect and stay cheap)."""


def _key0(rec: tuple) -> float:
    return float(rec[0])


class _SqrtList:
    """Sorted tuples keyed by element 0, stored in √n-sized blocks.

    Supports O(√n) insert/remove/floor/ceil/range queries with C-level
    constants (``bisect`` + list ``memmove``).  When ``spans`` is true
    the structure additionally maintains a per-block maximum of
    ``rec[1] - rec[0]`` in a numpy vector so callers can prune whole
    blocks during first-fit scans.
    """

    __slots__ = ("_blocks", "_firsts", "_spans", "_maxlen", "_target")

    def __init__(self, records: list[tuple] | None = None, *,
                 spans: bool = False, target: int = _DEFAULT_BLOCK):
        self._target = target
        self._spans = spans
        recs = sorted(records, key=_key0) if records else []
        self._blocks: list[list[tuple]] = [
            recs[i:i + target] for i in range(0, len(recs), target)]
        self._firsts: list[float] = [b[0][0] for b in self._blocks]
        if spans:
            self._maxlen = np.array(
                [max(r[1] - r[0] for r in b) for b in self._blocks],
                dtype=np.float64)
        else:
            self._maxlen = np.empty(0, dtype=np.float64)

    def __len__(self) -> int:
        return sum(len(b) for b in self._blocks)

    def __iter__(self):
        for b in self._blocks:
            yield from b

    def _locate(self, key: float) -> int:
        i = bisect_right(self._firsts, key) - 1
        return i if i > 0 else 0

    # --- mutation ---------------------------------------------------------

    def insert(self, rec: tuple) -> None:
        if not self._blocks:
            self._blocks.append([rec])
            self._firsts.append(rec[0])
            if self._spans:
                self._maxlen = np.array([rec[1] - rec[0]])
            return
        i = self._locate(rec[0])
        b = self._blocks[i]
        j = bisect_left(b, rec[0], key=_key0)
        b.insert(j, rec)
        if j == 0:
            self._firsts[i] = rec[0]
        if self._spans:
            span = rec[1] - rec[0]
            if span > self._maxlen[i]:
                self._maxlen[i] = span
        if len(b) > 2 * self._target:
            mid = len(b) // 2
            right = b[mid:]
            del b[mid:]
            self._blocks.insert(i + 1, right)
            self._firsts.insert(i + 1, right[0][0])
            if self._spans:
                self._maxlen = np.insert(self._maxlen, i + 1, 0.0)
                self._maxlen[i] = max(r[1] - r[0] for r in b)
                self._maxlen[i + 1] = max(r[1] - r[0] for r in right)

    def remove(self, key: float) -> tuple:
        i = self._locate(key)
        b = self._blocks[i]
        j = bisect_left(b, key, key=_key0)
        if j >= len(b) or b[j][0] != key:
            raise KeyError(f"no record keyed {key!r}")
        rec = b.pop(j)
        if not b:
            del self._blocks[i]
            del self._firsts[i]
            if self._spans:
                self._maxlen = np.delete(self._maxlen, i)
            return rec
        if j == 0:
            self._firsts[i] = b[0][0]
        if self._spans and rec[1] - rec[0] >= self._maxlen[i]:
            self._maxlen[i] = max(r[1] - r[0] for r in b)
        if len(b) < self._target // 2 and i + 1 < len(self._blocks) \
                and len(b) + len(self._blocks[i + 1]) <= self._target:
            b.extend(self._blocks[i + 1])
            del self._blocks[i + 1]
            del self._firsts[i + 1]
            if self._spans:
                self._maxlen[i] = max(self._maxlen[i], self._maxlen[i + 1])
                self._maxlen = np.delete(self._maxlen, i + 1)
        return rec

    def replace(self, key: float, rec: tuple) -> None:
        """Swap the record keyed ``key`` for ``rec`` (same key, same
        extent — only the auxiliary fields may change)."""
        i = self._locate(key)
        b = self._blocks[i]
        j = bisect_left(b, key, key=_key0)
        if j >= len(b) or b[j][0] != key:
            raise KeyError(f"no record keyed {key!r}")
        b[j] = rec

    # --- queries ----------------------------------------------------------

    def floor(self, key: float) -> tuple | None:
        """Greatest record with ``rec[0] <= key``."""
        if not self._blocks:
            return None
        i = self._locate(key)
        b = self._blocks[i]
        j = bisect_right(b, key, key=_key0)
        if j:
            return b[j - 1]
        if i:
            return self._blocks[i - 1][-1]
        return None

    def ceil(self, key: float) -> tuple | None:
        """Least record with ``rec[0] >= key``."""
        if not self._blocks:
            return None
        i = self._locate(key)
        b = self._blocks[i]
        j = bisect_left(b, key, key=_key0)
        if j < len(b):
            return b[j]
        if i + 1 < len(self._blocks):
            return self._blocks[i + 1][0]
        return None

    def overlapping(self, lo: float, hi: float) -> list[tuple]:
        """Records with ``rec[0] < hi and rec[1] > lo``, in key order.

        Correct for disjoint (or at most edge/ulp-overlapping) interval
        sets, where only the immediate predecessor can span ``lo``.
        """
        out: list[tuple] = []
        if not self._blocks:
            return out
        i = self._locate(lo)
        b = self._blocks[i]
        j = bisect_left(b, lo, key=_key0)
        if j > 0:
            r = b[j - 1]
            if r[1] > lo:
                out.append(r)
        elif i > 0:
            r = self._blocks[i - 1][-1]
            if r[1] > lo:
                out.append(r)
        while i < len(self._blocks):
            b = self._blocks[i]
            while j < len(b):
                r = b[j]
                if r[0] >= hi:
                    return out
                if r[1] > lo:
                    out.append(r)
                j += 1
            i += 1
            j = 0
        return out


class SpectrumBook:
    """Gap-indexed free/occupied accounting over one frequency band.

    The book tracks three interval families:

    * **gaps** — maximal free intervals, each ``(start, end, base,
      limit)`` (see the module docstring for ``base``/``limit``);
    * **plans** — committed channel extents ``(low, high, node_id)``;
    * **blocks** — interference-blocked ranges, kept merged/disjoint
      for subtraction (the raw caller-supplied list stays with the
      allocator, whose API exposes it verbatim).

    All methods take the *exact* float edges the caller computed
    (``ChannelPlan.low_hz``/``high_hz``) so comparisons reproduce the
    seed allocator bit-for-bit.
    """

    def __init__(self, band_low_hz: float, band_high_hz: float, *,
                 block_size: int = _DEFAULT_BLOCK):
        if band_high_hz <= band_low_hz:
            raise ValueError("invalid band edges")
        self._low = band_low_hz
        self._high = band_high_hz
        self._block_size = block_size
        self._gaps = _SqrtList(
            [(band_low_hz, band_high_hz, None, None)],
            spans=True, target=block_size)
        self._plans = _SqrtList(target=block_size)
        self._blk_lows: list[float] = []
        self._blk_highs: list[float] = []
        self._free_hz = band_high_hz - band_low_hz

    # --- introspection ----------------------------------------------------

    @property
    def plan_count(self) -> int:
        """Number of committed channel plans."""
        return len(self._plans)

    @property
    def gap_count(self) -> int:
        """Number of maximal free intervals."""
        return len(self._gaps)

    @property
    def free_hz(self) -> float:
        """Total free (unoccupied, unblocked) spectrum in the band."""
        return self._free_hz

    @property
    def largest_gap_hz(self) -> float:
        """Width of the widest free interval (0.0 when the band is full)."""
        ml = self._gaps._maxlen
        return float(ml.max()) if ml.size else 0.0

    def gaps(self) -> list[tuple[float, float]]:
        """Free intervals as ``(start, end)`` pairs (tests/debugging)."""
        return [(g[0], g[1]) for g in self._gaps]

    # --- first-fit placement ----------------------------------------------

    def place(self, width: float, guard_fraction: float) -> float | None:
        """Lowest cursor where a ``width`` channel fits, or ``None``.

        Byte-identical to the seed scan: for each gap the cursor is
        ``max(band_low, base + width * guard_fraction)`` (or
        ``max(band_low, start)`` when nothing is occupied to the left —
        released plan edges can sit an ulp below the band, exactly like
        the seed's implicit ``cursor = band_low`` start), and the fit
        test is the seed's two literal checks: ``cursor + pitch <=
        limit`` (skipped when nothing is occupied to the right) and
        ``cursor + width <= band_high``.  Expressions are evaluated in
        exactly the seed's operand order so every rounding matches.
        """
        pitch = width * (1.0 + guard_fraction)
        wstep = width * guard_fraction
        gi = self._gaps
        ml = gi._maxlen
        if not ml.size:
            return None
        # Conservative block-level prune: a fitting gap satisfies
        # fl(start + width) <= end, hence its recorded span is at least
        # width minus a few ulps of the band magnitude.
        slack = width - 4e-16 * (abs(self._low) + abs(self._high) + width)
        for bi in np.nonzero(ml >= slack)[0]:
            for rec in gi._blocks[bi]:
                start, end, base, limit = rec
                if start + width > end:
                    continue
                cursor = start if base is None else base + wstep
                if cursor < self._low:
                    cursor = self._low
                if limit is None:
                    if cursor + width <= self._high:
                        return float(cursor)
                elif cursor + pitch <= limit \
                        and cursor + width <= self._high:
                    return float(cursor)
        return None

    # --- occupation -------------------------------------------------------

    def _occupy(self, lo: float, hi: float) -> None:
        """Carve ``(lo, hi)`` out of the free space and propagate the
        new occupied edges into the neighbouring gaps' base/limit."""
        gi = self._gaps
        for g in gi.overlapping(lo, hi):
            gi.remove(g[0])
            s, e, base, limit = g
            self._free_hz -= e - s
            if s < lo:
                gi.insert((s, lo, base, lo))
                self._free_hz += lo - s
            if e > hi:
                gi.insert((hi, e, hi, limit))
                self._free_hz += e - hi
        succ = gi.ceil(hi)
        if succ is not None and (succ[2] is None or succ[2] < hi):
            gi.replace(succ[0], (succ[0], succ[1], hi, succ[3]))
        pred = gi.floor(lo)
        if pred is not None and pred[1] <= lo \
                and (pred[3] is None or pred[3] > lo):
            gi.replace(pred[0], (pred[0], pred[1], pred[2], lo))

    def commit(self, node_id: int, low: float, high: float) -> None:
        """Mark a channel plan's extent occupied."""
        self._plans.insert((low, high, node_id))
        self._occupy(low, high)

    def block(self, low: float, high: float) -> None:
        """Mark an interference range unusable (merged into the
        disjoint block set, carved out of the free space)."""
        lows, highs = self._blk_lows, self._blk_highs
        i = bisect_left(lows, low)
        start, end = low, high
        if i > 0 and highs[i - 1] >= low:
            i -= 1
            start = lows[i]
            end = max(end, highs[i])
        j = i
        while j < len(lows) and lows[j] <= end:
            end = max(end, highs[j])
            j += 1
        lows[i:j] = [start]
        highs[i:j] = [end]
        self._occupy(low, high)

    # --- release ----------------------------------------------------------

    def _left_base(self, pos: float) -> float | None:
        """Highest occupied edge at or below ``pos`` (``None`` if the
        spectrum left of ``pos`` is untouched)."""
        best: float | None = None
        i = bisect_left(self._blk_lows, pos) - 1
        if i >= 0 and self._blk_highs[i] <= pos:
            best = self._blk_highs[i]
        rec = self._plans.floor(pos)
        if rec is not None and rec[0] < pos and rec[1] <= pos:
            best = rec[1] if best is None else max(best, rec[1])
        return best

    def _right_limit(self, pos: float) -> float | None:
        """Lowest occupied edge at or above ``pos`` (``None`` if the
        spectrum right of ``pos`` is untouched)."""
        best: float | None = None
        i = bisect_left(self._blk_lows, pos)
        if i < len(self._blk_lows):
            best = self._blk_lows[i]
        rec = self._plans.ceil(pos)
        if rec is not None:
            best = rec[0] if best is None else min(best, rec[0])
        return best

    def _free_piece(self, plo: float, phi: float) -> None:
        """Return ``(plo, phi)`` to the free pool, merging with any
        adjacent gaps and restoring base/limit from the surroundings."""
        gi = self._gaps
        left = gi.floor(plo)
        right = gi.ceil(phi)
        if left is not None and left[1] == plo:
            gi.remove(left[0])
            self._free_hz -= left[1] - left[0]
            start, base = left[0], left[2]
        else:
            start, base = plo, self._left_base(plo)
        if right is not None and right[0] == phi:
            gi.remove(right[0])
            self._free_hz -= right[1] - right[0]
            end, limit = right[1], right[3]
        else:
            end, limit = phi, self._right_limit(phi)
        gi.insert((start, end, base, limit))
        self._free_hz += end - start

    def release(self, node_id: int, low: float, high: float) -> None:
        """Return a plan's extent to the pool, minus whatever blocked
        ranges or (ulp-overlapping) neighbour plans still occupy it."""
        self._plans.remove(low)
        pieces = [(low, high)]
        for blo, bhi in zip(self._blk_lows, self._blk_highs):
            if blo >= high:
                break
            if bhi <= low:
                continue
            pieces = self._subtract(pieces, blo, bhi)
        for rec in self._plans.overlapping(low, high):
            pieces = self._subtract(pieces, rec[0], rec[1])
        for plo, phi in pieces:
            if phi > plo:
                self._free_piece(plo, phi)

    @staticmethod
    def _subtract(pieces: list[tuple[float, float]], lo: float,
                  hi: float) -> list[tuple[float, float]]:
        out: list[tuple[float, float]] = []
        for plo, phi in pieces:
            if hi <= plo or lo >= phi:
                out.append((plo, phi))
                continue
            if plo < lo:
                out.append((plo, lo))
            if hi < phi:
                out.append((hi, phi))
        return out

    # --- blocked-range lifecycle -----------------------------------------

    def clear_blocks(self) -> None:
        """Forget all blocked ranges and rebuild the gap index from the
        committed plans alone (the interferers went away)."""
        self._blk_lows = []
        self._blk_highs = []
        regions: list[tuple[float, float]] = []
        for rec in self._plans:
            if regions and rec[0] <= regions[-1][1]:
                prev = regions[-1]
                regions[-1] = (prev[0], max(prev[1], rec[1]))
            else:
                regions.append((rec[0], rec[1]))
        gaps: list[tuple] = []
        cursor = self._low
        base: float | None = None
        for rlow, rhigh in regions:
            if rlow > cursor:
                gaps.append((cursor, rlow, base, rlow))
            cursor = max(cursor, rhigh)
            base = rhigh if base is None else max(base, rhigh)
        if self._high > cursor:
            gaps.append((cursor, self._high, base, None))
        self._gaps = _SqrtList(gaps, spans=True, target=self._block_size)
        self._free_hz = sum(g[1] - g[0] for g in gaps)

    # --- plan queries -----------------------------------------------------

    def overlapping_plan_ids(self, low: float, high: float) -> list[int]:
        """Node IDs of plans overlapping ``(low, high)``, by frequency."""
        return [int(rec[2]) for rec in self._plans.overlapping(low, high)]
