"""``repro.admission`` — million-node spectrum/SDM admission control.

The paper's MAC hands out spectrum with a first-fit scan and falls back
to TMA spatial reuse when the band fills (§7) — fine for a lab room,
quadratic for "billions of things".  This package turns allocation into
an admission-control engine:

* :class:`SpectrumBook` — interval-indexed free/occupied bookkeeping
  with O(√n)-per-op allocate/release/reallocate, first-fit results
  **byte-identical** to the seed :class:`repro.network.fdm.FdmAllocator`
  scan (which now runs on the book);
* :class:`SdmPacker` — online, harmonic-collision-aware packing of
  arrival bearings into spatial channels, using the exact
  ``count_harmonic_collisions`` predicate;
* :class:`AdmissionController` — the policy ladder (FDM first, SDM
  escalation, reject) with batched re-admission under interferer sweeps
  and the ``admission.*`` telemetry family;
* :func:`run_saturation` — the offered-load saturation study
  (blocking probability vs load) as a deterministic, resumable
  :mod:`repro.engine` campaign preset.

``benchmarks/test_admission_scaling.py`` gates the scale claims (10⁶
nodes, sub-linear per-op growth); ``python -m repro admission
saturate`` runs the study from the CLI.
"""

from .book import SpectrumBook
from .controller import (
    AdmissionController,
    AdmissionDecision,
    ReadmissionReport,
)
from .saturation import (
    SaturationConfig,
    SaturationResult,
    default_config,
    render,
    run_saturation,
    saturation_trial,
)
from .sdm import SdmAssignment, SdmPacker

__all__ = [
    "SpectrumBook",
    "SdmAssignment",
    "SdmPacker",
    "AdmissionController",
    "AdmissionDecision",
    "ReadmissionReport",
    "SaturationConfig",
    "SaturationResult",
    "default_config",
    "render",
    "run_saturation",
    "saturation_trial",
]
