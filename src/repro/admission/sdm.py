"""Harmonic-collision-aware SDM packing (§7b at admission time).

When the FDM band is full, mmX shares channels spatially: the TMA puts
co-channel nodes on different harmonic beams, which works only while
their arrival bearings stay apart.  The existing
:class:`repro.network.sdm_scheduler.AngularSdmScheduler` optimises a
*batch* of placements after the fact; admission control needs the
*online* version — given one arriving node's bearing, find a spatial
channel it can join without creating a harmonic collision, or reject.

:class:`SdmPacker` keeps, per spatial channel, the member bearings in a
sorted ring and admits a node only where both circular neighbours are at
least ``threshold_rad`` away — the exact pairwise predicate
:func:`repro.network.sdm_scheduler.count_harmonic_collisions` counts,
so a packer-built assignment always scores **zero** collisions (a
property test pins this).  Channel choice is deterministic: the
least-loaded compatible channel wins (ties to the lowest index), probing
at most ``max_probes`` candidates — a documented cap that keeps
admission O(log C) instead of O(C) under heavy load.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from dataclasses import dataclass

from ..network.sdm_scheduler import HARMONIC_COLLISION_RAD
from ..sim.geometry import normalize_angle

__all__ = ["SdmAssignment", "SdmPacker"]


@dataclass(frozen=True)
class SdmAssignment:
    """One node's spatial-reuse admission record."""

    node_id: int
    channel_index: int
    """Which spatial (co-frequency) channel the node joined."""

    harmonic_index: int
    """TMA harmonic beam within the channel (lowest unused index)."""

    bearing_rad: float
    """Arrival bearing the admission was decided on."""


class SdmPacker:
    """Online admission of bearings into collision-free spatial channels."""

    def __init__(self, num_channels: int,
                 threshold_rad: float = HARMONIC_COLLISION_RAD,
                 max_probes: int = 16):
        if num_channels < 1:
            raise ValueError("need at least one spatial channel")
        if threshold_rad <= 0:
            raise ValueError("threshold must be positive")
        if max_probes < 1:
            raise ValueError("need at least one probe")
        self.num_channels = num_channels
        self.threshold_rad = threshold_rad
        self.max_probes = max_probes
        self._members: list[list[float]] = [[] for _ in range(num_channels)]
        self._assignments: dict[int, SdmAssignment] = {}
        self._harmonics: list[set[int]] = [set() for _ in range(num_channels)]
        # Lazy min-heap of (member_count, channel_index); stale entries
        # are skipped on pop.  Keeps "least-loaded first" probing
        # O(log C) per admit instead of scanning every channel.
        self._load_heap: list[tuple[int, int]] = [
            (0, c) for c in range(num_channels)]

    def __len__(self) -> int:
        return len(self._assignments)

    def assignment_for(self, node_id: int) -> SdmAssignment:
        """Look up a node's spatial admission record."""
        try:
            return self._assignments[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} holds no SDM slot") from None

    @property
    def assignments(self) -> list[SdmAssignment]:
        """All current spatial admissions, sorted by node id."""
        return [self._assignments[n] for n in sorted(self._assignments)]

    def channel_load(self, channel_index: int) -> int:
        """Number of nodes sharing one spatial channel."""
        return len(self._members[channel_index])

    # --- the collision predicate -----------------------------------------

    def _compatible(self, channel_index: int, bearing: float) -> bool:
        """Whether ``bearing`` keeps the channel collision-free.

        Checks the two circular neighbours in the sorted bearing ring
        with the same ``abs(normalize_angle(a - b)) < threshold``
        predicate ``count_harmonic_collisions`` uses; since members are
        pairwise compatible by induction, the neighbours are the only
        candidates that could collide with the newcomer.
        """
        ring = self._members[channel_index]
        if not ring:
            return True
        i = bisect_left(ring, bearing)
        for neighbour in (ring[i % len(ring)], ring[i - 1]):
            if abs(normalize_angle(bearing - neighbour)) \
                    < self.threshold_rad:
                return False
        return True

    # --- admission --------------------------------------------------------

    def admit(self, node_id: int, bearing_rad: float) -> SdmAssignment | None:
        """Join the least-loaded compatible channel, or return ``None``.

        Probes channels in ``(member_count, channel_index)`` order via
        the lazy load heap, at most ``max_probes`` of them — a bounded,
        deterministic policy: the same admission sequence always packs
        identically.
        """
        if node_id in self._assignments:
            raise ValueError(f"node {node_id} already holds an SDM slot")
        bearing = normalize_angle(float(bearing_rad))
        probed: list[tuple[int, int]] = []
        chosen = -1
        while self._load_heap and len(probed) < self.max_probes:
            load, channel = heapq.heappop(self._load_heap)
            if load != len(self._members[channel]):
                # Stale heap entry; the fresh count was pushed when the
                # channel last changed.
                continue
            probed.append((load, channel))
            if self._compatible(channel, bearing):
                chosen = channel
                break
        for entry in probed:
            heapq.heappush(self._load_heap, entry)
        if chosen < 0:
            return None
        insort(self._members[chosen], bearing)
        heapq.heappush(self._load_heap,
                       (len(self._members[chosen]), chosen))
        used = self._harmonics[chosen]
        harmonic = 0
        while harmonic in used:
            harmonic += 1
        used.add(harmonic)
        assignment = SdmAssignment(node_id=node_id, channel_index=chosen,
                                   harmonic_index=harmonic,
                                   bearing_rad=bearing)
        self._assignments[node_id] = assignment
        return assignment

    def release(self, node_id: int) -> SdmAssignment:
        """Give up a node's spatial slot (returns the old record)."""
        assignment = self._assignments.pop(node_id, None)
        if assignment is None:
            raise KeyError(f"node {node_id} holds no SDM slot")
        ring = self._members[assignment.channel_index]
        i = bisect_left(ring, assignment.bearing_rad)
        # Duplicate bearings cannot coexist (threshold > 0), so the
        # bisect position is exact.
        del ring[i]
        self._harmonics[assignment.channel_index].discard(
            assignment.harmonic_index)
        heapq.heappush(self._load_heap,
                       (len(ring), assignment.channel_index))
        return assignment
