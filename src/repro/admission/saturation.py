"""Offered-load saturation study: blocking probability vs load.

The dense-deployment MAC literature (Shokri-Ghadikolaei et al.,
PAPERS.md) characterises an admission scheme by its *saturation curve*:
drive the band with Poisson arrivals at a controlled offered load and
measure the blocking probability, the rung mix (FDM vs SDM) and the
spectrum occupancy.  This module packages that experiment as a
:mod:`repro.engine` campaign preset:

* one **trial** simulates a full arrival/departure process at one
  offered-load point — every random draw (interarrival, holding time,
  rate class, bearing) comes from the trial's own seeded
  :mod:`repro.rng` stream, so a trial depends only on its seed;
* the **campaign** fans (load × replicate) trials across shards;
  because each trial is hermetic, serial and supervised-parallel runs
  are byte-identical at a fixed master seed (asserted in the tests);
* the aggregate is the blocking-probability-vs-load curve plus per-load
  churn and occupancy statistics, rendered as a table or JSON and
  uploaded as a CI artifact by ``benchmarks/test_admission_scaling.py``.

Offered load is normalised the Erlang way: ``load = 1.0`` means the
expected in-flight bandwidth demand (arrival rate × mean holding time ×
mean provisioned channel width) equals the whole managed band.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from functools import partial
from typing import Any

import numpy as np

from ..engine import CampaignResult, ResultStore, ShardExecutor, run_campaign
from ..network.fdm import FdmAllocator
from ..telemetry import TelemetryRecorder
from .controller import AdmissionController

__all__ = ["SaturationConfig", "SaturationResult", "default_config",
           "saturation_trial", "run_saturation", "render"]

DEFAULT_LOADS = (0.25, 0.5, 1.0, 1.5, 2.5, 4.0, 6.0)
"""Offered-load sweep: below band saturation, through the SDM
escalation regime (load > 1 spills onto spatial reuse), and beyond the
spatial capacity where blocking finally appears."""

DEFAULT_RATE_CLASSES = ((5e5, 0.6), (2e6, 0.3), (8e6, 0.1))
"""(rate_bps, weight) mix — mostly sensors, some cameras (§2)."""


@dataclass(frozen=True)
class SaturationConfig:
    """Everything one saturation campaign depends on (all hashable)."""

    loads: tuple[float, ...] = DEFAULT_LOADS
    replicates: int = 4
    """Independent trials per load point."""

    arrivals: int = 600
    """Poisson arrivals simulated per trial."""

    warmup_fraction: float = 0.25
    """Leading fraction of arrivals excluded from the statistics (the
    empty-band transient would otherwise understate blocking)."""

    mean_hold_s: float = 60.0
    """Mean exponential session holding time."""

    rate_classes: tuple[tuple[float, float], ...] = DEFAULT_RATE_CLASSES
    band_low_hz: float | None = None
    band_high_hz: float | None = None
    """Managed band edges; ``None`` keeps the 24 GHz ISM defaults."""

    bandwidth_per_bps: float = 2.0
    guard_fraction: float = 0.25
    min_channel_hz: float = 1e6
    sdm_channels: int = 8
    sdm_max_probes: int = 16

    def __post_init__(self) -> None:
        if not self.loads or any(lo <= 0 for lo in self.loads):
            raise ValueError("loads must be positive")
        if self.replicates < 1 or self.arrivals < 1:
            raise ValueError("need at least one replicate and arrival")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup fraction must be in [0, 1)")
        if self.mean_hold_s <= 0:
            raise ValueError("holding time must be positive")
        if not self.rate_classes or any(
                r <= 0 or w <= 0 for r, w in self.rate_classes):
            raise ValueError("rate classes need positive rates/weights")

    @property
    def num_trials(self) -> int:
        """Campaign size: one trial per (load, replicate) pair."""
        return len(self.loads) * self.replicates

    def build_controller(self) -> AdmissionController:
        """A fresh (telemetry-free) controller per trial — trials must
        be hermetic for the serial/parallel determinism contract."""
        kwargs: dict[str, Any] = {}
        if self.band_low_hz is not None:
            kwargs["band_low_hz"] = self.band_low_hz
        if self.band_high_hz is not None:
            kwargs["band_high_hz"] = self.band_high_hz
        allocator = FdmAllocator(bandwidth_per_bps=self.bandwidth_per_bps,
                                 guard_fraction=self.guard_fraction,
                                 min_channel_hz=self.min_channel_hz,
                                 **kwargs)
        return AdmissionController(allocator=allocator,
                                   sdm_channels=self.sdm_channels,
                                   sdm_max_probes=self.sdm_max_probes)

    def mean_width_hz(self) -> float:
        """Weight-averaged provisioned channel width (guards excluded)."""
        total_w = sum(w for _, w in self.rate_classes)
        return sum(max(self.min_channel_hz, r * self.bandwidth_per_bps) * w
                   for r, w in self.rate_classes) / total_w


def default_config(loads: tuple[float, ...] = DEFAULT_LOADS,
                   replicates: int = 4,
                   arrivals: int = 600) -> SaturationConfig:
    """The stock sweep (CLI and benchmark entry point)."""
    return SaturationConfig(loads=tuple(float(lo) for lo in loads),
                            replicates=replicates, arrivals=arrivals)


def saturation_trial(rng: np.random.Generator, index: int, *,
                     config: SaturationConfig) -> dict[str, Any]:
    """One offered-load point: Poisson arrivals vs the admission ladder.

    The flat trial index maps load-major:
    ``loads[index // replicates]``.  Module-level (parameterised with
    :func:`functools.partial`) so it pickles into process-pool workers.
    """
    load = float(config.loads[index // config.replicates])
    controller = config.build_controller()
    band_hz = controller.allocator.total_bandwidth_hz
    # Erlang normalisation: at load L the expected in-flight demand is
    # L x band, so lambda = L x band / (E[hold] x E[width]).
    arrival_rate = load * band_hz / (config.mean_hold_s
                                     * config.mean_width_hz())
    rates = np.asarray([r for r, _ in config.rate_classes])
    weights = np.asarray([w for _, w in config.rate_classes])
    cum_weights = np.cumsum(weights / weights.sum())

    departures: list[tuple[float, int]] = []
    warmup = int(config.arrivals * config.warmup_fraction)
    now = 0.0
    offered = blocked = fdm = sdm = churn = 0
    occupancy_sum = fragmentation_sum = 0.0
    for arrival_index in range(config.arrivals):
        now += float(rng.exponential(1.0 / arrival_rate))
        while departures and departures[0][0] <= now:
            _, node_id = heapq.heappop(departures)
            controller.release(node_id)
            churn += 1
        rate = float(rates[int(np.searchsorted(cum_weights,
                                               rng.random()))])
        bearing = float(rng.uniform(-math.pi, math.pi))
        decision = controller.admit(arrival_index, rate,
                                    bearing_rad=bearing)
        churn += 1
        if decision.admitted:
            hold = float(rng.exponential(config.mean_hold_s))
            heapq.heappush(departures, (now + hold, arrival_index))
        if arrival_index >= warmup:
            offered += 1
            if not decision.admitted:
                blocked += 1
            elif decision.state == "fdm":
                fdm += 1
            else:
                sdm += 1
            occupancy_sum += controller.occupancy
            fragmentation_sum += controller.fragmentation
    measured = max(1, offered)
    return {
        "offered_load": load,
        "blocking_probability": blocked / measured,
        "fdm_share": fdm / measured,
        "sdm_share": sdm / measured,
        "mean_occupancy": occupancy_sum / measured,
        "mean_fragmentation": fragmentation_sum / measured,
        "churn_ops": float(churn),
    }


@dataclass(frozen=True)
class SaturationResult:
    """The saturation curve: per-load aggregates over replicates."""

    config: SaturationConfig
    campaign: CampaignResult
    loads: tuple[float, ...]
    blocking_probability: np.ndarray
    fdm_share: np.ndarray
    sdm_share: np.ndarray
    mean_occupancy: np.ndarray
    mean_fragmentation: np.ndarray
    churn_ops: float
    """Total admit/release operations across every trial."""

    def curve(self) -> list[dict[str, float]]:
        """JSON-friendly per-load rows (CLI ``--json``, CI artifact)."""
        return [
            {"offered_load": float(lo),
             "blocking_probability": float(self.blocking_probability[i]),
             "fdm_share": float(self.fdm_share[i]),
             "sdm_share": float(self.sdm_share[i]),
             "mean_occupancy": float(self.mean_occupancy[i]),
             "mean_fragmentation": float(self.mean_fragmentation[i])}
            for i, lo in enumerate(self.loads)]


def run_saturation(config: SaturationConfig | None = None,
                   master_seed: int = 0,
                   executor: ShardExecutor | None = None,
                   num_shards: int | None = None,
                   store: ResultStore | str | None = None,
                   telemetry: TelemetryRecorder | None = None
                   ) -> SaturationResult:
    """Run the saturation campaign and aggregate the curve.

    Serial by default; pass a :class:`~repro.engine.SupervisedPool` (or
    ``ProcessPool``) to fan out, and ``store=`` for crash-safe resume.
    The aggregate depends only on ``master_seed`` and ``config``.
    """
    cfg = config if config is not None else default_config()
    if num_shards is None:
        num_shards = max(1, getattr(executor, "jobs", 1))
    trial_fn = partial(saturation_trial, config=cfg)
    outcome = run_campaign(trial_fn, cfg.num_trials,
                           master_seed=master_seed,
                           num_shards=num_shards, executor=executor,
                           store=store, telemetry=telemetry)
    n_loads = len(cfg.loads)

    def per_load(key: str) -> np.ndarray:
        samples = outcome.collect(key).reshape(n_loads, cfg.replicates)
        return np.asarray([row.mean() for row in samples])

    return SaturationResult(
        config=cfg,
        campaign=outcome,
        loads=cfg.loads,
        blocking_probability=per_load("blocking_probability"),
        fdm_share=per_load("fdm_share"),
        sdm_share=per_load("sdm_share"),
        mean_occupancy=per_load("mean_occupancy"),
        mean_fragmentation=per_load("mean_fragmentation"),
        churn_ops=float(outcome.collect("churn_ops").sum()),
    )


def render(result: SaturationResult) -> str:
    """The saturation curve as a text table."""
    from ..experiments.report import format_table

    rows = [[f"{lo:.2f}",
             f"{result.blocking_probability[i]:.3f}",
             f"{result.fdm_share[i]:.3f}",
             f"{result.sdm_share[i]:.3f}",
             f"{result.mean_occupancy[i]:.3f}",
             f"{result.mean_fragmentation[i]:.3f}"]
            for i, lo in enumerate(result.loads)]
    return format_table(
        ["offered load", "P(block)", "FDM share", "SDM share",
         "occupancy", "fragmentation"],
        rows, title="Admission saturation — blocking vs offered load")
