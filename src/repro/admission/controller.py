"""The admission policy ladder: FDM first, SDM escalation, reject.

Section 7 of the paper describes the ladder implicitly: a node gets a
dedicated FDM channel sized to its rate demand while the band has room
(§7a), shares a channel through TMA spatial reuse when it does not
(§7b), and — at "billions of things" scale — is ultimately *blocked*
when neither works.  :class:`AdmissionController` makes the ladder an
explicit, instrumented object:

* ``admit`` walks the ladder once per arriving node and returns a
  :class:`AdmissionDecision` naming the rung it landed on;
* ``mark_interference`` runs **one batched re-admission pass** for an
  interferer sweep: victims are looked up with an indexed range query,
  all their spectrum is freed first, and only then is each re-admitted
  through the ladder — so early movers cannot steal the slots later
  victims are about to vacate, and no per-node block/probe loop runs;
* every transition feeds the ``admission.*`` telemetry family
  (admitted/blocked/evicted/reallocated counters, occupancy and
  fragmentation gauges) so saturation studies and chaos runs read the
  same export.

SDM's spectral side is modelled deterministically: spatial channel
``i`` of ``C`` maps to the fixed equal slice ``i`` of the managed band.
Real TMA reuse rides on existing FDM carriers; pinning slices instead
keeps SDM admissions independent of FDM churn, which is what makes the
saturation campaign byte-identical across serial and parallel runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..network.fdm import ChannelPlan, FdmAllocator, SpectrumExhausted
from ..network.sdm_scheduler import HARMONIC_COLLISION_RAD
from ..telemetry import NullRecorder, TelemetryRecorder
from .sdm import SdmAssignment, SdmPacker

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from ..energy.carrier import CarrierScheduler

__all__ = ["AdmissionDecision", "ReadmissionReport", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one walk down the admission ladder."""

    node_id: int
    state: str
    """``"fdm"``, ``"sdm"``, or ``"blocked"``."""

    plan: ChannelPlan | None
    """The dedicated (FDM) or shared-slice (SDM) channel, if admitted."""

    sdm: SdmAssignment | None
    """Spatial-reuse bookkeeping when the node landed on the SDM rung."""

    @property
    def admitted(self) -> bool:
        """Whether the node holds any channel at all."""
        return self.state != "blocked"


@dataclass(frozen=True)
class ReadmissionReport:
    """What one batched interference pass did to the hit nodes."""

    victims: tuple[int, ...]
    """Every node whose FDM channel overlapped the interferer."""

    moved: tuple[int, ...]
    """Victims that landed on a fresh FDM channel."""

    spilled_to_sdm: tuple[int, ...]
    """Victims the full band pushed onto the SDM rung."""

    evicted: tuple[int, ...]
    """Victims neither rung could take — they lost their channel."""


class _NodeState:
    """Mutable per-node admission record (slots keep 10⁶ of them cheap)."""

    __slots__ = ("rate_bps", "bearing_rad", "decision",
                 "illumination_duty")

    def __init__(self, rate_bps: float, bearing_rad: float | None,
                 decision: AdmissionDecision,
                 illumination_duty: float | None = None):
        self.rate_bps = rate_bps
        self.bearing_rad = bearing_rad
        self.decision = decision
        self.illumination_duty = illumination_duty


class AdmissionController:
    """FDM-first / SDM-escalation / reject admission over one band."""

    def __init__(self,
                 allocator: FdmAllocator | None = None,
                 sdm_channels: int = 8,
                 sdm_threshold_rad: float = HARMONIC_COLLISION_RAD,
                 sdm_max_probes: int = 16,
                 telemetry: TelemetryRecorder | None = None,
                 carrier: CarrierScheduler | None = None):
        if sdm_channels < 1:
            raise ValueError("need at least one SDM channel")
        self.allocator = allocator if allocator is not None \
            else FdmAllocator()
        self.sdm = SdmPacker(num_channels=sdm_channels,
                             threshold_rad=sdm_threshold_rad,
                             max_probes=sdm_max_probes)
        self.telemetry = telemetry if telemetry is not None \
            else NullRecorder()
        """Sink for the ``admission.*`` family.  The controller never
        advances the recorder's clock — the driver owns time."""
        self.carrier = carrier
        """Optional :class:`repro.energy.CarrierScheduler`.  When set,
        admissions that name an ``illumination_duty`` (backscatter
        tags) must *also* win illumination airtime — a tag consumes
        carrier time, not just spectrum — and blocked airtime unwinds
        the spectrum rung so a rejected tag holds nothing."""
        self._nodes: dict[int, _NodeState] = {}
        self._slice_hz = self.allocator.total_bandwidth_hz / sdm_channels

    # --- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def decision_for(self, node_id: int) -> AdmissionDecision:
        """The current admission state of one node."""
        try:
            return self._nodes[node_id].decision
        except KeyError:
            raise KeyError(f"node {node_id} is not admitted") from None

    @property
    def occupancy(self) -> float:
        """Committed fraction of the band (1 − free/total), in [0, 1]."""
        alloc = self.allocator
        return 1.0 - alloc.free_bandwidth_hz / alloc.total_bandwidth_hz

    @property
    def fragmentation(self) -> float:
        """Free-spectrum shredding metric (see
        :attr:`repro.network.fdm.FdmAllocator.fragmentation`)."""
        return self.allocator.fragmentation

    def counts(self) -> dict[str, int]:
        """Admitted-node census per ladder rung."""
        fdm = sdm = 0
        for state in self._nodes.values():
            if state.decision.state == "fdm":
                fdm += 1
            else:
                sdm += 1
        return {"fdm": fdm, "sdm": sdm, "total": len(self._nodes)}

    def _slice_plan(self, node_id: int, channel_index: int) -> ChannelPlan:
        """The fixed spectral slice backing one SDM spatial channel."""
        alloc = self.allocator
        center = alloc.band_low_hz + (channel_index + 0.5) * self._slice_hz
        return ChannelPlan(node_id=node_id, center_hz=center,
                           bandwidth_hz=self._slice_hz)

    def _gauges(self) -> None:
        tel = self.telemetry
        tel.gauge("admission.occupancy", self.occupancy)
        tel.gauge("admission.fragmentation", self.fragmentation)
        tel.gauge("admission.registered", float(len(self._nodes)))

    # --- the ladder -------------------------------------------------------

    def _try_fdm(self, node_id: int, rate_bps: float) -> ChannelPlan | None:
        try:
            return self.allocator.allocate(node_id, rate_bps)
        except SpectrumExhausted:
            return None

    def _try_sdm(self, node_id: int,
                 bearing_rad: float | None) -> AdmissionDecision | None:
        if bearing_rad is None:
            return None
        assignment = self.sdm.admit(node_id, bearing_rad)
        if assignment is None:
            return None
        plan = self._slice_plan(node_id, assignment.channel_index)
        return AdmissionDecision(node_id=node_id, state="sdm",
                                 plan=plan, sdm=assignment)

    def admit(self, node_id: int, rate_bps: float,
              bearing_rad: float | None = None,
              illumination_duty: float | None = None) -> AdmissionDecision:
        """Walk the ladder for one arriving node.

        FDM needs only the rate demand; the SDM rung additionally needs
        the node's arrival ``bearing_rad`` (spatial reuse is impossible
        without geometry — a bearing-less node skips straight from a
        full band to ``"blocked"``).

        ``illumination_duty`` marks a backscatter tag: besides a
        spectrum rung the tag must win that fraction of the AP's
        illumination airtime from the attached
        :class:`~repro.energy.CarrierScheduler`.  If the airtime budget
        refuses, the freshly won spectrum is handed back and the tag is
        ``"blocked"`` — it never holds a slot it cannot be heard on.
        """
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} is already admitted")
        if illumination_duty is not None and self.carrier is None:
            raise ValueError("illumination_duty needs a CarrierScheduler "
                             "attached to the controller")
        tel = self.telemetry
        decision_or_none: AdmissionDecision | None = None
        plan = self._try_fdm(node_id, rate_bps)
        if plan is not None:
            decision_or_none = AdmissionDecision(
                node_id=node_id, state="fdm", plan=plan, sdm=None)
        else:
            decision_or_none = self._try_sdm(node_id, bearing_rad)
        if decision_or_none is not None and illumination_duty is not None:
            assert self.carrier is not None
            if not self.carrier.reserve(node_id, illumination_duty):
                # Unwind the spectrum rung: a tag without illumination
                # airtime is inaudible, so granting it a slot would
                # only shred the band.
                if decision_or_none.state == "fdm":
                    self.allocator.release(node_id)
                else:
                    self.sdm.release(node_id)
                decision_or_none = None
                if tel.enabled:
                    tel.count("admission.blocked_carrier")
        if decision_or_none is not None:
            self._nodes[node_id] = _NodeState(rate_bps, bearing_rad,
                                              decision_or_none,
                                              illumination_duty)
            if tel.enabled:
                tel.count("admission.admitted_fdm"
                          if decision_or_none.state == "fdm"
                          else "admission.admitted_sdm")
                self._gauges()
            return decision_or_none
        if tel.enabled:
            tel.count("admission.blocked")
        return AdmissionDecision(node_id=node_id, state="blocked",
                                 plan=None, sdm=None)

    def _release_carrier(self, state: _NodeState, node_id: int) -> None:
        """Hand an illuminated tag's airtime back (no-op otherwise)."""
        if state.illumination_duty is not None and self.carrier is not None \
                and node_id in self.carrier:
            self.carrier.release(node_id)

    def release(self, node_id: int) -> None:
        """Return a node's channel (whichever rung holds it)."""
        state = self._nodes.pop(node_id, None)
        if state is None:
            raise KeyError(f"node {node_id} is not admitted")
        if state.decision.state == "fdm":
            self.allocator.release(node_id)
        else:
            self.sdm.release(node_id)
        self._release_carrier(state, node_id)
        tel = self.telemetry
        if tel.enabled:
            tel.count("admission.released")
            self._gauges()

    def reallocate(self, node_id: int) -> AdmissionDecision | None:
        """Move one admitted node off its (interfered) FDM channel.

        The single-node recovery path (chaos rung 5 /
        :meth:`repro.node.access_point.MmxAccessPoint.reallocate_node`):
        first-fit onto clean FDM spectrum, spilling onto the SDM rung
        when the band has no room.  Returns the new decision, or
        ``None`` when neither rung can take the node — in which case it
        keeps its old channel (a failed move must never strand a node),
        mirroring :meth:`FdmAllocator.reallocate`'s restore semantics.
        SDM-admitted nodes are already off the FDM band and are
        returned unchanged.
        """
        try:
            state = self._nodes[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} is not admitted") from None
        if state.decision.state == "sdm":
            return state.decision
        tel = self.telemetry
        try:
            plan = self.allocator.reallocate(node_id)
        except SpectrumExhausted:
            decision_or_none = self._try_sdm(node_id, state.bearing_rad)
            if decision_or_none is None:
                # FdmAllocator.reallocate already restored the old plan.
                return None
            self.allocator.release(node_id)
            state.decision = decision_or_none
            if tel.enabled:
                tel.count("admission.reallocated")
                tel.count("admission.sdm_spill")
                self._gauges()
            return decision_or_none
        state.decision = AdmissionDecision(node_id=node_id, state="fdm",
                                           plan=plan, sdm=None)
        if tel.enabled:
            tel.count("admission.reallocated")
            self._gauges()
        return state.decision

    # --- batched interference handling ------------------------------------

    def mark_interference(self, low_hz: float,
                          high_hz: float) -> ReadmissionReport:
        """Block a range and re-admit every hit node in one pass.

        The batched discipline: (1) find the victims with an indexed
        range query, (2) block the range, (3) free **all** victim
        spectrum, (4) re-admit victims in node-id order through the full
        ladder.  Freeing everything before re-admitting means the pass
        is order-independent in what it vacates — a victim can take over
        another victim's old (still clean) spectrum, which per-node
        ``reallocate`` loops structurally cannot do.

        Unlike :meth:`FdmAllocator.reallocate`, a victim that no rung
        can take is **evicted** (its spectrum stays free): under an
        interferer sweep, keeping nodes parked on jammed spectrum only
        manufactures collisions.  The eviction shows up in the report
        and the ``admission.evicted`` counter.
        """
        victims = [plan.node_id for plan
                   in self.allocator.plans_overlapping(low_hz, high_hz)
                   if plan.node_id in self._nodes]
        victims.sort()
        self.allocator.block_range(low_hz, high_hz)
        for node_id in victims:
            self.allocator.release(node_id)
        moved: list[int] = []
        spilled: list[int] = []
        evicted: list[int] = []
        tel = self.telemetry
        for node_id in victims:
            state = self._nodes[node_id]
            plan = self._try_fdm(node_id, state.rate_bps)
            if plan is not None:
                state.decision = AdmissionDecision(
                    node_id=node_id, state="fdm", plan=plan, sdm=None)
                moved.append(node_id)
                if tel.enabled:
                    tel.count("admission.reallocated")
                continue
            decision_or_none = self._try_sdm(node_id, state.bearing_rad)
            if decision_or_none is not None:
                state.decision = decision_or_none
                spilled.append(node_id)
                if tel.enabled:
                    tel.count("admission.reallocated")
                    tel.count("admission.sdm_spill")
                continue
            self._release_carrier(state, node_id)
            del self._nodes[node_id]
            evicted.append(node_id)
            if tel.enabled:
                tel.count("admission.evicted")
        if tel.enabled:
            self._gauges()
            tel.event("admission.interference", low_hz=low_hz,
                      high_hz=high_hz, victims=len(victims),
                      moved=len(moved), spilled=len(spilled),
                      evicted=len(evicted))
        return ReadmissionReport(victims=tuple(victims),
                                 moved=tuple(moved),
                                 spilled_to_sdm=tuple(spilled),
                                 evicted=tuple(evicted))

    def clear_interference(self) -> None:
        """Forget all blocked ranges (interferers went away)."""
        self.allocator.clear_blocks()
        if self.telemetry.enabled:
            self._gauges()
