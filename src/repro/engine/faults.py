"""Deterministic worker-fault harness for the campaign supervisor.

PR 1 chaos-tested the simulated radio link with seeded fault processes
(:mod:`repro.faults`); this module does the same to the campaign
*executor*.  A :class:`WorkerFaultSchedule` is a frozen, picklable map
from ``(shard_id, attempt)`` to one :class:`WorkerFault`, built either
explicitly (pin exactly which attempt misbehaves, for gates) or from a
seed and per-kind rates (for fuzzing).  The supervisor ships the
schedule to every worker; the worker consults it *before* running its
shard and misbehaves on cue:

``crash``    raise :class:`InjectedWorkerCrash` instead of returning
``hang``     sleep past any sane deadline, then return normally — the
             supervisor must have timed the attempt out by then
``slow``     sleep briefly, then return normally — exercises adaptive
             deadlines without tripping them
``corrupt``  compute the shard honestly, then hand back a tampered
             payload (wrong seed fingerprint) that validation must
             reject

Fault decisions are keyed on the *attempt*, never on wall time or a
worker-local RNG, so a faulty campaign replays identically: the same
attempts fail the same way, every run.  A fault-free schedule (or no
schedule) leaves the worker path byte-identical to the unsupervised
one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from .shard import ShardResult

__all__ = [
    "WORKER_FAULT_KINDS",
    "InjectedWorkerCrash",
    "WorkerFault",
    "WorkerFaultKind",
    "WorkerFaultSchedule",
    "corrupt_shard_result",
]

WorkerFaultKind = Literal["crash", "hang", "slow", "corrupt"]
"""The executor-level failure modes the harness can inject."""

WORKER_FAULT_KINDS: tuple[WorkerFaultKind, ...] = (
    "crash", "hang", "slow", "corrupt")


class InjectedWorkerCrash(RuntimeError):
    """The crash the harness injects — a worker dying mid-shard."""


@dataclass(frozen=True)
class WorkerFault:
    """One injected misbehaviour: what happens, and for how long."""

    kind: WorkerFaultKind
    delay_s: float = 0.0
    """Wall-clock sleep for ``hang``/``slow`` faults (ignored for
    ``crash`` and ``corrupt``)."""

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(f"unknown worker fault kind {self.kind!r}; "
                             f"choose from {WORKER_FAULT_KINDS}")
        if self.delay_s < 0.0:
            raise ValueError("delay_s cannot be negative")


@dataclass(frozen=True)
class WorkerFaultSchedule:
    """A frozen ``(shard_id, attempt) -> WorkerFault`` schedule.

    Attempts are 1-based, matching
    :class:`~repro.engine.policy.ShardFailure`.  The schedule is plain
    data — picklable, so a :class:`~concurrent.futures.ProcessPoolExecutor`
    can ship it to workers — and immutable, so every attempt of every
    run consults the same script.
    """

    faults: dict[tuple[int, int], WorkerFault] = field(
        default_factory=dict)

    def fault_for(self, shard_id: int, attempt: int
                  ) -> WorkerFault | None:
        """The fault scripted for this attempt, if any."""
        return self.faults.get((shard_id, attempt))

    @property
    def num_faults(self) -> int:
        """How many attempts this schedule sabotages."""
        return len(self.faults)

    def worst_attempt(self, shard_id: int) -> int:
        """The highest attempt number scripted to fail for ``shard_id``
        (0 when the shard is never sabotaged) — handy for sizing
        ``max_attempts`` so a test campaign is guaranteed to recover."""
        return max((attempt for sid, attempt in self.faults
                    if sid == shard_id), default=0)

    @classmethod
    def build(cls, seed: int, num_shards: int, *,
              crash: float = 0.0, hang: float = 0.0,
              slow: float = 0.0, corrupt: float = 0.0,
              max_faulty_attempts: int = 2,
              hang_s: float = 30.0, slow_s: float = 0.05
              ) -> WorkerFaultSchedule:
        """A seeded random schedule: per-attempt fault probabilities.

        For each of the first ``max_faulty_attempts`` attempts of each
        shard, one draw from a generator seeded with ``seed`` picks at
        most one fault kind (probabilities ``crash``/``hang``/``slow``/
        ``corrupt``, which must sum to at most 1).  The same seed always
        yields the same schedule; later attempts are never sabotaged,
        so any shard survives ``max_faulty_attempts + 1`` attempts.
        """
        rates: dict[WorkerFaultKind, float] = {
            "crash": crash, "hang": hang, "slow": slow,
            "corrupt": corrupt}
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1]")
        if sum(rates.values()) > 1.0:
            raise ValueError("fault rates sum to more than 1; at most "
                             "one fault fires per attempt")
        if max_faulty_attempts < 0:
            raise ValueError("max_faulty_attempts cannot be negative")
        delays: dict[WorkerFaultKind, float] = {
            "crash": 0.0, "hang": hang_s, "slow": slow_s,
            "corrupt": 0.0}
        rng = np.random.default_rng(seed)
        faults: dict[tuple[int, int], WorkerFault] = {}
        for shard_id in range(num_shards):
            for attempt in range(1, max_faulty_attempts + 1):
                draw = float(rng.uniform())
                edge = 0.0
                for kind, rate in rates.items():
                    edge += rate
                    if draw < edge:
                        faults[(shard_id, attempt)] = WorkerFault(
                            kind=kind, delay_s=delays[kind])
                        break
        return cls(faults=faults)

    def apply_before(self, shard_id: int, attempt: int) -> None:
        """Run the pre-execution half of any scripted fault.

        Called by the worker before the shard's trials run: a ``crash``
        raises here, ``hang``/``slow`` sleep here (wall-clock sleep is
        the point — the supervisor's deadline machinery is what's under
        test), ``corrupt`` waits for :meth:`apply_after`.
        """
        fault = self.fault_for(shard_id, attempt)
        if fault is None:
            return
        if fault.kind in ("hang", "slow"):
            time.sleep(fault.delay_s)
        if fault.kind == "crash":
            raise InjectedWorkerCrash(
                f"injected crash: shard {shard_id} attempt {attempt}")

    def apply_after(self, result: ShardResult, attempt: int
                    ) -> ShardResult:
        """Run the post-execution half: corrupt the payload on cue."""
        fault = self.fault_for(result.shard_id, attempt)
        if fault is not None and fault.kind == "corrupt":
            return corrupt_shard_result(result)
        return result


def corrupt_shard_result(result: ShardResult) -> ShardResult:
    """A deterministically-tampered copy of ``result``.

    Every trial's seed is perturbed by one (and the first trial's index
    is offset past the campaign), so the payload fails the supervisor's
    seed-fingerprint validation no matter which single check it runs
    first.  The original is untouched.
    """
    tampered = tuple(
        (index + (1_000_000_007 if position == 0 else 0), seed + 1,
         dict(values))
        for position, (index, seed, values) in enumerate(result.trials))
    return ShardResult(shard_id=result.shard_id, trials=tampered,
                       telemetry=result.telemetry)
