"""Executors: where shards actually run.

Two implementations of one tiny protocol (:class:`ShardExecutor`):

* :class:`SerialExecutor` — runs shards in-process, in shard order.
  The fallback and the reference: campaign results and telemetry under
  any other executor are pinned byte-identical to this one.
* :class:`ProcessPool` — fans shards out over ``jobs`` worker processes
  via :class:`concurrent.futures.ProcessPoolExecutor` and yields results
  in *completion* order, so the campaign can journal each shard the
  moment it lands (crash-safety) while the final merge re-sorts by
  shard id (determinism).

Workers receive everything they need — the trial function, the shard's
planned seeds, the campaign trial count — as pickled arguments; they
consult no global state, no wall clock and no process-local RNG, so a
shard computes the same result on any worker, any host, any run.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Protocol

from .plan import ShardSpec
from .shard import ShardResult, TrialFn, run_shard

__all__ = ["ProcessPool", "SerialExecutor", "ShardExecutor",
           "default_job_count"]


def default_job_count() -> int:
    """A sensible worker count: the CPUs this process may schedule on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


class ShardExecutor(Protocol):
    """The executor contract :class:`~repro.engine.Campaign` drives."""

    def run_shards(self, trial_fn: TrialFn,
                   shards: Sequence[ShardSpec], of_total: int,
                   record_telemetry: bool = False
                   ) -> Iterator[ShardResult]:
        """Execute ``shards``, yielding each result as it completes."""
        ...


class SerialExecutor:
    """In-process execution, one shard after another, in shard order.

    No pickling constraints: closures and lambdas are fine as trial
    functions.  This is the default backend — and the behavioural
    reference every parallel executor is tested against.
    """

    def run_shards(self, trial_fn: TrialFn,
                   shards: Sequence[ShardSpec], of_total: int,
                   record_telemetry: bool = False
                   ) -> Iterator[ShardResult]:
        """Yield each shard's result immediately after running it."""
        for shard in shards:
            yield run_shard(trial_fn, shard, of_total,
                            record_telemetry=record_telemetry)

    def __repr__(self) -> str:
        return "SerialExecutor()"


def _execute_shard(trial_fn: TrialFn, shard: ShardSpec, of_total: int,
                   record_telemetry: bool) -> ShardResult:
    """Worker-process entry point (module-level so it pickles)."""
    return run_shard(trial_fn, shard, of_total,
                     record_telemetry=record_telemetry)


class ProcessPool:
    """Shard fan-out over a pool of worker processes.

    ``jobs`` workers execute shards concurrently; results stream back
    in completion order.  The trial function (and its partial-bound
    arguments) must be picklable.  Determinism is unaffected by worker
    count or completion order: every trial's seed is fixed by the
    :class:`~repro.engine.plan.CampaignPlan`, and the campaign merge
    re-sorts shards by id.
    """

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("a process pool needs at least one worker")
        self.jobs = jobs if jobs is not None else default_job_count()

    def run_shards(self, trial_fn: TrialFn,
                   shards: Sequence[ShardSpec], of_total: int,
                   record_telemetry: bool = False
                   ) -> Iterator[ShardResult]:
        """Yield shard results as workers complete them.

        Uses at most ``jobs`` workers (fewer when there are fewer
        shards).  A failure in any trial propagates out of the
        iterator; shards already yielded remain journaled by the
        caller, which is exactly what makes a crashed campaign
        resumable.  On the way out — error or the caller abandoning
        the iterator — every not-yet-started shard is cancelled, so a
        failed campaign does not block behind work nobody will consume.
        """
        if not shards:
            return
        workers = min(self.jobs, len(shards))
        executor = ProcessPoolExecutor(max_workers=workers)
        try:
            pending = {
                executor.submit(_execute_shard, trial_fn, shard,
                                of_total, record_telemetry)
                for shard in shards}
            while pending:
                done, pending = wait(pending,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
        finally:
            executor.shutdown(wait=True, cancel_futures=True)

    def __repr__(self) -> str:
        return f"ProcessPool(jobs={self.jobs})"
