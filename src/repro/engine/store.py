"""Crash-safe campaign journal: completed shards on disk, verified.

The :class:`ResultStore` is an append-only JSONL file.  Line one is the
campaign header (schema version + the plan's SHA-256 fingerprint); every
subsequent line is one completed shard, carrying its own SHA-256
integrity hash over the canonical serialisation — the same
hash-the-canonical-JSON pattern :mod:`repro.cluster.checkpoint` uses for
AP state.  The failure model:

* a campaign killed mid-run leaves at worst one torn final line; the
  loader drops it and the campaign re-runs just that shard;
* a journal whose *interior* is corrupt (bit rot, tampering, truncation
  anywhere but the tail) is rejected with :class:`StoreError` — resume
  never silently mixes good and bad shards;
* a journal written by a *different* campaign (other seed, trial count
  or shard layout) fails the fingerprint check and is rejected rather
  than partially reused.

Each shard line is flushed and fsynced as it lands, so the journal is
never more than one shard behind the computation it protects.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from ..telemetry import TelemetrySnapshot
from .plan import CampaignPlan
from .shard import ShardResult

__all__ = ["STORE_SCHEMA_VERSION", "ResultStore", "StoreError"]

STORE_SCHEMA_VERSION = 1
"""Bump on any change to the journal line layout; the loader refuses
newer (unknown) schemas rather than misreading them."""


class StoreError(Exception):
    """Raised when a campaign journal is unreadable or mismatched."""


def _canonical(payload: dict[str, Any]) -> str:
    """Canonical one-line JSON: sorted keys, fixed separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload: dict[str, Any]) -> str:
    """SHA-256 over the canonical serialisation of ``payload``."""
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


class ResultStore:
    """Append-only JSONL journal of one campaign's completed shards."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # --- writing ----------------------------------------------------------

    def _append(self, payload: dict[str, Any]) -> None:
        """Append one canonical line, flushed and fsynced to disk."""
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(_canonical(payload) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def create(self, plan: CampaignPlan) -> None:
        """Start a fresh journal for ``plan`` (truncates any old file)."""
        header = {
            "record": "campaign",
            "format": "repro-engine",
            "version": STORE_SCHEMA_VERSION,
            "fingerprint": plan.fingerprint(),
            "master_seed": plan.master_seed,
            "num_trials": plan.num_trials,
            "num_shards": plan.num_shards,
        }
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(_canonical(header) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def record_shard(self, result: ShardResult) -> None:
        """Journal one completed shard with an integrity hash."""
        payload: dict[str, Any] = {
            "record": "shard",
            "shard_id": result.shard_id,
            "trials": [[index, seed, values]
                       for index, seed, values in result.trials],
            "telemetry": (None if result.telemetry is None
                          else result.telemetry.to_dict()),
        }
        try:
            payload["integrity"] = _digest(payload)
        except (TypeError, ValueError) as exc:
            raise StoreError(
                f"shard {result.shard_id} values are not "
                f"JSON-serialisable: {exc}") from exc
        self._append(payload)

    # --- reading ----------------------------------------------------------

    def load_or_create(self, plan: CampaignPlan
                       ) -> dict[int, ShardResult]:
        """Open the journal for ``plan``; return already-completed shards.

        Creates a fresh journal (and returns ``{}``) when the file does
        not exist.  When it does, the header's fingerprint must match
        the plan; a torn final line is dropped silently (the crash-safe
        append case) while any other corruption raises
        :class:`StoreError`.
        """
        if not self.path.exists():
            self.create(plan)
            return {}
        return self._load(plan)

    def _load(self, plan: CampaignPlan) -> dict[int, ShardResult]:
        """Parse and verify an existing journal against ``plan``."""
        text = self.path.read_text(encoding="utf-8")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise StoreError(f"{self.path} is empty, not a campaign "
                             "journal")
        header = self._parse_header(lines[0], plan)
        completed: dict[int, ShardResult] = {}
        for position, line in enumerate(lines[1:], start=2):
            is_last = position == len(lines)
            result = self._parse_shard(line, position, is_last)
            if result is None:  # torn tail, dropped
                continue
            if not 0 <= result.shard_id < header["num_shards"]:
                raise StoreError(
                    f"{self.path}:{position}: shard id "
                    f"{result.shard_id} outside the campaign's "
                    f"{header['num_shards']} shards")
            completed[result.shard_id] = result
        return completed

    def _parse_header(self, line: str, plan: CampaignPlan
                      ) -> dict[str, Any]:
        """Validate the campaign header line against the plan."""
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"{self.path}:1: campaign header is not JSON: "
                f"{exc}") from exc
        if not isinstance(header, dict) \
                or header.get("record") != "campaign":
            raise StoreError(f"{self.path}:1: not a campaign journal "
                             "(missing header line)")
        version = header.get("version")
        if version != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"{self.path}: unsupported journal schema {version!r} "
                f"(this build reads {STORE_SCHEMA_VERSION})")
        if header.get("fingerprint") != plan.fingerprint():
            raise StoreError(
                f"{self.path} was written by a different campaign "
                f"(seed {header.get('master_seed')!r}, "
                f"{header.get('num_trials')!r} trials, "
                f"{header.get('num_shards')!r} shards); refusing to "
                "resume — remove the file or change --out")
        return header

    def _parse_shard(self, line: str, position: int, is_last: bool
                     ) -> ShardResult | None:
        """One shard line -> :class:`ShardResult`; ``None`` if torn tail."""
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("shard line is not an object")
            stored = payload.pop("integrity", None)
            if stored is None:
                raise ValueError("shard line carries no integrity hash")
            if _digest(payload) != stored:
                raise ValueError("shard integrity hash mismatch")
            if payload.get("record") != "shard":
                raise ValueError(
                    f"unexpected record {payload.get('record')!r}")
            telemetry = payload["telemetry"]
            return ShardResult(
                shard_id=int(payload["shard_id"]),
                trials=tuple((int(index), int(seed), dict(values))
                             for index, seed, values
                             in payload["trials"]),
                telemetry=(None if telemetry is None
                           else TelemetrySnapshot.from_dict(telemetry)),
            )
        except (ValueError, KeyError, TypeError) as exc:
            if is_last:
                # The crash-safe case: an append died mid-line.  The
                # shard simply re-runs.
                return None
            raise StoreError(
                f"{self.path}:{position}: corrupt shard record "
                f"({exc}); refusing to resume from a damaged "
                "journal") from exc
