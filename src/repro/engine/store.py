"""Crash-safe campaign journal: completed shards on disk, verified.

The :class:`ResultStore` is an append-only JSONL file.  Line one is the
campaign header (schema version + the plan's SHA-256 fingerprint); every
subsequent line is one record — a completed ``shard``, a failed
``attempt`` (the supervisor's retry ledger), or a ``quarantine`` notice
— sealed with its own SHA-256 integrity hash over the canonical
serialisation (:mod:`repro.durability.integrity`, the same authority
:mod:`repro.cluster.checkpoint` uses).  Only ``shard`` records affect
resume: attempt and quarantine lines are the audit trail, so a
quarantined shard is simply *absent* from the journal and re-runs on
the next resume.

All I/O goes through the :mod:`repro.durability` seam.  The failure
model:

* creation is atomic (write-temp → fsync → rename → fsync parent dir),
  so a crash right after journal creation can no longer lose the whole
  file to an unsynced directory entry;
* each shard line is appended with fsync as it lands, so the journal is
  never more than one shard behind the computation it protects;
* a campaign killed mid-append leaves at worst one torn final line; the
  loader drops it and the campaign re-runs just that shard;
* a journal whose *interior* is corrupt (bit rot, a lying short write,
  tampering) has the damaged records **quarantined** — skipped,
  reported on :attr:`ResultStore.last_scan`, and re-run — never merged
  and never silently mixed with good shards (``repro fsck`` repairs
  the file in place);
* a journal written by a *different* campaign (other seed, trial count
  or shard layout) fails the fingerprint check and is rejected with
  :class:`StoreError` rather than partially reused, as is a journal
  whose header is unreadable (with no trustworthy header, nothing
  below it can be attributed to this campaign).
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path
from typing import Any

from ..durability.fsck import (
    JOURNAL_SCHEMAS,
    JournalScan,
    scan_journal_text,
)
from ..durability.integrity import canonical_json, digest
from ..durability.io import FsBackend, append_line, atomic_replace
from ..telemetry import TelemetrySnapshot
from .plan import CampaignPlan
from .policy import FAILURE_KINDS, FailureKind, ShardFailure
from .shard import ShardResult

__all__ = ["STORE_SCHEMA_VERSION", "ResultStore", "StoreError"]

STORE_SCHEMA_VERSION = 2
"""Bump on any change to the journal line layout; the loader refuses
newer (unknown) schemas rather than misreading them.  Version 2 added
``attempt`` and ``quarantine`` audit records; v1 journals (shard
records only) are still readable."""

_READABLE_SCHEMA_VERSIONS = JOURNAL_SCHEMAS
"""Shared with ``repro fsck`` so the store and the repair tool can
never disagree about which journals are readable."""


class StoreError(Exception):
    """Raised when a campaign journal is unreadable or mismatched."""


class ResultStore:
    """Append-only JSONL journal of one campaign's completed shards."""

    def __init__(self, path: str | Path,
                 fs: FsBackend | None = None) -> None:
        self.path = Path(path)
        self.fs = fs
        """Injectable durability backend (``None`` = the real disk);
        tests hand a :class:`repro.durability.FaultyFs` here to replay
        seeded storage chaos against the journal."""

        self.last_scan: JournalScan | None = None
        """The line-by-line classification of the most recent read —
        including any quarantined corrupt records — for forensics."""

    # --- writing ----------------------------------------------------------

    def _append(self, payload: dict[str, Any]) -> None:
        """Append one canonical line, written and fsynced via the seam."""
        append_line(self.path, canonical_json(payload) + "\n",
                    fs=self.fs)

    def create(self, plan: CampaignPlan) -> None:
        """Start a fresh journal for ``plan`` (replaces any old file).

        Atomic: the header is published by rename and the parent
        directory is fsynced, so a crash leaves either no journal or a
        complete one-line journal — never an empty or torn file.
        """
        header = {
            "record": "campaign",
            "format": "repro-engine",
            "version": STORE_SCHEMA_VERSION,
            "fingerprint": plan.fingerprint(),
            "master_seed": plan.master_seed,
            "num_trials": plan.num_trials,
            "num_shards": plan.num_shards,
        }
        atomic_replace(self.path, canonical_json(header) + "\n",
                       fs=self.fs)

    def record_shard(self, result: ShardResult) -> None:
        """Journal one completed shard with an integrity hash."""
        payload: dict[str, Any] = {
            "record": "shard",
            "shard_id": result.shard_id,
            "trials": [[index, seed, values]
                       for index, seed, values in result.trials],
            "telemetry": (None if result.telemetry is None
                          else result.telemetry.to_dict()),
        }
        try:
            payload["integrity"] = digest(payload)
        except (TypeError, ValueError) as exc:
            raise StoreError(
                f"shard {result.shard_id} values are not "
                f"JSON-serialisable: {exc}") from exc
        self._append(payload)

    def record_attempt(self, failure: ShardFailure) -> None:
        """Journal one failed shard attempt (the supervisor's ledger).

        Attempt records never feed resume — a shard is only "done" when
        a ``shard`` record lands — but they make a flaky campaign
        diagnosable from its journal alone: which shard, which attempt,
        and how the supervisor classified the failure.
        """
        payload: dict[str, Any] = {
            "record": "attempt",
            "shard_id": failure.shard_id,
            "attempt": failure.attempt,
            "kind": failure.kind,
            "detail": failure.detail,
        }
        payload["integrity"] = digest(payload)
        self._append(payload)

    def record_quarantine(self, shard_ids: tuple[int, ...]) -> None:
        """Journal the campaign's final quarantine verdict.

        Written once per supervised run that gave up on shards; a later
        resume still re-attempts them (they have no ``shard`` record),
        so quarantine is an audit fact, not a permanent sentence.
        """
        payload: dict[str, Any] = {
            "record": "quarantine",
            "shard_ids": sorted(shard_ids),
        }
        payload["integrity"] = digest(payload)
        self._append(payload)

    # --- reading ----------------------------------------------------------

    def load_or_create(self, plan: CampaignPlan
                       ) -> dict[int, ShardResult]:
        """Open the journal for ``plan``; return already-completed shards.

        Creates a fresh journal (and returns ``{}``) when the file does
        not exist.  When it does, the header's fingerprint must match
        the plan; a torn final line is dropped (the crash-safe append
        case) and corrupt interior records are quarantined — skipped
        and reported on :attr:`last_scan`, so their shards simply
        re-run.  Only an unusable header (not a journal, unreadable
        schema, wrong campaign) raises :class:`StoreError`.
        """
        if not self.path.exists():
            self.create(plan)
            return {}
        return self._load(plan)

    def _load(self, plan: CampaignPlan) -> dict[int, ShardResult]:
        """Parse and verify an existing journal against ``plan``."""
        completed: dict[int, ShardResult] = {}

        def on_shard(result: ShardResult, position: int) -> None:
            if not 0 <= result.shard_id < plan.num_shards:
                raise StoreError(
                    f"{self.path}:{position}: shard id "
                    f"{result.shard_id} outside the campaign's "
                    f"{plan.num_shards} shards")
            completed[result.shard_id] = result

        self._scan(plan, on_shard=on_shard)
        return completed

    def load_attempts(self) -> tuple[ShardFailure, ...]:
        """Every journaled failed attempt, in journal order.

        The diagnostic companion to :meth:`load_or_create`: reads the
        supervisor's audit records without needing the plan (the header
        fingerprint is not checked — this is forensics, not resume).
        """
        attempts: list[ShardFailure] = []

        def on_attempt(failure: ShardFailure, position: int) -> None:
            attempts.append(failure)

        self._scan(None, on_attempt=on_attempt)
        return tuple(attempts)

    def load_quarantined(self) -> tuple[int, ...]:
        """The union of all journaled quarantine verdicts."""
        quarantined: set[int] = set()

        def on_quarantine(shard_ids: list[int], position: int) -> None:
            quarantined.update(shard_ids)

        self._scan(None, on_quarantine=on_quarantine)
        return tuple(sorted(quarantined))

    @property
    def quarantined_lines(self) -> tuple[int, ...]:
        """Line numbers quarantined by the most recent read (forensics)."""
        if self.last_scan is None:
            return ()
        return tuple(issue.line for issue in self.last_scan.corrupt)

    def _scan(self, plan: CampaignPlan | None,
              on_shard: Callable[[ShardResult, int], None] | None = None,
              on_attempt: Callable[[ShardFailure, int], None] | None = None,
              on_quarantine: Callable[[list[int], int], None] | None = None,
              ) -> dict[str, Any]:
        """One pass over the journal, dispatching verified records.

        Returns the parsed header.  With ``plan`` set, the header must
        fingerprint-match it; without, only structural checks run.
        Classification is delegated to
        :func:`repro.durability.fsck.scan_journal_text` — the *same*
        scanner ``repro fsck`` uses — so resume and repair can never
        disagree about what is damaged: every record's integrity hash
        is verified, a torn final line is dropped, and corrupt interior
        records are quarantined (skipped, kept on :attr:`last_scan`).
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except UnicodeDecodeError as exc:
            raise StoreError(
                f"{self.path}: not UTF-8 ({exc}); not a journal this "
                "build can read") from exc
        scan = scan_journal_text(text)
        self.last_scan = scan
        if scan.header_error is not None or scan.header is None:
            raise StoreError(f"{self.path}:1: {scan.header_error}")
        header = self._check_header(scan.header, plan)
        for position, payload, _raw in scan.records:
            record = payload.get("record")
            if record == "shard" and on_shard is not None:
                on_shard(self._shard_result(payload, position), position)
            elif record == "attempt" and on_attempt is not None:
                on_attempt(self._attempt(payload, position), position)
            elif record == "quarantine" and on_quarantine is not None:
                on_quarantine(self._quarantine(payload, position),
                              position)
        return header

    def _check_header(self, header: dict[str, Any],
                      plan: CampaignPlan | None) -> dict[str, Any]:
        """Campaign-identity check (the scanner did the structure)."""
        if plan is not None \
                and header.get("fingerprint") != plan.fingerprint():
            raise StoreError(
                f"{self.path} was written by a different campaign "
                f"(seed {header.get('master_seed')!r}, "
                f"{header.get('num_trials')!r} trials, "
                f"{header.get('num_shards')!r} shards); refusing to "
                "resume — remove the file or change --out")
        return header

    def _shard_result(self, payload: dict[str, Any], position: int
                      ) -> ShardResult:
        """A verified ``shard`` payload -> :class:`ShardResult`."""
        try:
            telemetry = payload["telemetry"]
            return ShardResult(
                shard_id=int(payload["shard_id"]),
                trials=tuple((int(index), int(seed), dict(values))
                             for index, seed, values
                             in payload["trials"]),
                telemetry=(None if telemetry is None
                           else TelemetrySnapshot.from_dict(telemetry)),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreError(
                f"{self.path}:{position}: corrupt shard record "
                f"({exc}); refusing to resume from a damaged "
                "journal") from exc

    def _attempt(self, payload: dict[str, Any], position: int
                 ) -> ShardFailure:
        """A verified ``attempt`` payload -> :class:`ShardFailure`."""
        try:
            kind = str(payload["kind"])
            if kind not in FAILURE_KINDS:
                raise ValueError(f"unknown failure kind {kind!r}")
            narrowed: FailureKind = kind  # type: ignore[assignment]
            return ShardFailure(shard_id=int(payload["shard_id"]),
                                attempt=int(payload["attempt"]),
                                kind=narrowed,
                                detail=str(payload["detail"]))
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreError(
                f"{self.path}:{position}: corrupt attempt record "
                f"({exc})") from exc

    def _quarantine(self, payload: dict[str, Any], position: int
                    ) -> list[int]:
        """A verified ``quarantine`` payload -> shard id list."""
        try:
            return [int(shard_id)
                    for shard_id in payload["shard_ids"]]
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreError(
                f"{self.path}:{position}: corrupt quarantine record "
                f"({exc})") from exc
