"""Crash-safe campaign journal: completed shards on disk, verified.

The :class:`ResultStore` is an append-only JSONL file.  Line one is the
campaign header (schema version + the plan's SHA-256 fingerprint); every
subsequent line is one record — a completed ``shard``, a failed
``attempt`` (the supervisor's retry ledger), or a ``quarantine`` notice
— carrying its own SHA-256 integrity hash over the canonical
serialisation, the same hash-the-canonical-JSON pattern
:mod:`repro.cluster.checkpoint` uses for AP state.  Only ``shard``
records affect resume: attempt and quarantine lines are the audit
trail (what failed, when, how it was classified), so a quarantined
shard is simply *absent* from the journal and re-runs on the next
resume.  The failure model:

* a campaign killed mid-run leaves at worst one torn final line; the
  loader drops it and the campaign re-runs just that shard;
* a journal whose *interior* is corrupt (bit rot, tampering, truncation
  anywhere but the tail) is rejected with :class:`StoreError` — resume
  never silently mixes good and bad shards;
* a journal written by a *different* campaign (other seed, trial count
  or shard layout) fails the fingerprint check and is rejected rather
  than partially reused.

Each shard line is flushed and fsynced as it lands, so the journal is
never more than one shard behind the computation it protects.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable
from pathlib import Path
from typing import Any

from ..telemetry import TelemetrySnapshot
from .plan import CampaignPlan
from .policy import FAILURE_KINDS, FailureKind, ShardFailure
from .shard import ShardResult

__all__ = ["STORE_SCHEMA_VERSION", "ResultStore", "StoreError"]

STORE_SCHEMA_VERSION = 2
"""Bump on any change to the journal line layout; the loader refuses
newer (unknown) schemas rather than misreading them.  Version 2 added
``attempt`` and ``quarantine`` audit records; v1 journals (shard
records only) are still readable."""

_READABLE_SCHEMA_VERSIONS = frozenset({1, STORE_SCHEMA_VERSION})


class StoreError(Exception):
    """Raised when a campaign journal is unreadable or mismatched."""


def _canonical(payload: dict[str, Any]) -> str:
    """Canonical one-line JSON: sorted keys, fixed separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload: dict[str, Any]) -> str:
    """SHA-256 over the canonical serialisation of ``payload``."""
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


class ResultStore:
    """Append-only JSONL journal of one campaign's completed shards."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # --- writing ----------------------------------------------------------

    def _append(self, payload: dict[str, Any]) -> None:
        """Append one canonical line, flushed and fsynced to disk."""
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(_canonical(payload) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def create(self, plan: CampaignPlan) -> None:
        """Start a fresh journal for ``plan`` (truncates any old file)."""
        header = {
            "record": "campaign",
            "format": "repro-engine",
            "version": STORE_SCHEMA_VERSION,
            "fingerprint": plan.fingerprint(),
            "master_seed": plan.master_seed,
            "num_trials": plan.num_trials,
            "num_shards": plan.num_shards,
        }
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(_canonical(header) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def record_shard(self, result: ShardResult) -> None:
        """Journal one completed shard with an integrity hash."""
        payload: dict[str, Any] = {
            "record": "shard",
            "shard_id": result.shard_id,
            "trials": [[index, seed, values]
                       for index, seed, values in result.trials],
            "telemetry": (None if result.telemetry is None
                          else result.telemetry.to_dict()),
        }
        try:
            payload["integrity"] = _digest(payload)
        except (TypeError, ValueError) as exc:
            raise StoreError(
                f"shard {result.shard_id} values are not "
                f"JSON-serialisable: {exc}") from exc
        self._append(payload)

    def record_attempt(self, failure: ShardFailure) -> None:
        """Journal one failed shard attempt (the supervisor's ledger).

        Attempt records never feed resume — a shard is only "done" when
        a ``shard`` record lands — but they make a flaky campaign
        diagnosable from its journal alone: which shard, which attempt,
        and how the supervisor classified the failure.
        """
        payload: dict[str, Any] = {
            "record": "attempt",
            "shard_id": failure.shard_id,
            "attempt": failure.attempt,
            "kind": failure.kind,
            "detail": failure.detail,
        }
        payload["integrity"] = _digest(payload)
        self._append(payload)

    def record_quarantine(self, shard_ids: tuple[int, ...]) -> None:
        """Journal the campaign's final quarantine verdict.

        Written once per supervised run that gave up on shards; a later
        resume still re-attempts them (they have no ``shard`` record),
        so quarantine is an audit fact, not a permanent sentence.
        """
        payload: dict[str, Any] = {
            "record": "quarantine",
            "shard_ids": sorted(shard_ids),
        }
        payload["integrity"] = _digest(payload)
        self._append(payload)

    # --- reading ----------------------------------------------------------

    def load_or_create(self, plan: CampaignPlan
                       ) -> dict[int, ShardResult]:
        """Open the journal for ``plan``; return already-completed shards.

        Creates a fresh journal (and returns ``{}``) when the file does
        not exist.  When it does, the header's fingerprint must match
        the plan; a torn final line is dropped silently (the crash-safe
        append case) while any other corruption raises
        :class:`StoreError`.
        """
        if not self.path.exists():
            self.create(plan)
            return {}
        return self._load(plan)

    def _load(self, plan: CampaignPlan) -> dict[int, ShardResult]:
        """Parse and verify an existing journal against ``plan``."""
        completed: dict[int, ShardResult] = {}

        def on_shard(result: ShardResult, position: int) -> None:
            if not 0 <= result.shard_id < plan.num_shards:
                raise StoreError(
                    f"{self.path}:{position}: shard id "
                    f"{result.shard_id} outside the campaign's "
                    f"{plan.num_shards} shards")
            completed[result.shard_id] = result

        self._scan(plan, on_shard=on_shard)
        return completed

    def load_attempts(self) -> tuple[ShardFailure, ...]:
        """Every journaled failed attempt, in journal order.

        The diagnostic companion to :meth:`load_or_create`: reads the
        supervisor's audit records without needing the plan (the header
        fingerprint is not checked — this is forensics, not resume).
        """
        attempts: list[ShardFailure] = []

        def on_attempt(failure: ShardFailure, position: int) -> None:
            attempts.append(failure)

        self._scan(None, on_attempt=on_attempt)
        return tuple(attempts)

    def load_quarantined(self) -> tuple[int, ...]:
        """The union of all journaled quarantine verdicts."""
        quarantined: set[int] = set()

        def on_quarantine(shard_ids: list[int], position: int) -> None:
            quarantined.update(shard_ids)

        self._scan(None, on_quarantine=on_quarantine)
        return tuple(sorted(quarantined))

    def _scan(self, plan: CampaignPlan | None,
              on_shard: Callable[[ShardResult, int], None] | None = None,
              on_attempt: Callable[[ShardFailure, int], None] | None = None,
              on_quarantine: Callable[[list[int], int], None] | None = None,
              ) -> dict[str, Any]:
        """One pass over the journal, dispatching verified records.

        Returns the parsed header.  With ``plan`` set, the header must
        fingerprint-match it; without, only structural checks run.
        Every record's integrity hash is verified either way; a torn
        final line is dropped silently, interior corruption raises.
        """
        text = self.path.read_text(encoding="utf-8")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise StoreError(f"{self.path} is empty, not a campaign "
                             "journal")
        header = self._parse_header(lines[0], plan)
        for position, line in enumerate(lines[1:], start=2):
            is_last = position == len(lines)
            payload = self._parse_record(line, position, is_last)
            if payload is None:  # torn tail, dropped
                continue
            record = payload.get("record")
            if record == "shard" and on_shard is not None:
                on_shard(self._shard_result(payload, position), position)
            elif record == "attempt" and on_attempt is not None:
                on_attempt(self._attempt(payload, position), position)
            elif record == "quarantine" and on_quarantine is not None:
                on_quarantine(self._quarantine(payload, position),
                              position)
        return header

    def _parse_header(self, line: str, plan: CampaignPlan | None
                      ) -> dict[str, Any]:
        """Validate the campaign header line (against ``plan`` if given)."""
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"{self.path}:1: campaign header is not JSON: "
                f"{exc}") from exc
        if not isinstance(header, dict) \
                or header.get("record") != "campaign":
            raise StoreError(f"{self.path}:1: not a campaign journal "
                             "(missing header line)")
        version = header.get("version")
        if version not in _READABLE_SCHEMA_VERSIONS:
            raise StoreError(
                f"{self.path}: unsupported journal schema {version!r} "
                f"(this build reads "
                f"{sorted(_READABLE_SCHEMA_VERSIONS)})")
        if plan is not None \
                and header.get("fingerprint") != plan.fingerprint():
            raise StoreError(
                f"{self.path} was written by a different campaign "
                f"(seed {header.get('master_seed')!r}, "
                f"{header.get('num_trials')!r} trials, "
                f"{header.get('num_shards')!r} shards); refusing to "
                "resume — remove the file or change --out")
        return header

    def _parse_record(self, line: str, position: int, is_last: bool
                      ) -> dict[str, Any] | None:
        """One journal line -> verified payload; ``None`` if torn tail."""
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("journal line is not an object")
            stored = payload.pop("integrity", None)
            if stored is None:
                raise ValueError("journal line carries no integrity "
                                 "hash")
            if _digest(payload) != stored:
                raise ValueError("record integrity hash mismatch")
            if payload.get("record") not in ("shard", "attempt",
                                             "quarantine"):
                raise ValueError(
                    f"unexpected record {payload.get('record')!r}")
            return payload
        except (ValueError, KeyError, TypeError) as exc:
            if is_last:
                # The crash-safe case: an append died mid-line.  The
                # record simply re-runs (shard) or is lost (audit).
                return None
            raise StoreError(
                f"{self.path}:{position}: corrupt shard record "
                f"({exc}); refusing to resume from a damaged "
                "journal") from exc

    def _shard_result(self, payload: dict[str, Any], position: int
                      ) -> ShardResult:
        """A verified ``shard`` payload -> :class:`ShardResult`."""
        try:
            telemetry = payload["telemetry"]
            return ShardResult(
                shard_id=int(payload["shard_id"]),
                trials=tuple((int(index), int(seed), dict(values))
                             for index, seed, values
                             in payload["trials"]),
                telemetry=(None if telemetry is None
                           else TelemetrySnapshot.from_dict(telemetry)),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreError(
                f"{self.path}:{position}: corrupt shard record "
                f"({exc}); refusing to resume from a damaged "
                "journal") from exc

    def _attempt(self, payload: dict[str, Any], position: int
                 ) -> ShardFailure:
        """A verified ``attempt`` payload -> :class:`ShardFailure`."""
        try:
            kind = str(payload["kind"])
            if kind not in FAILURE_KINDS:
                raise ValueError(f"unknown failure kind {kind!r}")
            narrowed: FailureKind = kind  # type: ignore[assignment]
            return ShardFailure(shard_id=int(payload["shard_id"]),
                                attempt=int(payload["attempt"]),
                                kind=narrowed,
                                detail=str(payload["detail"]))
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreError(
                f"{self.path}:{position}: corrupt attempt record "
                f"({exc})") from exc

    def _quarantine(self, payload: dict[str, Any], position: int
                    ) -> list[int]:
        """A verified ``quarantine`` payload -> shard id list."""
        try:
            return [int(shard_id)
                    for shard_id in payload["shard_ids"]]
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreError(
                f"{self.path}:{position}: corrupt quarantine record "
                f"({exc})") from exc
