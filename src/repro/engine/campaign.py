"""The campaign driver: plan, execute, journal, resume, merge.

:class:`Campaign` turns any ``trial_fn(rng, index) -> dict`` into a
sharded Monte-Carlo campaign:

1. a :class:`~repro.engine.plan.CampaignPlan` fixes every trial's seed
   and the shard partition up front;
2. an executor (:class:`~repro.engine.pool.SerialExecutor` by default,
   :class:`~repro.engine.pool.ProcessPool` for fan-out) runs the shards;
3. an optional :class:`~repro.engine.store.ResultStore` journals each
   shard as it completes, so a killed campaign resumes executing *only*
   the unfinished shards;
4. the merge re-sorts shards into index order and absorbs per-shard
   telemetry snapshots in shard order — aggregate results and telemetry
   exports are byte-identical for the same master seed and shard plan,
   whichever executor ran the shards and however many times the
   campaign was interrupted and resumed.

Determinism contract: shard count changes *partitioning*, never seeds —
``num_shards=1`` and ``num_shards=64`` produce identical trial values
(and identical exports for the engine's own ``sim.trial`` telemetry,
which records no float-summed histograms across shard boundaries).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..sim.runner import MonteCarloRunner, TrialResult
from ..telemetry import NullRecorder, TelemetryRecorder
from .plan import CampaignPlan
from .policy import SupervisionReport
from .pool import SerialExecutor, ShardExecutor
from .shard import ShardResult, TrialFn
from .store import ResultStore

__all__ = ["Campaign", "CampaignResult", "EngineError",
           "PartialCampaignResult", "run_campaign"]


class EngineError(Exception):
    """Raised when a campaign cannot run or resume coherently."""


@dataclass(frozen=True)
class CampaignResult:
    """A finished campaign: merged trial results plus provenance."""

    plan: CampaignPlan
    results: tuple[TrialResult, ...]
    executed_shards: tuple[int, ...]
    """Shards actually run by this invocation, in completion order."""

    resumed_shards: tuple[int, ...]
    """Shards recovered from the result store instead of re-run."""

    def collect(self, key: str) -> np.ndarray:
        """One scalar metric across all trials, in index order."""
        return MonteCarloRunner.collect(list(self.results), key)

    def summary(self, key: str) -> dict[str, float]:
        """Mean / median / percentiles of ``key`` across trials."""
        return MonteCarloRunner.summary(list(self.results), key)

    @property
    def num_trials(self) -> int:
        """Total trials in the campaign."""
        return len(self.results)

    @property
    def is_partial(self) -> bool:
        """Whether any planned shard is missing from the merge."""
        return False


@dataclass(frozen=True)
class PartialCampaignResult(CampaignResult):
    """A campaign that completed *minus* its quarantined shards.

    Produced instead of dying when a supervised executor (policy
    ``on_failure="quarantine"`` or an unrecovered ``"degrade"``) gave
    up on some shards: every surviving trial is merged in index order
    exactly as in a full :class:`CampaignResult`, and the holes are
    explicit — :attr:`quarantined_shards` names the shards that never
    succeeded, :attr:`missing_trials` the trial indices they cover.

    Because the plan (and every seed in it) is unchanged, re-running
    the campaign against the same result store retries *only* the
    quarantined shards, and a later full result is byte-identical to
    one that never saw a fault.
    """

    quarantined_shards: tuple[int, ...] = ()
    missing_trials: tuple[int, ...] = ()

    @property
    def is_partial(self) -> bool:
        """Always true: some planned shards are missing."""
        return True


class Campaign:
    """One sharded, resumable Monte-Carlo campaign."""

    def __init__(self, trial_fn: TrialFn, num_trials: int,
                 master_seed: int = 0, num_shards: int = 1,
                 executor: ShardExecutor | None = None,
                 store: ResultStore | str | Path | None = None,
                 telemetry: TelemetryRecorder | None = None) -> None:
        self.trial_fn = trial_fn
        self.plan = CampaignPlan.build(master_seed=master_seed,
                                       num_trials=num_trials,
                                       num_shards=num_shards)
        self.executor: ShardExecutor = (executor if executor is not None
                                        else SerialExecutor())
        self.store = (store if isinstance(store, ResultStore)
                      or store is None else ResultStore(store))
        self.telemetry = (telemetry if telemetry is not None
                          else NullRecorder())

    def run(self,
            progress: Callable[[ShardResult], None] | None = None
            ) -> CampaignResult:
        """Execute (or resume) the campaign and merge the results.

        ``progress`` (optional) fires with each :class:`ShardResult`
        the moment it completes — after it has been journaled, so a
        progress consumer never sees a shard the store could lose.
        Raises :class:`EngineError` when a telemetry-enabled campaign
        resumes from a journal written without telemetry (the merged
        export would silently miss the resumed trials).

        Under a supervised executor (one exposing a
        :class:`~repro.engine.policy.SupervisionReport` as
        ``last_report``, e.g.
        :class:`~repro.engine.supervisor.SupervisedPool`), failed
        attempts are journaled to the store as they happen, and a run
        whose shards were quarantined returns an explicit
        :class:`PartialCampaignResult` instead of raising.
        """
        record_telemetry = self.telemetry.enabled
        completed: dict[int, ShardResult] = {}
        if self.store is not None:
            completed = self.store.load_or_create(self.plan)
            attach = getattr(self.executor, "attach_failure_sink", None)
            if callable(attach):
                attach(self.store.record_attempt)
        resumed = tuple(sorted(completed))
        if record_telemetry:
            for shard_id in resumed:
                if completed[shard_id].telemetry is None:
                    raise EngineError(
                        f"shard {shard_id} in the result store was "
                        "journaled without telemetry; re-run the "
                        "campaign untraced or start a fresh store")
        pending = [shard for shard in self.plan.shards
                   if shard.shard_id not in completed]
        executed: list[int] = []
        for result in self.executor.run_shards(
                self.trial_fn, pending, self.plan.num_trials,
                record_telemetry=record_telemetry):
            if self.store is not None:
                self.store.record_shard(result)
            completed[result.shard_id] = result
            executed.append(result.shard_id)
            if progress is not None:
                progress(result)
        quarantined = self._quarantined_shards()
        if quarantined and self.store is not None:
            self.store.record_quarantine(quarantined)
        return self._merge(completed, tuple(executed), resumed,
                           quarantined)

    def _quarantined_shards(self) -> tuple[int, ...]:
        """Shards a supervised executor gave up on, per its report."""
        report = getattr(self.executor, "last_report", None)
        if not isinstance(report, SupervisionReport):
            return ()
        return report.abandoned

    def _merge(self, completed: dict[int, ShardResult],
               executed: tuple[int, ...], resumed: tuple[int, ...],
               quarantined: tuple[int, ...] = ()
               ) -> CampaignResult:
        """Deterministic merge: shard order restores serial order.

        Shards missing *without* being quarantined mean a broken
        executor or a mismatched store and still raise; quarantined
        shards produce an explicit :class:`PartialCampaignResult`.
        """
        missing = [shard.shard_id for shard in self.plan.shards
                   if shard.shard_id not in completed]
        unexplained = [shard_id for shard_id in missing
                       if shard_id not in quarantined]
        if unexplained:
            raise EngineError(
                f"campaign incomplete: shards {unexplained} never "
                "finished")
        results: list[TrialResult] = []
        expected_indices: list[int] = []
        for shard in self.plan.shards:
            if shard.shard_id not in completed:
                continue
            expected_indices.extend(shard.indices)
            shard_result = completed[shard.shard_id]
            for index, seed, values in shard_result.trials:
                results.append(TrialResult(index=index, seed=seed,
                                           values=values))
            snapshot = shard_result.telemetry
            if self.telemetry.enabled and snapshot is not None:
                self.telemetry.absorb(snapshot)
        results.sort(key=lambda r: r.index)
        if [r.index for r in results] != sorted(expected_indices):
            raise EngineError(
                "merged trial indices do not cover the completed "
                "shards' planned trials; the result store does not "
                "match this campaign")
        if not missing:
            return CampaignResult(plan=self.plan,
                                  results=tuple(results),
                                  executed_shards=executed,
                                  resumed_shards=resumed)
        missing_trials = tuple(
            index for shard in self.plan.shards
            if shard.shard_id not in completed
            for index in shard.indices)
        return PartialCampaignResult(
            plan=self.plan, results=tuple(results),
            executed_shards=executed, resumed_shards=resumed,
            quarantined_shards=tuple(sorted(missing)),
            missing_trials=missing_trials)


def run_campaign(trial_fn: TrialFn, num_trials: int,
                 master_seed: int = 0, num_shards: int = 1,
                 executor: ShardExecutor | None = None,
                 store: ResultStore | str | Path | None = None,
                 telemetry: TelemetryRecorder | None = None,
                 ) -> CampaignResult:
    """One-call convenience wrapper around :class:`Campaign`.

    Builds the campaign and runs it; see :class:`Campaign` for the
    parameter semantics.
    """
    return Campaign(trial_fn, num_trials, master_seed=master_seed,
                    num_shards=num_shards, executor=executor,
                    store=store, telemetry=telemetry).run()
