"""The supervision data model: policy knobs, failures, and the report.

A long-running campaign service has to assume its workers misbehave the
same way the simulated radio link does — they crash, hang, run slow, or
hand back garbage.  This module is the *vocabulary* of that failure
model, deliberately free of any execution machinery (the supervisor in
:mod:`repro.engine.supervisor` implements it; the
:class:`~repro.engine.store.ResultStore` journals it):

* :class:`SupervisionPolicy` — how many attempts a shard gets, how the
  deterministic exponential backoff between attempts is derived, and
  what deadline an attempt runs under (absolute, adaptive from
  completed-shard runtime percentiles, or both);
* :class:`ShardFailure` — one failed attempt, classified as
  ``"error"`` (the worker raised), ``"timeout"`` (the attempt outlived
  its deadline) or ``"invalid"`` (the payload failed validation);
* :class:`SupervisionReport` — what one supervised run did: attempts
  launched, retries, quarantined shard ids, shards recovered by the
  in-process degrade fallback, and the full failure log.

Nothing here consults a clock or an RNG: backoff is a pure function of
the attempt number, so a retried campaign replays identically.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Literal

__all__ = [
    "FAILURE_KINDS",
    "ON_FAILURE_MODES",
    "FailureKind",
    "OnFailure",
    "ShardFailure",
    "SupervisionPolicy",
    "SupervisionReport",
]

OnFailure = Literal["fail", "quarantine", "degrade"]
"""What to do with a shard that exhausts its attempts: ``"fail"`` kills
the campaign (the pre-supervision behaviour), ``"quarantine"`` sets the
shard aside and completes the campaign as an explicit partial result,
``"degrade"`` quarantines and then re-runs quarantined shards on the
in-process serial path as a last resort."""

ON_FAILURE_MODES: tuple[OnFailure, ...] = ("fail", "quarantine", "degrade")

FailureKind = Literal["error", "timeout", "invalid"]
"""How an attempt failed: the worker raised, outlived its deadline, or
returned a payload that failed validation."""

FAILURE_KINDS: tuple[FailureKind, ...] = ("error", "timeout", "invalid")


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard attempt, as the supervisor classified it."""

    shard_id: int
    attempt: int
    """1-based attempt number (attempt 1 is the first try)."""

    kind: FailureKind
    detail: str
    """Human-readable cause — an exception repr or a validation message."""


@dataclass(frozen=True)
class SupervisionReport:
    """What one supervised execution did, beyond the results it yielded."""

    attempts: int
    """Total shard attempts launched (successes included)."""

    retries: int
    """Attempts beyond each shard's first."""

    quarantined: tuple[int, ...]
    """Shard ids set aside after exhausting their attempts."""

    degraded: tuple[int, ...]
    """Quarantined shard ids recovered by the in-process fallback."""

    failures: tuple[ShardFailure, ...]
    """Every failed attempt, in the order the supervisor observed them."""

    @property
    def abandoned(self) -> tuple[int, ...]:
        """Quarantined shards the degrade fallback did *not* recover."""
        return tuple(s for s in self.quarantined if s not in self.degraded)


@dataclass(frozen=True)
class SupervisionPolicy:
    """Retry, backoff, deadline, and failure-handling knobs.

    The defaults are conservative: three attempts per shard, a short
    deterministic exponential backoff, no absolute deadline (set
    ``shard_timeout_s`` to arm one), adaptive deadlines armed once
    ``adaptive_min_samples`` shards have completed, and quarantine —
    not campaign death — when a shard exhausts its attempts.
    """

    max_attempts: int = 3
    """Attempts per shard before it is quarantined (or the campaign
    fails, under ``on_failure="fail"``)."""

    backoff_base_s: float = 0.05
    """Backoff after the first failed attempt."""

    backoff_factor: float = 2.0
    """Multiplier applied per subsequent failed attempt."""

    backoff_max_s: float = 5.0
    """Hard cap on any single backoff."""

    shard_timeout_s: float | None = None
    """Absolute per-attempt deadline in wall seconds; ``None`` disables
    the absolute deadline (adaptive deadlines may still apply)."""

    adaptive_timeout_factor: float | None = 8.0
    """An attempt may take at most this multiple of the
    ``adaptive_timeout_percentile`` of completed-shard runtimes;
    ``None`` disables adaptive deadlines."""

    adaptive_timeout_percentile: float = 95.0
    """Percentile of completed-shard runtimes the adaptive deadline
    scales from."""

    adaptive_min_samples: int = 3
    """Completed shards required before the adaptive deadline arms
    (too few samples would make the estimate wild)."""

    adaptive_floor_s: float = 0.05
    """Lower bound on the adaptive deadline, so a burst of near-instant
    shards cannot set a deadline that kills every normal attempt."""

    on_failure: OnFailure = "quarantine"
    """Campaign behaviour when a shard exhausts its attempts."""

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("a shard needs at least one attempt")
        if self.backoff_base_s < 0.0:
            raise ValueError("backoff_base_s cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1 (backoff "
                             "never shrinks)")
        if self.backoff_max_s < 0.0:
            raise ValueError("backoff_max_s cannot be negative")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0.0:
            raise ValueError("shard_timeout_s must be positive (or None "
                             "to disable)")
        if self.adaptive_timeout_factor is not None \
                and self.adaptive_timeout_factor < 1.0:
            raise ValueError("adaptive_timeout_factor must be >= 1: a "
                             "deadline below the observed runtime "
                             "percentile would kill healthy shards")
        if not 0.0 < self.adaptive_timeout_percentile <= 100.0:
            raise ValueError("adaptive_timeout_percentile must be in "
                             "(0, 100]")
        if self.adaptive_min_samples < 1:
            raise ValueError("adaptive_min_samples must be at least 1")
        if self.adaptive_floor_s < 0.0:
            raise ValueError("adaptive_floor_s cannot be negative")
        if self.on_failure not in ON_FAILURE_MODES:
            raise ValueError(
                f"on_failure must be one of {ON_FAILURE_MODES}, "
                f"not {self.on_failure!r}")

    def backoff_s(self, attempt: int) -> float:
        """Delay before retrying after failed attempt ``attempt`` (1-based).

        Deterministic exponential backoff: ``base * factor**(attempt-1)``
        capped at ``backoff_max_s``.  No jitter — two runs of the same
        campaign retry on the same schedule, which is what keeps a
        supervised campaign replayable.
        """
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        delay = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        return min(delay, self.backoff_max_s)

    def deadline_s(self, completed_runtimes: Sequence[float]
                   ) -> float | None:
        """Effective per-attempt deadline given completed-shard runtimes.

        The tighter of the absolute ``shard_timeout_s`` and the adaptive
        deadline (``adaptive_timeout_factor`` times the configured
        percentile of ``completed_runtimes``, once at least
        ``adaptive_min_samples`` shards have finished, floored at
        ``adaptive_floor_s``).  ``None`` when neither is armed.
        """
        candidates: list[float] = []
        if self.shard_timeout_s is not None:
            candidates.append(self.shard_timeout_s)
        if self.adaptive_timeout_factor is not None \
                and len(completed_runtimes) >= self.adaptive_min_samples:
            candidates.append(max(
                self.adaptive_floor_s,
                self.adaptive_timeout_factor
                * _percentile(completed_runtimes,
                              self.adaptive_timeout_percentile)))
        return min(candidates) if candidates else None


def _percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile over ``values`` (no numpy dependency so
    the policy stays a pure-stdlib data model)."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      round(pct / 100.0 * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class _ReportBuilder:
    """Mutable accumulator the supervisor fills while it runs.

    Lives here (rather than in the supervisor) so everything that
    defines the shape of a report is in one module; ``build()`` freezes
    it into the public :class:`SupervisionReport`.
    """

    attempts: int = 0
    retries: int = 0
    quarantined: list[int] = field(default_factory=list)
    degraded: list[int] = field(default_factory=list)
    failures: list[ShardFailure] = field(default_factory=list)

    def build(self) -> SupervisionReport:
        """Freeze the accumulated state into a report."""
        return SupervisionReport(
            attempts=self.attempts, retries=self.retries,
            quarantined=tuple(sorted(self.quarantined)),
            degraded=tuple(sorted(self.degraded)),
            failures=tuple(self.failures))
