"""Deterministic campaign plans: who runs which trial with which seed.

A :class:`CampaignPlan` is the *complete* description of a Monte-Carlo
campaign's randomness and partitioning, fixed before any trial runs:

* per-trial seeds are spawned from one ``numpy`` ``SeedSequence`` rooted
  at the master seed — the exact derivation
  :meth:`repro.sim.runner.MonteCarloRunner.child_seeds` uses, so an
  engine campaign and a plain serial sweep see identical RNG streams;
* trials are partitioned into contiguous, balanced shards in index
  order, so merging shard outputs back in shard order recovers the
  serial trial order with a plain concatenation;
* the plan's SHA-256 :meth:`~CampaignPlan.fingerprint` binds a result
  store to the exact campaign that produced it — a resume against a
  journal written by a different seed, trial count or shard layout is
  rejected instead of silently mixing results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

__all__ = ["CampaignPlan", "ShardSpec", "TrialSpec"]


@dataclass(frozen=True)
class TrialSpec:
    """One trial: its global index and the seed of its private RNG."""

    index: int
    seed: int


@dataclass(frozen=True)
class ShardSpec:
    """A contiguous block of trials executed as one unit of work."""

    shard_id: int
    trials: tuple[TrialSpec, ...]

    @property
    def indices(self) -> tuple[int, ...]:
        """The global trial indices this shard covers."""
        return tuple(t.index for t in self.trials)


@dataclass(frozen=True)
class CampaignPlan:
    """The frozen layout of one campaign: seeds and shard partition."""

    master_seed: int
    num_trials: int
    num_shards: int
    shards: tuple[ShardSpec, ...]

    @staticmethod
    def child_seeds(master_seed: int, count: int) -> list[int]:
        """Per-trial seeds, identical to ``MonteCarloRunner.child_seeds``."""
        if count < 0:
            raise ValueError("count cannot be negative")
        ss = np.random.SeedSequence(master_seed)
        return [int(s.generate_state(1)[0]) for s in ss.spawn(count)]

    @classmethod
    def build(cls, master_seed: int = 0, num_trials: int = 1,
              num_shards: int = 1) -> CampaignPlan:
        """Partition ``num_trials`` seeded trials into balanced shards.

        ``num_shards`` is clamped to the trial count (no empty shards);
        the first ``num_trials % shards`` shards carry one extra trial,
        so shard sizes differ by at most one.
        """
        if num_trials < 0:
            raise ValueError("num_trials cannot be negative")
        if num_shards < 1:
            raise ValueError("a campaign needs at least one shard")
        seeds = cls.child_seeds(master_seed, num_trials)
        trials = tuple(TrialSpec(index=i, seed=s)
                       for i, s in enumerate(seeds))
        effective = min(num_shards, num_trials) if num_trials else 0
        shards: list[ShardSpec] = []
        start = 0
        for shard_id in range(effective):
            size = num_trials // effective \
                + (1 if shard_id < num_trials % effective else 0)
            shards.append(ShardSpec(shard_id=shard_id,
                                    trials=trials[start:start + size]))
            start += size
        return cls(master_seed=master_seed, num_trials=num_trials,
                   num_shards=effective, shards=tuple(shards))

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form of the whole plan.

        Covers every seed and the shard partition, so any change to the
        master seed, trial count or shard layout produces a different
        fingerprint — the key a :class:`~repro.engine.store.ResultStore`
        validates on resume.
        """
        state = {
            "master_seed": self.master_seed,
            "num_trials": self.num_trials,
            "num_shards": self.num_shards,
            "shards": [[shard.shard_id,
                        [[t.index, t.seed] for t in shard.trials]]
                       for shard in self.shards],
        }
        blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()
