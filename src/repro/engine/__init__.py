"""``repro.engine`` — sharded, resumable Monte-Carlo campaign execution.

Every paper figure is a Monte-Carlo sweep (30 placements in §9.3, 100
runs in §9.5), and the serial
:class:`~repro.sim.runner.MonteCarloRunner` bounds them all to one core.
This package is the scale-out layer: it turns any
``trial_fn(rng, index) -> dict`` into a campaign that is

* **sharded** — a :class:`CampaignPlan` spawns every trial's seed from
  one ``SeedSequence`` (the runner's exact derivation) and partitions
  trials into contiguous shards;
* **parallel** — a :class:`ProcessPool` fans shards out across worker
  processes, with :class:`SerialExecutor` as the in-process reference;
* **crash-safe** — a :class:`ResultStore` journals each completed shard
  to JSONL with SHA-256 integrity hashes, so a killed campaign resumes
  executing only the unfinished shards;
* **deterministic** — the merge restores serial trial order and absorbs
  per-shard telemetry snapshots in shard order, making aggregate
  results and telemetry exports byte-identical to a serial run for the
  same master seed and plan;
* **supervised** — a :class:`SupervisedPool` survives worker crashes,
  hangs and corrupt payloads: per-attempt deadlines (absolute and
  adaptive), deterministic exponential backoff, validation of every
  payload against the plan, quarantine of poison shards (the campaign
  completes as an explicit :class:`PartialCampaignResult`), and an
  optional in-process degrade fallback — chaos-tested by the seeded
  worker-fault harness in :mod:`repro.engine.faults`.

Usage
-----
>>> from repro.engine import ProcessPool, run_campaign
>>> def trial(rng, index):
...     return {"x": float(rng.uniform())}
>>> result = run_campaign(trial, num_trials=100, master_seed=7,
...                       num_shards=8, executor=ProcessPool(jobs=4))
>>> result.summary("x")["mean"]  # doctest: +SKIP
0.49...

See ``docs/scaling.md`` for the campaign model, determinism guarantees
and resume semantics.
"""

from .campaign import (
    Campaign,
    CampaignResult,
    EngineError,
    PartialCampaignResult,
    run_campaign,
)
from .faults import (
    WORKER_FAULT_KINDS,
    InjectedWorkerCrash,
    WorkerFault,
    WorkerFaultSchedule,
    corrupt_shard_result,
)
from .plan import CampaignPlan, ShardSpec, TrialSpec
from .policy import (
    FAILURE_KINDS,
    ON_FAILURE_MODES,
    ShardFailure,
    SupervisionPolicy,
    SupervisionReport,
)
from .pool import (
    ProcessPool,
    SerialExecutor,
    ShardExecutor,
    default_job_count,
)
from .shard import ShardResult, TrialFn, run_shard
from .store import STORE_SCHEMA_VERSION, ResultStore, StoreError
from .supervisor import (
    ShardSupervisor,
    ShardValidationError,
    SupervisedPool,
    WorkBackend,
    seed_fingerprint,
    validate_shard_result,
)

__all__ = [
    "Campaign",
    "CampaignPlan",
    "CampaignResult",
    "EngineError",
    "FAILURE_KINDS",
    "InjectedWorkerCrash",
    "ON_FAILURE_MODES",
    "PartialCampaignResult",
    "ProcessPool",
    "ResultStore",
    "STORE_SCHEMA_VERSION",
    "SerialExecutor",
    "ShardExecutor",
    "ShardFailure",
    "ShardResult",
    "ShardSpec",
    "ShardSupervisor",
    "ShardValidationError",
    "StoreError",
    "SupervisedPool",
    "SupervisionPolicy",
    "SupervisionReport",
    "TrialFn",
    "TrialSpec",
    "WORKER_FAULT_KINDS",
    "WorkBackend",
    "WorkerFault",
    "WorkerFaultSchedule",
    "corrupt_shard_result",
    "default_job_count",
    "run_campaign",
    "run_shard",
    "seed_fingerprint",
    "validate_shard_result",
]
