"""Supervised shard execution: deadlines, retries, quarantine, degrade.

:class:`~repro.engine.pool.ProcessPool` assumes workers never crash,
hang, or return garbage — the first exception anywhere kills the whole
campaign iterator.  This module is the supervision layer that removes
that assumption while preserving the engine's determinism contract:

* every attempt runs under a **deadline** — the tighter of the policy's
  absolute ``shard_timeout_s`` and an adaptive bound derived from
  completed-shard runtime percentiles
  (:meth:`~repro.engine.policy.SupervisionPolicy.deadline_s`);
* a failed attempt (worker raised, deadline expired, or the payload
  failed validation) is **retried** after a deterministic exponential
  backoff, up to ``max_attempts``;
* results are **validated on the way in** — shard id, trial count, and
  the seed fingerprint must match the plan, so a corrupt worker payload
  is rejected and retried instead of merged;
* a shard that exhausts its attempts is **quarantined**: under
  ``on_failure="quarantine"`` the campaign completes as an explicit
  :class:`~repro.engine.campaign.PartialCampaignResult`; under
  ``"degrade"`` quarantined shards get one last in-process serial
  attempt; under ``"fail"`` the campaign dies (the old behaviour, but
  with a diagnosable :class:`~repro.engine.campaign.EngineError`).

Determinism: supervision never touches seeds or merge order.  A retry
re-runs the *same* :class:`~repro.engine.plan.ShardSpec` — same seeds,
same trial indices — and the campaign merge still sorts by shard id, so
a supervised campaign in which no fault fires is byte-identical to the
:class:`~repro.engine.pool.SerialExecutor` reference.

The wall clock appears in exactly one place (the process backend's
``now_s``/``sleep``): deadlines and backoff are *executor* concerns,
measured in real seconds, and never leak into results or sim-time
telemetry.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time
from collections import deque
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import Protocol

from ..telemetry import NullRecorder, TelemetryRecorder
from .campaign import EngineError
from .faults import WorkerFaultSchedule
from .plan import ShardSpec
from .policy import (
    FailureKind,
    ShardFailure,
    SupervisionPolicy,
    SupervisionReport,
    _ReportBuilder,
)
from .pool import default_job_count
from .shard import ShardResult, TrialFn, run_shard

__all__ = [
    "ShardSupervisor",
    "ShardValidationError",
    "SupervisedPool",
    "SupervisionReport",
    "WorkBackend",
    "seed_fingerprint",
    "validate_shard_result",
]


class ShardValidationError(EngineError):
    """A worker payload does not match the shard the plan describes."""


def seed_fingerprint(pairs: Sequence[tuple[int, int]]) -> str:
    """SHA-256 over canonical ``(index, seed)`` pairs.

    The same hash-the-canonical-JSON pattern the
    :class:`~repro.engine.store.ResultStore` uses; comparing fingerprints
    (rather than echoing every seed) keeps validation errors and journal
    records compact at million-trial scale.
    """
    blob = json.dumps([[index, seed] for index, seed in pairs],
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def validate_shard_result(result: ShardResult, shard: ShardSpec) -> None:
    """Reject a worker payload that does not match its shard spec.

    Checks, in order: shard id, trial count, the seed fingerprint over
    ``(index, seed)`` pairs, and that every trial's values landed as a
    dict.  Raises :class:`ShardValidationError` on the first mismatch —
    the supervisor treats that as a failed (``"invalid"``) attempt, so
    a corrupt payload is retried, never merged.
    """
    if result.shard_id != shard.shard_id:
        raise ShardValidationError(
            f"worker returned shard {result.shard_id} for shard "
            f"{shard.shard_id}")
    if len(result.trials) != len(shard.trials):
        raise ShardValidationError(
            f"shard {shard.shard_id} returned {len(result.trials)} "
            f"trials, planned {len(shard.trials)}")
    expected = seed_fingerprint([(t.index, t.seed) for t in shard.trials])
    actual = seed_fingerprint([(index, seed)
                               for index, seed, _ in result.trials])
    if actual != expected:
        raise ShardValidationError(
            f"shard {shard.shard_id} seed fingerprint mismatch: "
            f"planned {expected[:12]}…, got {actual[:12]}… (a worker "
            "perturbed trial indices or seeds)")
    for index, _, values in result.trials:
        if not isinstance(values, dict):
            raise ShardValidationError(
                f"shard {shard.shard_id} trial {index} values are "
                f"{type(values).__name__}, not dict")


@dataclass(frozen=True)
class AttemptCompletion:
    """One finished attempt as a backend reports it back."""

    token: object
    result: ShardResult | None = None
    error: BaseException | None = None


class WorkBackend(Protocol):
    """Where supervised attempts actually run.

    The supervisor is a pure scheduling loop over this seam: the
    production implementation is a process pool on the wall clock; tests
    drive the same loop with a scripted backend on a virtual clock.
    """

    @property
    def slots(self) -> int:
        """How many attempts may run concurrently."""
        ...

    def now_s(self) -> float:
        """The backend's monotonic clock (virtual in tests)."""
        ...

    def submit(self, shard: ShardSpec, attempt: int) -> object:
        """Start one attempt; return an opaque completion token."""
        ...

    def wait(self, timeout_s: float | None) -> list[AttemptCompletion]:
        """Block up to ``timeout_s`` for completions (``None`` = forever)."""
        ...

    def sleep(self, duration_s: float) -> None:
        """Idle with nothing running (e.g. all retries backing off)."""
        ...

    def abandon(self, token: object) -> None:
        """Stop caring about an attempt that outlived its deadline."""
        ...

    def run_inline(self, shard: ShardSpec) -> ShardResult:
        """The degrade fallback: run ``shard`` in-process, unfaulted."""
        ...

    def close(self) -> None:
        """Release backend resources; called exactly once per run."""
        ...


class _ProcessBackend:
    """The production backend: a process pool on the wall clock.

    A timed-out attempt cannot be preempted mid-task (a
    ``ProcessPoolExecutor`` future stops being cancellable once it
    starts), so ``abandon`` cancels when possible and otherwise just
    stops listening: the stuck task keeps its worker busy until it
    returns, and its eventual (late) result is dropped.  The supervisor
    keeps submitting regardless — the pool queues excess attempts — so
    a hung worker costs throughput, never correctness.
    """

    def __init__(self, jobs: int, trial_fn: TrialFn, of_total: int,
                 record_telemetry: bool,
                 faults: WorkerFaultSchedule | None) -> None:
        self.jobs = jobs
        self.trial_fn = trial_fn
        self.of_total = of_total
        self.record_telemetry = record_telemetry
        self.faults = faults
        self._executor = ProcessPoolExecutor(max_workers=jobs)
        self._live: set[Future[ShardResult]] = set()

    @property
    def slots(self) -> int:
        return self.jobs

    def now_s(self) -> float:
        # The one sanctioned wall-clock read in the engine: deadlines
        # supervise real worker processes, not simulated time.
        return time.monotonic()  # reprolint: disable=DET001

    def submit(self, shard: ShardSpec, attempt: int) -> object:
        future = self._executor.submit(
            _execute_attempt, self.trial_fn, shard, self.of_total,
            self.record_telemetry, attempt, self.faults)
        self._live.add(future)
        return future

    def wait(self, timeout_s: float | None) -> list[AttemptCompletion]:
        done, _ = futures_wait(self._live, timeout=timeout_s,
                               return_when=FIRST_COMPLETED)
        completions: list[AttemptCompletion] = []
        for future in done:
            self._live.discard(future)
            # A worker failure arrives as the future's exception; keep
            # it as data for the retry ledger instead of letting it
            # propagate (narrowing here would silently re-kill the
            # campaign on any fault kind we did not anticipate).
            try:
                completions.append(AttemptCompletion(
                    token=future, result=future.result()))
            except Exception as exc:  # reprolint: disable=EXC001
                completions.append(AttemptCompletion(
                    token=future, error=exc))
        return completions

    def sleep(self, duration_s: float) -> None:
        time.sleep(duration_s)

    def abandon(self, token: object) -> None:
        if isinstance(token, Future):
            token.cancel()
            self._live.discard(token)

    def run_inline(self, shard: ShardSpec) -> ShardResult:
        return run_shard(self.trial_fn, shard, self.of_total,
                         record_telemetry=self.record_telemetry)

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


def _execute_attempt(trial_fn: TrialFn, shard: ShardSpec, of_total: int,
                     record_telemetry: bool, attempt: int,
                     faults: WorkerFaultSchedule | None) -> ShardResult:
    """Worker-process entry point: apply scripted faults, run the shard.

    With ``faults=None`` (or a schedule that skips this attempt) this is
    exactly :func:`~repro.engine.shard.run_shard` — the fault-free
    supervised path computes the same bytes as the unsupervised one.
    """
    if faults is not None:
        faults.apply_before(shard.shard_id, attempt)
    result = run_shard(trial_fn, shard, of_total,
                       record_telemetry=record_telemetry)
    if faults is not None:
        result = faults.apply_after(result, attempt)
    return result


@dataclass
class _Running:
    """Book-keeping for one in-flight attempt."""

    shard: ShardSpec
    attempt: int
    started_s: float
    deadline_s: float | None


class ShardSupervisor:
    """The supervision loop, backend-agnostic.

    Drives a :class:`WorkBackend` through a set of shards under a
    :class:`~repro.engine.policy.SupervisionPolicy`, yielding each
    validated :class:`~repro.engine.shard.ShardResult` as it lands.
    After the iterator is exhausted (or the run dies), :attr:`report`
    holds the :class:`~repro.engine.policy.SupervisionReport`.
    """

    def __init__(self, policy: SupervisionPolicy,
                 telemetry: TelemetryRecorder | None = None,
                 failure_sink: Callable[[ShardFailure], None] | None = None
                 ) -> None:
        self.policy = policy
        self.telemetry = (telemetry if telemetry is not None
                          else NullRecorder())
        self.failure_sink = failure_sink
        self.report: SupervisionReport | None = None

    def run(self, backend: WorkBackend, shards: Sequence[ShardSpec]
            ) -> Iterator[ShardResult]:
        """Supervise ``shards`` on ``backend``; yield validated results."""
        ledger = _ReportBuilder()
        self.report = None
        tel = self.telemetry
        span = tel.begin("engine.supervisor.run",
                         shards=len(shards)) if tel.enabled else None
        try:
            yield from self._supervise(backend, shards, ledger)
        finally:
            self.report = ledger.build()
            if span is not None:
                tel.end(span)
            backend.close()

    def _supervise(self, backend: WorkBackend,
                   shards: Sequence[ShardSpec],
                   ledger: _ReportBuilder) -> Iterator[ShardResult]:
        policy = self.policy
        tel = self.telemetry
        ready: deque[tuple[ShardSpec, int]] = deque(
            (shard, 1) for shard in shards)
        retry: list[tuple[float, int, ShardSpec, int]] = []
        retry_seq = 0
        running: dict[object, _Running] = {}
        runtimes: list[float] = []
        quarantined: dict[int, ShardSpec] = {}

        def fail_attempt(shard: ShardSpec, attempt: int,
                         kind: FailureKind, detail: str, now: float
                         ) -> None:
            nonlocal retry_seq
            failure = ShardFailure(shard_id=shard.shard_id,
                                   attempt=attempt, kind=kind,
                                   detail=detail)
            ledger.failures.append(failure)
            if self.failure_sink is not None:
                self.failure_sink(failure)
            if tel.enabled:
                tel.count("engine.supervisor.failures")
                if kind == "timeout":
                    tel.count("engine.shard.timeouts")
                tel.event("engine.supervisor.failure",
                          shard=shard.shard_id, attempt=attempt,
                          kind=kind)
            if attempt >= policy.max_attempts:
                if policy.on_failure == "fail":
                    raise EngineError(
                        f"shard {shard.shard_id} failed "
                        f"{policy.max_attempts} attempt(s); last "
                        f"failure: {kind} ({detail})")
                quarantined[shard.shard_id] = shard
                ledger.quarantined.append(shard.shard_id)
                tel.count("engine.shard.quarantined")
            else:
                ledger.retries += 1
                tel.count("engine.shard.retries")
                retry_seq += 1
                heapq.heappush(
                    retry, (now + policy.backoff_s(attempt),
                            retry_seq, shard, attempt + 1))

        while ready or retry or running:
            now = backend.now_s()
            while retry and retry[0][0] <= now:
                _, _, shard, attempt = heapq.heappop(retry)
                ready.append((shard, attempt))
            while ready and len(running) < backend.slots:
                shard, attempt = ready.popleft()
                timeout = policy.deadline_s(runtimes)
                token = backend.submit(shard, attempt)
                running[token] = _Running(
                    shard=shard, attempt=attempt, started_s=now,
                    deadline_s=None if timeout is None
                    else now + timeout)
                ledger.attempts += 1
                tel.count("engine.supervisor.attempts")
            wait_s = self._wait_budget(running, retry, backend, now)
            if running:
                completions = backend.wait(wait_s)
            else:
                # Nothing in flight: everything is backing off.  Idle
                # until the earliest retry is due.
                backend.sleep(wait_s if wait_s is not None else 0.0)
                completions = []
            now = backend.now_s()
            for completion in completions:
                state = running.pop(completion.token)
                if completion.error is not None:
                    fail_attempt(state.shard, state.attempt, "error",
                                 repr(completion.error), now)
                    continue
                assert completion.result is not None
                try:
                    validate_shard_result(completion.result, state.shard)
                except ShardValidationError as exc:
                    fail_attempt(state.shard, state.attempt, "invalid",
                                 str(exc), now)
                    continue
                runtimes.append(max(0.0, now - state.started_s))
                if tel.enabled:
                    # Wall-clock attempt runtime: the supervisor's own
                    # recorder is wall-time territory (it measures the
                    # executor, not the simulation) and is kept apart
                    # from sim-time campaign telemetry for exactly that
                    # reason.
                    tel.observe("engine.supervisor.attempt_runtime_s",
                                runtimes[-1], least=1e-3)
                yield completion.result
            expired = [token for token, state in running.items()
                       if state.deadline_s is not None
                       and now >= state.deadline_s]
            for token in expired:
                state = running.pop(token)
                backend.abandon(token)
                budget = (state.deadline_s or now) - state.started_s
                fail_attempt(
                    state.shard, state.attempt, "timeout",
                    f"attempt exceeded its {budget:.3f} s deadline", now)

        if quarantined and policy.on_failure == "degrade":
            yield from self._degrade(backend, quarantined, ledger)

    @staticmethod
    def _wait_budget(running: dict[object, _Running],
                     retry: list[tuple[float, int, ShardSpec, int]],
                     backend: WorkBackend, now: float) -> float | None:
        """How long the loop may block before it must act again.

        Bounded by the earliest running-attempt deadline and, when a
        slot is free for it, the earliest pending retry.  ``None``
        means block until a completion arrives.
        """
        bounds: list[float] = []
        deadlines = [state.deadline_s for state in running.values()
                     if state.deadline_s is not None]
        if deadlines:
            bounds.append(min(deadlines) - now)
        if retry and len(running) < backend.slots:
            bounds.append(retry[0][0] - now)
        if not bounds:
            return None
        return max(0.0, min(bounds))

    def _degrade(self, backend: WorkBackend,
                 quarantined: dict[int, ShardSpec],
                 ledger: _ReportBuilder) -> Iterator[ShardResult]:
        """Last resort: re-run quarantined shards in-process, serially.

        The fallback bypasses the worker-fault harness (it is not a
        worker) but not validation — a shard whose trial function is
        genuinely broken stays quarantined.
        """
        tel = self.telemetry
        for shard_id in sorted(quarantined):
            shard = quarantined[shard_id]
            # The fallback must outlive any trial-function failure: a
            # broken shard stays quarantined instead of killing the
            # campaign we just rescued.
            try:
                result = backend.run_inline(shard)
                validate_shard_result(result, shard)
            except Exception as exc:  # reprolint: disable=EXC001
                failure = ShardFailure(
                    shard_id=shard_id,
                    attempt=self.policy.max_attempts + 1,
                    kind="error", detail=f"degrade fallback: {exc!r}")
                ledger.failures.append(failure)
                if self.failure_sink is not None:
                    self.failure_sink(failure)
                continue
            ledger.degraded.append(shard_id)
            if tel.enabled:
                tel.count("engine.supervisor.degraded")
                tel.event("engine.supervisor.degraded", shard=shard_id)
            yield result


class SupervisedPool:
    """A fault-tolerant :class:`~repro.engine.pool.ShardExecutor`.

    Drop-in for :class:`~repro.engine.pool.ProcessPool`: same
    ``run_shards`` contract, same determinism (identical results when
    no fault fires), but worker crashes, hangs and corrupt payloads are
    retried, quarantined, or degraded per ``policy`` instead of killing
    the campaign.  ``faults`` attaches a
    :class:`~repro.engine.faults.WorkerFaultSchedule` for chaos testing
    the supervisor itself.

    After each ``run_shards`` drive, :attr:`last_report` carries the
    run's :class:`~repro.engine.policy.SupervisionReport`;
    :class:`~repro.engine.Campaign` reads it to decide between a full
    and a :class:`~repro.engine.campaign.PartialCampaignResult`.
    """

    def __init__(self, jobs: int | None = None,
                 policy: SupervisionPolicy | None = None,
                 faults: WorkerFaultSchedule | None = None,
                 telemetry: TelemetryRecorder | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("a supervised pool needs at least one "
                             "worker")
        self.jobs = jobs if jobs is not None else default_job_count()
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.faults = faults
        self.telemetry = (telemetry if telemetry is not None
                          else NullRecorder())
        self.last_report: SupervisionReport | None = None
        self._failure_sink: Callable[[ShardFailure], None] | None = None

    def attach_failure_sink(
            self, sink: Callable[[ShardFailure], None] | None) -> None:
        """Route every :class:`~repro.engine.policy.ShardFailure` to
        ``sink`` as it happens — the hook
        :class:`~repro.engine.Campaign` uses to journal failed attempts
        into the :class:`~repro.engine.store.ResultStore`."""
        self._failure_sink = sink

    def run_shards(self, trial_fn: TrialFn,
                   shards: Sequence[ShardSpec], of_total: int,
                   record_telemetry: bool = False
                   ) -> Iterator[ShardResult]:
        """Supervised shard fan-out; yields results in completion order.

        Unlike :class:`~repro.engine.pool.ProcessPool`, a worker
        failure does not propagate (unless ``policy.on_failure`` is
        ``"fail"`` and a shard exhausts its attempts): failed attempts
        retry with backoff, and shards that never succeed are reported
        via :attr:`last_report` rather than raised.
        """
        self.last_report = None
        workers = min(self.jobs, len(shards)) if shards else 0
        if workers == 0:
            self.last_report = _ReportBuilder().build()
            return
        backend = _ProcessBackend(workers, trial_fn, of_total,
                                  record_telemetry, self.faults)
        supervisor = ShardSupervisor(self.policy,
                                     telemetry=self.telemetry,
                                     failure_sink=self._failure_sink)
        try:
            yield from supervisor.run(backend, shards)
        finally:
            self.last_report = supervisor.report

    def __repr__(self) -> str:
        return (f"SupervisedPool(jobs={self.jobs}, "
                f"on_failure={self.policy.on_failure!r}, "
                f"faulted={self.faults is not None})")
