"""Shard execution: the function every worker (or the serial loop) runs.

:func:`run_shard` is the single code path for executing a block of
trials, no matter where it runs — in-process under
:class:`~repro.engine.pool.SerialExecutor` or in a worker process under
:class:`~repro.engine.pool.ProcessPool`.  One code path is what makes
the executor choice invisible in the results: a shard always sees the
same seeds, runs the same trial function, and records the same
telemetry shape.

Telemetry mirrors :meth:`repro.sim.runner.MonteCarloRunner.run_stream`
verb-for-verb (one ``sim.trial`` span, one ``sim.trials`` count, one
``sim.trial`` event per trial) into a worker-local
:class:`~repro.telemetry.Recorder`, captured as a
:class:`~repro.telemetry.TelemetrySnapshot` so the campaign can merge
shard traces back into one byte-stable export.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from ..telemetry import Recorder, TelemetrySnapshot
from .plan import ShardSpec

__all__ = ["ShardResult", "TrialFn", "run_shard"]

TrialFn = Callable[[np.random.Generator, int], dict[str, Any]]
"""The campaign work unit: ``trial_fn(rng, index) -> dict`` — the same
contract :class:`~repro.sim.runner.MonteCarloRunner` has always used.
Under a :class:`~repro.engine.pool.ProcessPool` it must be picklable
(a module-level function or a ``functools.partial`` over one)."""


class ShardResult:
    """One executed shard: per-trial values plus its telemetry snapshot.

    Deliberately a plain (picklable, JSON-friendly) container: ``trials``
    is a tuple of ``(index, seed, values)`` triples in index order and
    ``telemetry`` is a :class:`~repro.telemetry.TelemetrySnapshot` (or
    ``None`` when the campaign runs untraced).
    """

    __slots__ = ("shard_id", "trials", "telemetry")

    def __init__(self, shard_id: int,
                 trials: tuple[tuple[int, int, dict[str, Any]], ...],
                 telemetry: TelemetrySnapshot | None = None) -> None:
        self.shard_id = shard_id
        self.trials = trials
        self.telemetry = telemetry

    def __repr__(self) -> str:
        return (f"ShardResult(shard_id={self.shard_id}, "
                f"trials={len(self.trials)}, "
                f"traced={self.telemetry is not None})")


def run_shard(trial_fn: TrialFn, shard: ShardSpec, of_total: int,
              record_telemetry: bool = False) -> ShardResult:
    """Execute every trial in ``shard`` against its planned seed.

    ``of_total`` is the campaign's full trial count — it only feeds the
    ``of=`` field of each ``sim.trial`` telemetry event, keeping worker
    events identical to what a serial
    :class:`~repro.sim.runner.MonteCarloRunner` sweep would emit.
    """
    recorder = Recorder() if record_telemetry else None
    executed: list[tuple[int, int, dict[str, Any]]] = []
    for trial in shard.trials:
        rng = np.random.default_rng(trial.seed)
        if recorder is not None:
            with recorder.span("sim.trial", index=trial.index):
                values = trial_fn(rng, trial.index)
        else:
            values = trial_fn(rng, trial.index)
        if not isinstance(values, dict):
            raise TypeError("trial function must return a dict of values")
        if recorder is not None:
            recorder.count("sim.trials")
            recorder.event("sim.trial", index=trial.index,
                           seed=trial.seed, of=of_total)
        executed.append((trial.index, trial.seed, values))
    snapshot = (TelemetrySnapshot.capture(recorder)
                if recorder is not None else None)
    return ShardResult(shard_id=shard.shard_id, trials=tuple(executed),
                       telemetry=snapshot)
