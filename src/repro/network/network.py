"""Multi-node network simulation — the substrate for Fig. 13 (§9.5).

Protocol of the experiment: the AP sits on one side of the room, N nodes
at random locations/orientations transmit *simultaneously*; each node
occupies a 25 MHz channel; when the demanded channels exceed the 250 MHz
ISM band the surplus nodes reuse channels spatially (SDM through the
TMA).  Per-node "SNR" in the paper's plot is really SINR — interference
from the other transmitters is what bends the curve down as N grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import (
    EVAL_NODE_CHANNEL_BANDWIDTH_HZ,
    ISM_24GHZ_BANDWIDTH_HZ,
)
from ..core.link import OtamLink
from ..sim.placement import Placement, PlacementSampler
from ..units import db_to_linear, linear_to_db
from .interference import InterferenceModel
from .tma import TimeModulatedArray

__all__ = ["NodeStats", "NetworkSnapshot", "MultiNodeNetwork",
           "frame_success_matrix"]


def frame_success_matrix(room, ap_positions, node_positions,
                         payload_bytes: int = 256,
                         link_kwargs: dict | None = None) -> np.ndarray:
    """Per-(node, AP) frame-survival probabilities for a deployment.

    Maps :func:`repro.network.deployment.snr_matrix` through the
    BER -> frame-success chain of :mod:`repro.core.throughput` (uncoded
    mode, best ASK-branch BER): ``result[i, j]`` is the chance one of
    node *i*'s frames survives when served by AP *j*.  The failover
    simulation uses it both to rank re-association targets and to score
    delivery in expectation, keeping the adaptive-vs-static comparison
    deterministic.
    """
    from ..core.throughput import CODING_MODES, frame_success_probability
    from ..phy import ber as ber_theory
    from .deployment import snr_matrix

    snrs = snr_matrix(room, ap_positions, node_positions,
                      link_kwargs=link_kwargs)
    out = np.empty_like(snrs)
    for i in range(snrs.shape[0]):
        for j in range(snrs.shape[1]):
            ber = float(ber_theory.ber_ask_table(snrs[i, j]))
            out[i, j] = frame_success_probability(ber, payload_bytes,
                                                  CODING_MODES[0])
    return out


@dataclass(frozen=True)
class NodeStats:
    """Per-node outcome of one network evaluation."""

    node_id: int
    placement: Placement
    channel_index: int
    snr_db: float
    sinr_db: float
    interference_dbm: float

    @property
    def interference_limited(self) -> bool:
        """Whether interference (not noise) dominates this node's SINR."""
        return self.sinr_db < self.snr_db - 1.0


@dataclass(frozen=True)
class NetworkSnapshot:
    """One simultaneous-transmission evaluation of the whole network."""

    nodes: tuple[NodeStats, ...]

    @property
    def mean_sinr_db(self) -> float:
        """Average per-node SINR — the y-axis of Fig. 13."""
        return float(np.mean([n.sinr_db for n in self.nodes]))

    @property
    def min_sinr_db(self) -> float:
        """Worst node's SINR."""
        return float(np.min([n.sinr_db for n in self.nodes]))

    @property
    def sinr_values_db(self) -> np.ndarray:
        """All per-node SINRs."""
        return np.asarray([n.sinr_db for n in self.nodes], dtype=float)


class MultiNodeNetwork:
    """Places N nodes in a room and evaluates simultaneous transmission."""

    def __init__(self, room, rng: np.random.Generator,
                 channel_bandwidth_hz: float = EVAL_NODE_CHANNEL_BANDWIDTH_HZ,
                 band_width_hz: float = ISM_24GHZ_BANDWIDTH_HZ,
                 interference_model: InterferenceModel | None = None,
                 tma_elements: int = 8,
                 demodulator_rejection_db: float = 15.0,
                 link_kwargs: dict | None = None):
        if channel_bandwidth_hz <= 0 or band_width_hz <= 0:
            raise ValueError("bandwidths must be positive")
        self.room = room
        self.rng = rng
        self.sampler = PlacementSampler(room, rng)
        self.channel_bandwidth_hz = channel_bandwidth_hz
        self.num_fdm_channels = max(1, int(band_width_hz // channel_bandwidth_hz))
        self.interference = interference_model or InterferenceModel()
        # Matched-filter decorrelation: the victim's per-bit Goertzel
        # projection coherently integrates its own tone but only
        # partially captures an unsynchronised co-channel interferer
        # (different bit timing, independent FSK state), rejecting a
        # further ~15 dB on average beyond the TMA image suppression.
        if demodulator_rejection_db < 0:
            raise ValueError("demodulator rejection cannot be negative")
        self.demodulator_rejection_db = demodulator_rejection_db
        self.link_kwargs = link_kwargs or {}
        # TMA switching rate must exceed the per-channel bandwidth so the
        # harmonic images fall outside the victim channel's neighbours.
        self.tma = TimeModulatedArray(
            num_elements=tma_elements,
            frequency_hz=24.125e9,
            switching_rate_hz=2.0 * channel_bandwidth_hz)

    # --- channel assignment -----------------------------------------------------

    def assign_channels(self, num_nodes: int) -> list[int]:
        """Round-robin FDM; wraps into SDM sharing once the band is full.

        Node i gets channel ``i mod num_fdm_channels``: the first
        ``num_fdm_channels`` nodes get exclusive spectrum, later ones
        share a channel spatially — the FDM-then-SDM escalation of §7.
        """
        if num_nodes < 1:
            raise ValueError("need at least one node")
        return [i % self.num_fdm_channels for i in range(num_nodes)]

    # --- evaluation -----------------------------------------------------------------

    def _arrival_bearing_rad(self, placement: Placement) -> float:
        """Arrival direction at the AP, relative to the AP's boresight."""
        dx = placement.node_position.x - placement.ap_position.x
        dy = placement.node_position.y - placement.ap_position.y
        return math.atan2(dy, dx) - placement.ap_orientation_rad

    @property
    def tma_resolvable_separation_rad(self) -> float:
        """Smallest bearing gap the TMA can fully separate (~2/N rad).

        The harmonic beams of an N-element array have a ~2/N-radian
        main-lobe width; arrivals closer than that land on the same
        harmonic and cannot be told apart.
        """
        return 2.0 / self.tma.num_elements

    def _tma_suppression_db(self, victim: Placement,
                            interferer: Placement) -> float:
        """Co-channel suppression from the TMA, by angular separation.

        Arrivals separated by at least the resolvable width enjoy the
        20-30 dB image suppression the paper cites from [25] (graded
        within the band by separation); closer arrivals lose
        suppression linearly, down to none for co-bearing nodes — the
        TMA cannot separate two signals from the same direction, which
        is exactly why the AP schedules SDM partners by angle.
        """
        from ..sim.geometry import normalize_angle

        theta_v = self._arrival_bearing_rad(victim)
        theta_i = self._arrival_bearing_rad(interferer)
        delta = abs(normalize_angle(theta_v - theta_i))
        resolvable = self.tma_resolvable_separation_rad
        if delta >= resolvable:
            extra = min((delta - resolvable) / resolvable, 1.0)
            return 25.0 + 5.0 * extra
        return 25.0 * delta / resolvable

    def evaluate(self, num_nodes: int,
                 placements: list[Placement] | None = None,
                 measurement_bandwidth_hz: float = 2.5e6,
                 scheduler=None,
                 external_interferers: dict[int, float] | None = None
                 ) -> NetworkSnapshot:
        """One simultaneous-transmission snapshot for N nodes.

        ``measurement_bandwidth_hz`` is the per-node post-channelisation
        noise bandwidth.  Fig. 13 reports per-node SNRs well above the
        Fig. 10 heatmap values for the same room, consistent with the
        paper measuring each node's tone against the noise in a narrow
        analysis band after sub-band capture (section 9.5); 2.5 MHz
        (a tenth of the 25 MHz channel) reproduces that offset.

        ``scheduler`` optionally overrides the default direction-aware
        channel assignment with any policy exposing
        ``assign(placements) -> list[int]``.

        ``external_interferers`` maps FDM channel index to the received
        power (dBm, at the AP) of a non-mmX in-band emitter parked on
        that channel — e.g. a WiFi/ISM device.  It raises the
        interference floor of every node sharing the channel, which is
        exactly the signature :class:`repro.resilience.LinkSupervisor`
        detects and escapes via channel re-allocation.
        """
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if placements is None:
            placements = self.sampler.sample_many(num_nodes)
        elif len(placements) != num_nodes:
            raise ValueError("one placement per node required")
        if scheduler is None:
            # The AP controls channel assignment, so by default it uses
            # the direction-aware policy: TMA separation is angular, so
            # co-channel partners should sit far apart in bearing.
            from .sdm_scheduler import AngularSdmScheduler

            scheduler = AngularSdmScheduler(self.num_fdm_channels)
        channels = scheduler.assign(list(placements))
        if len(channels) != num_nodes:
            raise ValueError("scheduler returned a bad assignment")
        links = [OtamLink(placement=p, room=self.room, **self.link_kwargs)
                 for p in placements]
        breakdowns = [link.snr_breakdown(bandwidth_hz=measurement_bandwidth_hz)
                      for link in links]
        # Received level each node presents at the AP (its stronger beam;
        # over a packet both beams are used about equally, the stronger
        # one bounds the leakage).
        levels_dbm = [max(b.beam1_level_dbm, b.beam0_level_dbm)
                      for b in breakdowns]

        stats = []
        for i in range(num_nodes):
            victim_noise_dbm = breakdowns[i].noise_dbm
            interference_lin = 0.0
            if external_interferers:
                jammer_dbm = external_interferers.get(channels[i])
                if jammer_dbm is not None:
                    interference_lin += float(db_to_linear(jammer_dbm))
            for j in range(num_nodes):
                if j == i:
                    continue
                if channels[j] == channels[i]:
                    coupling = (self._tma_suppression_db(placements[i],
                                                         placements[j])
                                + self.demodulator_rejection_db)
                elif abs(channels[j] - channels[i]) == 1:
                    coupling = self.interference.coupling_db("adjacent")
                else:
                    coupling = self.interference.coupling_db("far")
                interference_lin += float(db_to_linear(levels_dbm[j] - coupling))
            interference_dbm = (float(linear_to_db(interference_lin))
                                if interference_lin > 0 else float("-inf"))
            snr = breakdowns[i].otam_snr_db
            signal_dbm = breakdowns[i].noise_dbm + snr
            total_floor = db_to_linear(victim_noise_dbm) + interference_lin
            sinr = float(signal_dbm - linear_to_db(total_floor))
            stats.append(NodeStats(
                node_id=i,
                placement=placements[i],
                channel_index=channels[i],
                snr_db=snr,
                sinr_db=sinr,
                interference_dbm=interference_dbm,
            ))
        return NetworkSnapshot(nodes=tuple(stats))

    def sweep_node_counts(self, counts, trials_per_count: int = 20
                          ) -> dict[int, np.ndarray]:
        """Mean SINR samples per node count — the Fig. 13 x-axis sweep."""
        if trials_per_count < 1:
            raise ValueError("need at least one trial per count")
        results: dict[int, np.ndarray] = {}
        for count in counts:
            means = [self.evaluate(count).mean_sinr_db
                     for _ in range(trials_per_count)]
            results[int(count)] = np.asarray(means, dtype=float)
        return results
