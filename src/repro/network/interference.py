"""Interference accounting for the multi-node experiments (§9.5).

With FDM, neighbours leak adjacent-channel energy; with SDM, co-channel
signals survive only as TMA harmonic images 20-30 dB down (section 7,
citing [25]).  :class:`InterferenceModel` turns a set of received levels
plus channel relationships into per-node SINR — the quantity Fig. 13
plots as "SNR" (their measured SNR includes this interference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import db_to_linear, linear_to_db

__all__ = ["InterferenceModel", "sinr_db"]


def sinr_db(signal_dbm: float, noise_dbm: float,
            interference_dbm_list) -> float:
    """Signal over (noise + sum of interference), all in dBm/dB."""
    noise_lin = db_to_linear(noise_dbm)
    interf_lin = float(np.sum(db_to_linear(
        np.asarray(list(interference_dbm_list), dtype=float))))
    total = noise_lin + interf_lin
    return float(signal_dbm - linear_to_db(total))


@dataclass(frozen=True)
class InterferenceModel:
    """How much of an interferer's power lands in a victim's channel.

    Attributes
    ----------
    adjacent_channel_rejection_db:
        Suppression of a neighbour channel's leakage (transmit spectral
        mask + AP channel filter).  The OTAM tone is spectrally compact,
        so 50 dB is achievable for a guard-banded neighbour.
    nonadjacent_rejection_db:
        Suppression for channels further away.
    tma_image_suppression_db:
        Suppression of co-channel SDM signals via TMA harmonics; the
        paper's band is 20-30 dB — we default to its midpoint.
    """

    adjacent_channel_rejection_db: float = 50.0
    nonadjacent_rejection_db: float = 65.0
    tma_image_suppression_db: float = 25.0

    def __post_init__(self):
        if not (0 < self.adjacent_channel_rejection_db
                <= self.nonadjacent_rejection_db):
            raise ValueError("need 0 < adjacent <= non-adjacent rejection")
        if self.tma_image_suppression_db <= 0:
            raise ValueError("TMA suppression must be positive")

    def coupling_db(self, relationship: str) -> float:
        """Suppression [dB] for a given channel relationship.

        ``relationship`` is one of 'cochannel-sdm', 'adjacent', 'far'.
        """
        if relationship == "cochannel-sdm":
            return self.tma_image_suppression_db
        if relationship == "adjacent":
            return self.adjacent_channel_rejection_db
        if relationship == "far":
            return self.nonadjacent_rejection_db
        raise ValueError(f"unknown channel relationship {relationship!r}")

    def interference_dbm(self, interferer_level_dbm: float,
                         relationship: str) -> float:
        """Interference power landing in the victim's channel [dBm]."""
        return interferer_level_dbm - self.coupling_db(relationship)
