"""Multi-AP deployment planning for larger spaces.

Section 1 pitches mmX for "surveillance cameras in public areas such as
malls, banks, libraries, and parks" — spaces far bigger than one AP's
18 m reach and 120°-per-node geometry.  This module plans such
deployments:

* :class:`Deployment` — a set of candidate AP positions in a (large)
  room; assigns every node to the AP giving it the best OTAM SNR and
  reports per-node and aggregate coverage.
* :func:`plan_access_points` — greedy AP placement: from a candidate
  grid, repeatedly add the AP that rescues the most uncovered nodes —
  the classic set-cover heuristic a site surveyor would run.

Different APs operate on different 24 GHz channels (the band comfortably
carries several AP cells), so inter-cell interference is treated as
negligible next to the noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.link import OtamLink
from ..sim.environment import Room
from ..sim.geometry import Point, angle_of, normalize_angle
from ..sim.placement import Placement

__all__ = ["NodeAssignment", "Deployment", "plan_access_points",
           "snr_matrix"]


@dataclass(frozen=True)
class NodeAssignment:
    """One node's best serving AP and the link quality it gets."""

    node_position: Point
    ap_index: int
    snr_db: float

    def covered(self, threshold_db: float = 10.0) -> bool:
        """Whether the node meets the SNR target."""
        return self.snr_db >= threshold_db


def _link_snr(node: Point, ap: Point, room: Room,
              orientation_offset_rad: float = 0.0,
              link_kwargs: dict | None = None) -> float:
    """OTAM SNR for a node facing (approximately) toward an AP."""
    toward = angle_of(node, ap)
    placement = Placement(
        node_position=node,
        node_orientation_rad=normalize_angle(toward + orientation_offset_rad),
        ap_position=ap,
        ap_orientation_rad=angle_of(ap, node),
    )
    link = OtamLink(placement=placement, room=room, **(link_kwargs or {}))
    return link.snr_breakdown().otam_snr_db


@dataclass
class Deployment:
    """A set of APs serving a population of node positions."""

    room: Room
    ap_positions: list[Point]
    link_kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.ap_positions:
            raise ValueError("a deployment needs at least one AP")

    def assign(self, node_positions: list[Point],
               orientation_offsets_rad: list[float] | None = None
               ) -> list[NodeAssignment]:
        """Best-AP assignment for each node.

        ``orientation_offsets_rad`` optionally perturbs each node's
        facing (installation error); defaults to perfectly aimed nodes.
        """
        if orientation_offsets_rad is None:
            orientation_offsets_rad = [0.0] * len(node_positions)
        if len(orientation_offsets_rad) != len(node_positions):
            raise ValueError("one orientation offset per node required")
        assignments = []
        for node, offset in zip(node_positions, orientation_offsets_rad):
            best_idx, best_snr = -1, float("-inf")
            for idx, ap in enumerate(self.ap_positions):
                snr = _link_snr(node, ap, self.room, offset,
                                self.link_kwargs)
                if snr > best_snr:
                    best_idx, best_snr = idx, snr
            assignments.append(NodeAssignment(
                node_position=node, ap_index=best_idx, snr_db=best_snr))
        return assignments

    def coverage(self, node_positions: list[Point],
                 threshold_db: float = 10.0) -> float:
        """Fraction of nodes meeting the SNR target."""
        if not node_positions:
            raise ValueError("no nodes to cover")
        assignments = self.assign(node_positions)
        return float(np.mean([a.covered(threshold_db) for a in assignments]))

    def load_per_ap(self, node_positions: list[Point]) -> list[int]:
        """How many nodes each AP ends up serving."""
        counts = [0] * len(self.ap_positions)
        for assignment in self.assign(node_positions):
            counts[assignment.ap_index] += 1
        return counts


def snr_matrix(room: Room, ap_positions: list[Point],
               node_positions: list[Point],
               link_kwargs: dict | None = None) -> np.ndarray:
    """Per-(node, AP) OTAM SNR table — the failover affinity map.

    ``result[i, j]`` is node *i*'s SNR when aimed at AP *j*.  A cluster
    uses each row (sorted descending) as that node's re-association
    preference order: when its serving AP dies, the node fails over to
    the best-SNR *surviving* AP, exactly the assignment rule
    :meth:`Deployment.assign` applies at install time.
    """
    if not ap_positions or not node_positions:
        raise ValueError("need at least one AP and one node position")
    out = np.empty((len(node_positions), len(ap_positions)), dtype=float)
    for i, node in enumerate(node_positions):
        for j, ap in enumerate(ap_positions):
            out[i, j] = _link_snr(node, ap, room, link_kwargs=link_kwargs)
    return out


def plan_access_points(room: Room, node_positions: list[Point],
                       candidate_positions: list[Point],
                       threshold_db: float = 10.0,
                       max_aps: int | None = None,
                       link_kwargs: dict | None = None) -> list[Point]:
    """Greedy set-cover AP placement.

    Repeatedly adds the candidate AP that covers the most currently
    uncovered nodes, until everyone is covered, candidates run out, or
    ``max_aps`` is hit.  Returns the chosen AP positions (possibly
    covering less than 100 % — check with :meth:`Deployment.coverage`).
    """
    if not candidate_positions:
        raise ValueError("no candidate AP positions")
    if max_aps is None:
        max_aps = len(candidate_positions)
    if max_aps < 1:
        raise ValueError("need at least one AP allowed")
    link_kwargs = link_kwargs or {}

    # Precompute per-candidate coverage sets.
    covers: list[set[int]] = []
    for ap in candidate_positions:
        covered = {i for i, node in enumerate(node_positions)
                   if _link_snr(node, ap, room,
                                link_kwargs=link_kwargs) >= threshold_db}
        covers.append(covered)

    chosen: list[Point] = []
    uncovered = set(range(len(node_positions)))
    remaining = list(range(len(candidate_positions)))
    while uncovered and remaining and len(chosen) < max_aps:
        best = max(remaining, key=lambda c: len(covers[c] & uncovered))
        gain = covers[best] & uncovered
        if not gain:
            break
        chosen.append(candidate_positions[best])
        uncovered -= gain
        remaining.remove(best)
    if not chosen:
        # Even a hopeless site gets its best single AP.
        best = max(range(len(candidate_positions)),
                   key=lambda c: len(covers[c]))
        chosen.append(candidate_positions[best])
    return chosen
