"""The once-only initialization protocol over a WiFi/Bluetooth side link.

Section 7(a): "The channels are specified by the AP to each node in the
initialization stage.  The initialization takes place only once using a
WiFi or Bluetooth module."  The mmWave link itself is uplink-only and
feedback-free — that is the whole point of OTAM — so this low-rate side
channel is the only downlink the system ever uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..rng import fresh_rng

__all__ = ["SideChannel", "InitializationProtocol"]


@dataclass
class SideChannel:
    """A lossy low-rate control link (WiFi/BLE class).

    ``delivery_ratio`` models control-frame loss (default lossless —
    any ratio below 1 now genuinely drops frames, where it previously
    only did so when an ``rng`` happened to be supplied); the protocol
    retries.  A Bluetooth LE connection event is ~a few ms, so
    ``latency_s`` defaults accordingly.
    """

    delivery_ratio: float = 1.0
    latency_s: float = 0.005
    rng: np.random.Generator = field(default_factory=fresh_rng)

    def __post_init__(self):
        if not 0.0 < self.delivery_ratio <= 1.0:
            raise ValueError("delivery ratio must be in (0, 1]")
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")
        if self.rng is None:
            # A lossy channel must actually lose frames: an unseeded
            # generator beats the old silently-lossless behaviour.
            self.rng = fresh_rng()

    def deliver(self) -> bool:
        """Whether one control frame gets through."""
        if self.delivery_ratio >= 1.0:
            return True
        return bool(self.rng.random() < self.delivery_ratio)


@dataclass(frozen=True)
class InitRecord:
    """Outcome of initialising one node."""

    node_id: int
    center_hz: float
    bandwidth_hz: float
    attempts: int
    elapsed_s: float


class InitializationProtocol:
    """Runs the AP-side initialization handshake for a set of nodes.

    Failed control frames are retried with jittered exponential backoff
    (doubling from ``backoff_base_s``, capped at ``backoff_max_s``, each
    delay scaled by ``1 ± backoff_jitter``) so a congested or lossy side
    channel is not hammered by a tight retry loop — the same discipline
    :class:`repro.resilience.LinkSupervisor` uses for re-initialization
    after a dropout.

    ``breaker`` optionally guards the side channel with a
    :class:`repro.transport.CircuitBreaker`: consecutive control-frame
    failures trip it, after which every initialization fails fast with
    :class:`repro.transport.CircuitOpenError` until the breaker's reset
    timeout has passed — a *flapping* side channel stops the whole
    re-init storm instead of each node hammering it independently.  The
    breaker's clock is the protocol's accumulated handshake time, so
    behaviour stays deterministic.
    """

    def __init__(self, access_point, side_channel: SideChannel | None = None,
                 max_attempts: int = 5,
                 backoff_base_s: float = 0.02,
                 backoff_factor: float = 2.0,
                 backoff_jitter: float = 0.25,
                 backoff_max_s: float = 0.5,
                 breaker=None):
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        if backoff_base_s < 0 or backoff_max_s < backoff_base_s:
            raise ValueError("invalid backoff window")
        if backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= backoff_jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.access_point = access_point
        self.side_channel = side_channel or SideChannel()
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self.backoff_max_s = backoff_max_s
        self.breaker = breaker
        self.clock_s = 0.0
        self.records: list[InitRecord] = []

    def _backoff_delay_s(self, failed_attempts: int) -> float:
        """Jittered exponential delay before retry ``failed_attempts+1``."""
        base = min(self.backoff_base_s
                   * self.backoff_factor ** max(failed_attempts - 1, 0),
                   self.backoff_max_s)
        jitter = 1.0 + self.backoff_jitter \
            * float(self.side_channel.rng.uniform(-1, 1))
        return base * jitter

    def initialize(self, node, demanded_rate_bps: float,
                   config=None) -> InitRecord:
        """Register a node at the AP and push its channel assignment.

        ``config`` optionally pins the modulation numerology both ends
        use (defaults to the AP's rate-derived choice).  Retries lost
        control frames — with jittered exponential backoff between
        attempts, reflected in the record's ``elapsed_s`` — up to
        ``max_attempts`` times, then raises ``ConnectionError`` — an
        un-initialisable node never touches the mmWave band.

        With a circuit ``breaker`` attached, an open circuit fails the
        whole call fast (:class:`repro.transport.CircuitOpenError`)
        before any channel is allocated, and a circuit tripping
        mid-handshake aborts the remaining retries.
        """
        if self.breaker is not None and not self.breaker.allow(self.clock_s):
            from ..transport.breaker import CircuitOpenError

            wait = self.breaker.seconds_until_retry(self.clock_s)
            raise CircuitOpenError(
                f"node {node.node_id}: side-channel circuit open, "
                f"retry in {wait:.2f} s")
        registration = self.access_point.register_node(
            node.node_id, demanded_rate_bps, config=config)
        attempts = 0
        elapsed_s = 0.0
        delivered = False
        tripped = False
        while attempts < self.max_attempts and not delivered:
            if attempts:
                elapsed_s += self._backoff_delay_s(attempts)
            attempts += 1
            elapsed_s += self.side_channel.latency_s
            delivered = self.side_channel.deliver()
            if self.breaker is not None:
                if delivered:
                    self.breaker.record_success()
                else:
                    self.breaker.record_failure(self.clock_s + elapsed_s)
                    if self.breaker.state == "open":
                        tripped = True
                        break
        self.clock_s += elapsed_s
        if not delivered:
            self.access_point.deregister_node(node.node_id)
            if tripped:
                from ..transport.breaker import CircuitOpenError

                raise CircuitOpenError(
                    f"node {node.node_id}: side-channel circuit tripped "
                    f"after {attempts} attempt(s)")
            raise ConnectionError(
                f"node {node.node_id}: side channel failed "
                f"{self.max_attempts} times")
        node.assign_channel(registration.channel.center_hz)
        record = InitRecord(
            node_id=node.node_id,
            center_hz=registration.channel.center_hz,
            bandwidth_hz=registration.channel.bandwidth_hz,
            attempts=attempts,
            elapsed_s=elapsed_s,
        )
        self.records.append(record)
        return record

    def initialize_all(self, nodes_and_rates) -> list[InitRecord]:
        """Initialise ``[(node, rate_bps), ...]`` in order."""
        return [self.initialize(node, rate) for node, rate in nodes_and_rates]
