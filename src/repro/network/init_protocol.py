"""The once-only initialization protocol over a WiFi/Bluetooth side link.

Section 7(a): "The channels are specified by the AP to each node in the
initialization stage.  The initialization takes place only once using a
WiFi or Bluetooth module."  The mmWave link itself is uplink-only and
feedback-free — that is the whole point of OTAM — so this low-rate side
channel is the only downlink the system ever uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SideChannel", "InitializationProtocol"]


@dataclass
class SideChannel:
    """A lossy low-rate control link (WiFi/BLE class).

    ``delivery_ratio`` models control-frame loss; the protocol retries.
    A Bluetooth LE connection event is ~a few ms, so ``latency_s``
    defaults accordingly.
    """

    delivery_ratio: float = 0.95
    latency_s: float = 0.005
    rng: object = None

    def __post_init__(self):
        if not 0.0 < self.delivery_ratio <= 1.0:
            raise ValueError("delivery ratio must be in (0, 1]")
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")

    def deliver(self) -> bool:
        """Whether one control frame gets through."""
        if self.rng is None or self.delivery_ratio >= 1.0:
            return True
        return bool(self.rng.random() < self.delivery_ratio)


@dataclass(frozen=True)
class InitRecord:
    """Outcome of initialising one node."""

    node_id: int
    center_hz: float
    bandwidth_hz: float
    attempts: int
    elapsed_s: float


class InitializationProtocol:
    """Runs the AP-side initialization handshake for a set of nodes."""

    def __init__(self, access_point, side_channel: SideChannel | None = None,
                 max_attempts: int = 5):
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        self.access_point = access_point
        self.side_channel = side_channel or SideChannel()
        self.max_attempts = max_attempts
        self.records: list[InitRecord] = []

    def initialize(self, node, demanded_rate_bps: float,
                   config=None) -> InitRecord:
        """Register a node at the AP and push its channel assignment.

        ``config`` optionally pins the modulation numerology both ends
        use (defaults to the AP's rate-derived choice).  Retries lost
        control frames up to ``max_attempts`` times, then raises
        ``ConnectionError`` — an un-initialisable node never touches the
        mmWave band.
        """
        registration = self.access_point.register_node(
            node.node_id, demanded_rate_bps, config=config)
        attempts = 0
        delivered = False
        while attempts < self.max_attempts and not delivered:
            attempts += 1
            delivered = self.side_channel.deliver()
        if not delivered:
            self.access_point.deregister_node(node.node_id)
            raise ConnectionError(
                f"node {node.node_id}: side channel failed "
                f"{self.max_attempts} times")
        node.assign_channel(registration.channel.center_hz)
        record = InitRecord(
            node_id=node.node_id,
            center_hz=registration.channel.center_hz,
            bandwidth_hz=registration.channel.bandwidth_hz,
            attempts=attempts,
            elapsed_s=attempts * self.side_channel.latency_s,
        )
        self.records.append(record)
        return record

    def initialize_all(self, nodes_and_rates) -> list[InitRecord]:
        """Initialise ``[(node, rate_bps), ...]`` in order."""
        return [self.initialize(node, rate) for node, rate in nodes_and_rates]
