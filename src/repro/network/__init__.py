"""Multi-node support: FDM, TMA-based SDM, MIMO baseline, interference.

Section 7: mmX shares the AP among many nodes with frequency-division
(channels sized to demand, assigned once at initialization) and, when
demand exceeds the band, spatial reuse via a Time-Modulated Array that
hashes arrival directions onto distinct harmonic frequencies (Eq. 1-4).
A hybrid-MIMO AP model is included as the power-hungry alternative the
paper argues against.
"""

from .deployment import Deployment, NodeAssignment, plan_access_points
from .fdm import ChannelPlan, FdmAllocator, SpectrumExhausted
from .init_protocol import SideChannel, InitializationProtocol
from .interference import InterferenceModel, sinr_db
from .mac import PacketQueue, TdmaSchedule, UplinkSimulator, UplinkStats
from .mimo import HybridMimoAp
from .network import MultiNodeNetwork, NetworkSnapshot, NodeStats
from .sdm_scheduler import (
    AngularSdmScheduler,
    RoundRobinScheduler,
    arrival_bearing_rad,
    assignment_min_separation_rad,
)
from .tma import TimeModulatedArray, sequential_switching_schedule

__all__ = [
    "AngularSdmScheduler",
    "ChannelPlan",
    "Deployment",
    "FdmAllocator",
    "HybridMimoAp",
    "InitializationProtocol",
    "InterferenceModel",
    "MultiNodeNetwork",
    "NetworkSnapshot",
    "NodeAssignment",
    "NodeStats",
    "PacketQueue",
    "RoundRobinScheduler",
    "SideChannel",
    "SpectrumExhausted",
    "TdmaSchedule",
    "TimeModulatedArray",
    "UplinkSimulator",
    "UplinkStats",
    "arrival_bearing_rad",
    "assignment_min_separation_rad",
    "plan_access_points",
    "sequential_switching_schedule",
    "sinr_db",
]
