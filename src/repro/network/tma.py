"""Time-Modulated Array: SDM without extra mmWave chains (§7b, Eq. 1-4).

Each AP antenna element sits behind an RF switch driven by a periodic
on/off waveform ``w_n(t)`` with period ``T_p``.  Writing ``w_n`` as a
Fourier series (Eq. 3) and substituting into the array output (Eq. 1)
shows the received signal is replicated at harmonics of the switching
frequency, with per-harmonic array coefficients (Eq. 4).  Each harmonic
therefore has its *own beam pattern*; with the classic sequential
schedule, harmonic m points where ``d sin(theta) / lambda = m / N`` —
so signals arriving from different directions pop out on different
frequencies.  One mmWave chain, spatial demultiplexing for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import linear_to_db, wavelength

__all__ = ["sequential_switching_schedule", "TimeModulatedArray"]


def sequential_switching_schedule(num_elements: int,
                                  samples_per_period: int) -> np.ndarray:
    """The canonical SDMA-TMA schedule: elements on one after another.

    Returns a ``(num_elements, samples_per_period)`` 0/1 matrix where
    element n is on during the n-th equal slice of the period.  This is
    the schedule from He et al. [25], which the paper cites for its
    20-30 dB image suppression figure.
    """
    if num_elements < 1:
        raise ValueError("need at least one element")
    if samples_per_period < num_elements:
        raise ValueError("need at least one sample per element slot")
    schedule = np.zeros((num_elements, samples_per_period), dtype=float)
    edges = np.linspace(0, samples_per_period, num_elements + 1).astype(int)
    for n in range(num_elements):
        schedule[n, edges[n]:edges[n + 1]] = 1.0
    return schedule


@dataclass
class TimeModulatedArray:
    """An N-element ULA with per-element switched feeds.

    Parameters
    ----------
    num_elements:
        Array size N.
    frequency_hz:
        Carrier the array receives at (sets lambda for the phase term).
    switching_rate_hz:
        ``1 / T_p`` — the harmonic spacing.  Must exceed the per-node
        signal bandwidth or harmonics alias onto each other.
    spacing_m:
        Element spacing; defaults to half a wavelength.
    samples_per_period:
        Time resolution of the switching schedule.
    """

    num_elements: int
    frequency_hz: float
    switching_rate_hz: float
    spacing_m: float | None = None
    samples_per_period: int = 64

    def __post_init__(self):
        if self.num_elements < 2:
            raise ValueError("TMA needs at least 2 elements")
        if self.switching_rate_hz <= 0:
            raise ValueError("switching rate must be positive")
        if self.spacing_m is None:
            self.spacing_m = float(wavelength(self.frequency_hz)) / 2.0
        if self.spacing_m <= 0:
            raise ValueError("element spacing must be positive")
        self.schedule = sequential_switching_schedule(
            self.num_elements, self.samples_per_period)

    # --- Eq. 3: Fourier coefficients of the switching waveforms --------------

    def fourier_coefficients(self, harmonics) -> np.ndarray:
        """``a[m, n]`` for requested harmonic orders m (Eq. 3).

        Computed from the sampled schedule via the DFT, so any schedule
        (not just the sequential one) works.
        """
        m = np.atleast_1d(np.asarray(harmonics, dtype=int))
        k = self.samples_per_period
        t_idx = np.arange(k)
        # a_mn = (1/K) sum_t w_n[t] exp(-j 2 pi m t / K)
        basis = np.exp(-2j * np.pi * np.outer(m, t_idx) / k)  # (M, K)
        return basis @ self.schedule.T / k  # (M, N)

    # --- Eq. 4: per-harmonic beam patterns -----------------------------------

    def steering_vector(self, theta_rad: float) -> np.ndarray:
        """Inter-element phase progression for an arrival direction."""
        lam = float(wavelength(self.frequency_hz))
        n = np.arange(self.num_elements)
        return np.exp(1j * 2.0 * np.pi * self.spacing_m / lam
                      * n * np.sin(theta_rad))

    def harmonic_gain(self, harmonic: int, theta_rad: float) -> complex:
        """Complex gain of harmonic ``m`` for a signal from ``theta`` (Eq. 4)."""
        coeffs = self.fourier_coefficients([harmonic])[0]
        return complex(coeffs @ self.steering_vector(theta_rad))

    def harmonic_powers_db(self, theta_rad: float,
                           max_harmonic: int | None = None) -> np.ndarray:
        """Power [dB] of each harmonic -max..max for one arrival direction.

        Index 0 of the returned array is harmonic ``-max_harmonic``.
        """
        if max_harmonic is None:
            max_harmonic = self.num_elements
        m = np.arange(-max_harmonic, max_harmonic + 1)
        coeffs = self.fourier_coefficients(m)  # (M, N)
        gains = coeffs @ self.steering_vector(theta_rad)
        power = np.abs(gains) ** 2
        return linear_to_db(np.maximum(power, 1e-30))

    def dominant_harmonic(self, theta_rad: float,
                          max_harmonic: int | None = None) -> int:
        """The harmonic order carrying most of a direction's energy."""
        if max_harmonic is None:
            max_harmonic = self.num_elements
        powers = self.harmonic_powers_db(theta_rad, max_harmonic)
        return int(np.argmax(powers)) - max_harmonic

    def image_suppression_db(self, theta_rad: float,
                             max_harmonic: int | None = None) -> float:
        """Strongest-to-next-harmonic power ratio [dB] for one direction.

        The paper quotes 20-30 dB for the unwanted copies; the sequential
        schedule achieves ~"sinc-sidelobe" suppression that lands in that
        band for moderate N.
        """
        powers = self.harmonic_powers_db(theta_rad, max_harmonic)
        order = np.sort(powers)[::-1]
        return float(order[0] - order[1])

    # --- Eq. 1: time-domain processing ------------------------------------------

    def process(self, samples: np.ndarray, sample_rate_hz: float,
                theta_rad: float) -> np.ndarray:
        """Apply the switched array to a signal arriving from ``theta``.

        Implements Eq. 1 directly in the time domain: each element sees
        the signal with its spatial phase, gated by its switching
        waveform, and the gated copies are summed.  An FFT of the output
        shows the harmonic images.
        """
        x = np.asarray(samples, dtype=np.complex128)
        if sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        period_samples = sample_rate_hz / self.switching_rate_hz
        if period_samples < self.samples_per_period:
            raise ValueError("sample rate too low for the switching schedule")
        t = np.arange(x.size) / sample_rate_hz
        # Map each time instant into the switching period.
        phase_in_period = (t * self.switching_rate_hz) % 1.0
        slot = np.minimum((phase_in_period * self.samples_per_period).astype(int),
                          self.samples_per_period - 1)
        steering = self.steering_vector(theta_rad)
        y = np.zeros_like(x)
        for n in range(self.num_elements):
            y += self.schedule[n, slot] * steering[n] * x
        return y

    def separate(self, samples: np.ndarray, sample_rate_hz: float,
                 arrivals: list[float]) -> np.ndarray:
        """Mix several same-channel arrivals through the TMA.

        ``samples`` has shape (num_signals, n); each row arrives from the
        matching direction in ``arrivals``.  Returns the combined output
        whose spectrum shows each signal shifted to its direction's
        dominant harmonic — the demultiplexing of Fig. 6.
        """
        x = np.atleast_2d(np.asarray(samples, dtype=np.complex128))
        if x.shape[0] != len(arrivals):
            raise ValueError("one arrival direction per signal row required")
        out = np.zeros(x.shape[1], dtype=np.complex128)
        for row, theta in zip(x, arrivals):
            out += self.process(row, sample_rate_hz, theta)
        return out
