"""Direction-aware SDM scheduling — an AP-side optimisation.

Section 7(b) leaves open *which* nodes should share a channel when SDM
kicks in.  Since TMA separation is angular, the AP should pair nodes
whose arrival directions are far apart.  This module implements that
policy (a greedy max-angular-separation assignment) next to the naive
round-robin the base network model uses, and the ablation benchmark
quantifies the SINR it buys.  This is squarely "future work the system
invites" rather than something the paper evaluates — flagged as an
extension in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..sim.geometry import normalize_angle
from ..sim.placement import Placement
from ..telemetry import TelemetryRecorder

__all__ = ["arrival_bearing_rad", "RoundRobinScheduler",
           "AngularSdmScheduler", "assignment_min_separation_rad",
           "count_harmonic_collisions", "HARMONIC_COLLISION_RAD"]

HARMONIC_COLLISION_RAD = math.radians(10.0)
"""Co-channel pairs closer than this arrival-bearing gap sit inside
each other's TMA harmonic beam — the scheduler's failure mode the
``sdm.harmonic_collisions`` counter tracks."""


def count_harmonic_collisions(placements: list[Placement],
                              channels: list[int],
                              threshold_rad: float = HARMONIC_COLLISION_RAD
                              ) -> int:
    """Co-channel pairs whose angular gap is below ``threshold_rad``.

    Each such pair is a harmonic collision: the TMA cannot separate the
    two directions, so their uplinks interfere at full strength.
    """
    if len(placements) != len(channels):
        raise ValueError("one channel per placement required")
    if threshold_rad <= 0:
        raise ValueError("threshold must be positive")
    bearings = [arrival_bearing_rad(p) for p in placements]
    collisions = 0
    for i in range(len(placements)):
        for j in range(i + 1, len(placements)):
            if channels[i] != channels[j]:
                continue
            if abs(normalize_angle(bearings[i] - bearings[j])) \
                    < threshold_rad:
                collisions += 1
    return collisions


def _record_assignment(telemetry: TelemetryRecorder | None,
                       placements: list[Placement],
                       channels: list[int]) -> None:
    """Emit the ``sdm.*`` family for one completed assignment."""
    if telemetry is None or not telemetry.enabled:
        return
    telemetry.count("sdm.assignments")
    telemetry.count("sdm.nodes", len(placements))
    if placements:
        telemetry.gauge(
            "sdm.min_separation_rad",
            assignment_min_separation_rad(placements, channels))
        collisions = count_harmonic_collisions(placements, channels)
        if collisions:
            telemetry.count("sdm.harmonic_collisions", collisions)


def arrival_bearing_rad(placement: Placement) -> float:
    """Arrival direction at the AP, relative to the AP's boresight."""
    dx = placement.node_position.x - placement.ap_position.x
    dy = placement.node_position.y - placement.ap_position.y
    return normalize_angle(math.atan2(dy, dx)
                           - placement.ap_orientation_rad)


@dataclass(frozen=True)
class RoundRobinScheduler:
    """The baseline policy: node i -> channel ``i mod num_channels``."""

    num_channels: int

    def assign(self, placements: list[Placement],
               telemetry: TelemetryRecorder | None = None) -> list[int]:
        """Ignore geometry entirely.

        ``telemetry`` (optional) receives the ``sdm.*`` family — the
        assignment count, node count, worst-pair separation gauge and
        harmonic-collision counter — for churn comparisons against the
        angular policy.
        """
        if self.num_channels < 1:
            raise ValueError("need at least one channel")
        channels = [i % self.num_channels for i in range(len(placements))]
        _record_assignment(telemetry, placements, channels)
        return channels


@dataclass(frozen=True)
class AngularSdmScheduler:
    """Greedy max-angular-separation channel assignment.

    Nodes are sorted by arrival bearing and dealt onto channels in
    bearing order, one per channel per round.  Co-channel partners are
    then maximally spread in angle (the k-th and (k+C)-th nodes in
    bearing order share), which is exactly what the TMA's
    harmonic-beam separation rewards.
    """

    num_channels: int

    def assign(self, placements: list[Placement],
               telemetry: TelemetryRecorder | None = None) -> list[int]:
        """Channel index per placement (same order as the input).

        ``telemetry`` (optional) receives the ``sdm.*`` family
        (assignment/node counters, the worst-pair separation gauge and
        the harmonic-collision counter) so scheduler churn shows up in
        the same export as the rest of the stack.
        """
        if self.num_channels < 1:
            raise ValueError("need at least one channel")
        n = len(placements)
        bearings = [arrival_bearing_rad(p) for p in placements]
        order = np.argsort(bearings)
        channels = [0] * n
        for rank, idx in enumerate(order):
            # Deal in bearing order: consecutive-bearing nodes land on
            # different channels, so co-channel partners sit C ranks
            # apart — the widest achievable worst-pair separation.
            channels[int(idx)] = rank % self.num_channels
        _record_assignment(telemetry, placements, channels)
        return channels


def assignment_min_separation_rad(placements: list[Placement],
                                  channels: list[int]) -> float:
    """Smallest angular gap between any co-channel pair.

    The figure of merit for an SDM assignment: larger is better (more
    TMA separation for the worst pair).  Returns ``pi`` when no channel
    is shared.
    """
    if len(placements) != len(channels):
        raise ValueError("one channel per placement required")
    bearings = [arrival_bearing_rad(p) for p in placements]
    worst = math.pi
    for i in range(len(placements)):
        for j in range(i + 1, len(placements)):
            if channels[i] != channels[j]:
                continue
            gap = abs(normalize_angle(bearings[i] - bearings[j]))
            worst = min(worst, gap)
    return worst
