"""Direction-aware SDM scheduling — an AP-side optimisation.

Section 7(b) leaves open *which* nodes should share a channel when SDM
kicks in.  Since TMA separation is angular, the AP should pair nodes
whose arrival directions are far apart.  This module implements that
policy (a greedy max-angular-separation assignment) next to the naive
round-robin the base network model uses, and the ablation benchmark
quantifies the SINR it buys.  This is squarely "future work the system
invites" rather than something the paper evaluates — flagged as an
extension in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..sim.geometry import normalize_angle
from ..sim.placement import Placement

__all__ = ["arrival_bearing_rad", "RoundRobinScheduler",
           "AngularSdmScheduler", "assignment_min_separation_rad"]


def arrival_bearing_rad(placement: Placement) -> float:
    """Arrival direction at the AP, relative to the AP's boresight."""
    dx = placement.node_position.x - placement.ap_position.x
    dy = placement.node_position.y - placement.ap_position.y
    return normalize_angle(math.atan2(dy, dx)
                           - placement.ap_orientation_rad)


@dataclass(frozen=True)
class RoundRobinScheduler:
    """The baseline policy: node i -> channel ``i mod num_channels``."""

    num_channels: int

    def assign(self, placements: list[Placement]) -> list[int]:
        """Ignore geometry entirely."""
        if self.num_channels < 1:
            raise ValueError("need at least one channel")
        return [i % self.num_channels for i in range(len(placements))]


@dataclass(frozen=True)
class AngularSdmScheduler:
    """Greedy max-angular-separation channel assignment.

    Nodes are sorted by arrival bearing and dealt onto channels in
    bearing order, one per channel per round.  Co-channel partners are
    then maximally spread in angle (the k-th and (k+C)-th nodes in
    bearing order share), which is exactly what the TMA's
    harmonic-beam separation rewards.
    """

    num_channels: int

    def assign(self, placements: list[Placement]) -> list[int]:
        """Channel index per placement (same order as the input)."""
        if self.num_channels < 1:
            raise ValueError("need at least one channel")
        n = len(placements)
        bearings = [arrival_bearing_rad(p) for p in placements]
        order = np.argsort(bearings)
        channels = [0] * n
        for rank, idx in enumerate(order):
            # Deal in bearing order: consecutive-bearing nodes land on
            # different channels, so co-channel partners sit C ranks
            # apart — the widest achievable worst-pair separation.
            channels[int(idx)] = rank % self.num_channels
        return channels


def assignment_min_separation_rad(placements: list[Placement],
                                  channels: list[int]) -> float:
    """Smallest angular gap between any co-channel pair.

    The figure of merit for an SDM assignment: larger is better (more
    TMA separation for the worst pair).  Returns ``pi`` when no channel
    is shared.
    """
    if len(placements) != len(channels):
        raise ValueError("one channel per placement required")
    bearings = [arrival_bearing_rad(p) for p in placements]
    worst = math.pi
    for i in range(len(placements)):
        for j in range(i + 1, len(placements)):
            if channels[i] != channels[j]:
                continue
            gap = abs(normalize_angle(bearings[i] - bearings[j]))
            worst = min(worst, gap)
    return worst
