"""Frequency-division multiplexing: the AP's channel allocator (§7a).

"mmX divides the available spectrum between nodes depending on their data
rate demand" — a camera needing 10 Mbps gets a few MHz; the 250 MHz ISM
band carries many such channels.  Allocation happens once, at
initialization, over the WiFi/Bluetooth side link.

Placement is first-fit over the free spectrum.  The seed implementation
re-sorted every occupied interval on every call (quadratic under
registration churn); placement now runs on the interval-indexed
:class:`repro.admission.book.SpectrumBook`, which keeps the free gaps
sorted and prunes non-fitting ones in bulk — O(√n)-per-op with C-level
constants, byte-identical results (proven by the hypothesis equivalence
suite in ``tests/test_admission.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..constants import ISM_24GHZ_HIGH_HZ, ISM_24GHZ_LOW_HZ
from ..telemetry import NullRecorder, TelemetryRecorder

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from ..admission.book import SpectrumBook

__all__ = ["ChannelPlan", "FdmAllocator", "SpectrumExhausted"]


class SpectrumExhausted(Exception):
    """No contiguous spectrum left for a requested channel.

    The caller should fall back to SDM (spatial reuse of an existing
    channel via the TMA) — exactly the escalation section 7(b) describes.
    """


@dataclass(frozen=True)
class ChannelPlan:
    """One allocated channel."""

    node_id: int
    center_hz: float
    bandwidth_hz: float

    @property
    def low_hz(self) -> float:
        """Lower channel edge."""
        return self.center_hz - self.bandwidth_hz / 2.0

    @property
    def high_hz(self) -> float:
        """Upper channel edge."""
        return self.center_hz + self.bandwidth_hz / 2.0

    def overlaps(self, other: ChannelPlan) -> bool:
        """Whether two channels share spectrum."""
        return self.low_hz < other.high_hz and other.low_hz < self.high_hz


class FdmAllocator:
    """First-fit contiguous allocator over the 24 GHz ISM band.

    Channel bandwidth is provisioned from the demanded bit rate times a
    spectral overhead factor: OTAM's ASK-FSK occupies roughly twice the
    bit rate (two tones plus main lobes), plus a guard fraction.
    """

    def __init__(self,
                 band_low_hz: float = ISM_24GHZ_LOW_HZ,
                 band_high_hz: float = ISM_24GHZ_HIGH_HZ,
                 bandwidth_per_bps: float = 2.0,
                 guard_fraction: float = 0.25,
                 min_channel_hz: float = 1e6,
                 telemetry: TelemetryRecorder | None = None):
        if band_high_hz <= band_low_hz:
            raise ValueError("invalid band edges")
        if bandwidth_per_bps <= 0 or min_channel_hz <= 0:
            raise ValueError("invalid sizing parameters")
        if guard_fraction < 0:
            raise ValueError("guard fraction cannot be negative")
        self.band_low_hz = band_low_hz
        self.band_high_hz = band_high_hz
        self.bandwidth_per_bps = bandwidth_per_bps
        self.guard_fraction = guard_fraction
        self.min_channel_hz = min_channel_hz
        self.telemetry = telemetry if telemetry is not None \
            else NullRecorder()
        """Sink for the ``fdm.*`` metric family: allocation-churn
        counters (allocations / releases / reallocations / exhausted /
        blocked_ranges) and the committed-spectrum gauge.  The allocator
        never touches the recorder's clock — the driver owns time."""
        # Deferred import: repro.admission.controller imports this
        # module back, so a top-level import would cycle.
        from ..admission.book import SpectrumBook

        self._plans: dict[int, ChannelPlan] = {}
        self._blocked: list[tuple[float, float]] = []
        self._book: SpectrumBook = SpectrumBook(band_low_hz, band_high_hz)

    @property
    def total_bandwidth_hz(self) -> float:
        """Width of the managed band (250 MHz for the 24 GHz ISM band)."""
        return self.band_high_hz - self.band_low_hz

    @property
    def allocated_bandwidth_hz(self) -> float:
        """Spectrum currently committed (guards included)."""
        return sum(p.bandwidth_hz * (1.0 + self.guard_fraction)
                   for p in self._plans.values())

    def channel_bandwidth_for_rate(self, rate_bps: float) -> float:
        """Provisioned channel width for a demanded bit rate."""
        if rate_bps <= 0:
            raise ValueError("demanded rate must be positive")
        return max(self.min_channel_hz, rate_bps * self.bandwidth_per_bps)

    def _place(self, node_id: int, width: float) -> ChannelPlan:
        """First-fit a channel of ``width`` into the free, unblocked band.

        Delegates the gap search to the spectrum book; the returned
        cursor is bit-identical to the seed's sorted-scan cursor.  The
        caller must :meth:`SpectrumBook.commit` the plan's extent once
        the allocation is final.
        """
        cursor = self._book.place(width, self.guard_fraction)
        if cursor is None:
            raise SpectrumExhausted(
                f"no room for a {width/1e6:.1f} MHz channel")
        return ChannelPlan(node_id=node_id, center_hz=cursor + width / 2.0,
                           bandwidth_hz=width)

    def allocate(self, node_id: int, demanded_rate_bps: float) -> ChannelPlan:
        """Assign the lowest free channel that fits the demand.

        Raises :class:`SpectrumExhausted` when the band cannot fit the
        request — the signal to switch that node to SDM.
        """
        if node_id in self._plans:
            raise ValueError(f"node {node_id} already holds a channel")
        width = self.channel_bandwidth_for_rate(demanded_rate_bps)
        tel = self.telemetry
        try:
            plan = self._place(node_id, width)
        except SpectrumExhausted:
            if tel.enabled:
                tel.count("fdm.exhausted")
            raise
        self._book.commit(node_id, plan.low_hz, plan.high_hz)
        self._plans[node_id] = plan
        if tel.enabled:
            tel.count("fdm.allocations")
            tel.gauge("fdm.allocated_bandwidth_hz",
                      self.allocated_bandwidth_hz)
        return plan

    # --- interference avoidance ------------------------------------------

    def block_range(self, low_hz: float, high_hz: float) -> None:
        """Mark a spectrum range as unusable (a detected interferer).

        Blocked ranges are skipped by :meth:`allocate` and
        :meth:`reallocate`; existing allocations are not evicted — move
        a hit node explicitly with :meth:`reallocate`.
        """
        if high_hz <= low_hz:
            raise ValueError("invalid blocked range")
        self._blocked.append((float(low_hz), float(high_hz)))
        self._book.block(float(low_hz), float(high_hz))
        if self.telemetry.enabled:
            self.telemetry.count("fdm.blocked_ranges")

    def clear_blocks(self) -> None:
        """Forget all blocked ranges (the interferer went away)."""
        self._blocked = []
        self._book.clear_blocks()

    @property
    def blocked_ranges(self) -> tuple[tuple[float, float], ...]:
        """Currently blocked spectrum ranges, sorted."""
        return tuple(sorted(self._blocked))

    def reallocate(self, node_id: int) -> ChannelPlan:
        """Move a node to fresh spectrum, preserving its bandwidth.

        Intended to follow :meth:`block_range` once an interferer is
        localised: first-fit then lands the node on the lowest clean
        slot.  On :class:`SpectrumExhausted` the old plan is restored —
        a failed move must not strand the node without any channel.
        """
        old = self.plan_for(node_id)
        del self._plans[node_id]
        self._book.release(node_id, old.low_hz, old.high_hz)
        tel = self.telemetry
        try:
            plan = self._place(node_id, old.bandwidth_hz)
        except SpectrumExhausted:
            self._book.commit(node_id, old.low_hz, old.high_hz)
            self._plans[node_id] = old
            if tel.enabled:
                tel.count("fdm.exhausted")
            raise
        self._book.commit(node_id, plan.low_hz, plan.high_hz)
        self._plans[node_id] = plan
        if tel.enabled:
            tel.count("fdm.reallocations")
            tel.event("fdm.reallocation", node_id=node_id,
                      from_hz=old.center_hz, to_hz=plan.center_hz)
        return plan

    def restore_plan(self, plan: ChannelPlan) -> None:
        """Re-install an exact channel plan (checkpoint restore path).

        Unlike :meth:`allocate`, no placement search runs: the plan is
        inserted verbatim so a restored AP reproduces its pre-crash
        spectrum map bit-for-bit.  Rejects duplicates and overlaps with
        existing plans — a corrupt checkpoint must not silently build
        an inconsistent spectrum map.
        """
        if plan.node_id in self._plans:
            raise ValueError(f"node {plan.node_id} already holds a channel")
        if plan.low_hz < self.band_low_hz or plan.high_hz > self.band_high_hz:
            raise ValueError("restored plan falls outside the managed band")
        hit = self._book.overlapping_plan_ids(plan.low_hz, plan.high_hz)
        if hit:
            raise ValueError(
                f"restored plan for node {plan.node_id} overlaps "
                f"node {hit[0]}")
        self._book.commit(plan.node_id, plan.low_hz, plan.high_hz)
        self._plans[plan.node_id] = plan

    def release(self, node_id: int) -> None:
        """Return a node's channel to the pool."""
        if node_id not in self._plans:
            raise KeyError(f"node {node_id} holds no channel")
        old = self._plans.pop(node_id)
        self._book.release(node_id, old.low_hz, old.high_hz)
        if self.telemetry.enabled:
            self.telemetry.count("fdm.releases")
            self.telemetry.gauge("fdm.allocated_bandwidth_hz",
                                 self.allocated_bandwidth_hz)

    def plan_for(self, node_id: int) -> ChannelPlan:
        """Look up a node's channel."""
        try:
            return self._plans[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} holds no channel") from None

    @property
    def plans(self) -> list[ChannelPlan]:
        """All current allocations, sorted by center frequency."""
        return sorted(self._plans.values(), key=lambda p: p.center_hz)

    # --- indexed queries (admission-control fast paths) -------------------

    def plans_overlapping(self, low_hz: float,
                          high_hz: float) -> list[ChannelPlan]:
        """Plans overlapping ``(low_hz, high_hz)``, by frequency.

        An indexed range query — O(√n + hits) instead of a scan over
        every registration — used by
        :meth:`repro.node.access_point.MmxAccessPoint.mark_interference`
        and the :class:`repro.admission.AdmissionController` batched
        re-admission pass.  Overlap is the same strict-inequality
        predicate as :meth:`ChannelPlan.overlaps`.
        """
        return [self._plans[node_id] for node_id
                in self._book.overlapping_plan_ids(low_hz, high_hz)]

    @property
    def free_bandwidth_hz(self) -> float:
        """Spectrum neither committed to a plan nor blocked."""
        return self._book.free_hz

    @property
    def largest_free_gap_hz(self) -> float:
        """Widest contiguous free interval (0.0 when the band is full)."""
        return self._book.largest_gap_hz

    @property
    def fragmentation(self) -> float:
        """1 − (largest free gap / total free spectrum), in [0, 1].

        0.0 means all free spectrum is one contiguous run (or the band
        is completely full); values near 1.0 mean the free spectrum is
        shredded into slivers no wide channel can use.
        """
        free = self._book.free_hz
        if free <= 0.0:
            return 0.0
        return 1.0 - self._book.largest_gap_hz / free
