"""Hybrid MIMO AP — the expensive SDM alternative (§7b).

"The AP uses multiple mmWave chains connected to one or multiple arrays
which create independent beams toward different directions... since this
architecture requires multiple mmWave chains, it is power hungry and
costly for IoT applications."  This model exists to quantify that
trade-off against the TMA in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..antenna.phased_array import PhasedArray

__all__ = ["HybridMimoAp"]

# One full mmWave receive chain: LNA + filter + mixer + LO share, from the
# paper's component survey (section 1: mixer ~1 W, amplifier ~2.5 W at
# 24 GHz for TX-grade parts; an RX chain is lighter).
_POWER_PER_CHAIN_W = 1.2
_COST_PER_CHAIN_USD = 220.0 + 70.0 + 45.0  # amplifier + mixer + PLL share


@dataclass
class HybridMimoAp:
    """An AP with ``num_chains`` independent steerable beams."""

    num_chains: int
    elements_per_chain: int = 8
    frequency_hz: float = 24.125e9

    def __post_init__(self):
        if self.num_chains < 1:
            raise ValueError("need at least one chain")
        self.arrays = [PhasedArray(self.elements_per_chain, self.frequency_hz)
                       for _ in range(self.num_chains)]

    @property
    def power_consumption_w(self) -> float:
        """Chains plus their phased arrays."""
        return (self.num_chains * _POWER_PER_CHAIN_W
                + sum(a.power_consumption_w for a in self.arrays))

    @property
    def cost_usd(self) -> float:
        """Chains plus their phased arrays."""
        return (self.num_chains * _COST_PER_CHAIN_USD
                + sum(a.cost_usd for a in self.arrays))

    @property
    def max_cochannel_nodes(self) -> int:
        """Simultaneous same-frequency nodes it can separate."""
        return self.num_chains

    def separation_gain_db(self, wanted_theta_rad: float,
                           interferer_theta_rad: float) -> float:
        """Spatial rejection of an interferer by one steered beam.

        Steer a chain's array at the wanted node; the interferer is
        attenuated by the pattern value at its direction.
        """
        pattern = self.arrays[0].steered_pattern(wanted_theta_rad)
        wanted = float(np.asarray(pattern.power_db(wanted_theta_rad)))
        unwanted = float(np.asarray(pattern.power_db(interferer_theta_rad)))
        return wanted - unwanted
