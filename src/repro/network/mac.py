"""A minimal MAC for mmX uplinks: per-node queueing and TDMA slotting.

mmX's air interface is feedback-free, but a *node* still has to decide
when to key its own switch: video frames arrive from the sensor, queue,
and are drained over the node's (FDM-allocated) channel.  This module
provides a discrete-event model of that producer/consumer loop:

* :class:`PacketQueue` — a finite buffer with tail-drop and byte/packet
  accounting.
* :class:`TdmaSchedule` — when several nodes *share* one channel via
  SDM but their directions are not separable, the AP can fall back to
  time slicing; the schedule computes each node's duty cycle.
* :class:`UplinkSimulator` — drives a periodic source (a camera's frame
  cadence) through the queue and the link's frame-success process,
  producing throughput/latency/drop statistics.

This is deliberately simple — the paper has no MAC section — but it
turns the PHY numbers into the latency/loss figures an application
integration would be judged on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..rng import ensure_rng
from ..telemetry import NullRecorder, TelemetryRecorder

__all__ = ["PacketQueue", "TdmaSchedule", "UplinkStats", "UplinkSimulator"]


@dataclass
class PacketQueue:
    """Finite FIFO of (arrival_time_s, size_bytes) with tail drop."""

    capacity_packets: int = 64

    def __post_init__(self):
        if self.capacity_packets < 1:
            raise ValueError("queue needs capacity for at least one packet")
        self._items: deque[tuple[float, int]] = deque()
        self.dropped = 0
        self.dropped_bytes = 0
        self.enqueued = 0

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, arrival_s: float, size_bytes: int) -> bool:
        """Enqueue; False (and a drop) when the buffer is full.

        Rejected packets are counted in both ``dropped`` (packets) and
        ``dropped_bytes`` — overload experiments need the byte total to
        report goodput *loss*, not just a drop count.
        """
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        if len(self._items) >= self.capacity_packets:
            self.dropped += 1
            self.dropped_bytes += size_bytes
            return False
        self._items.append((arrival_s, size_bytes))
        self.enqueued += 1
        return True

    def pop(self) -> tuple[float, int]:
        """Dequeue the head-of-line packet."""
        if not self._items:
            raise IndexError("queue empty")
        return self._items.popleft()

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently waiting."""
        return sum(size for _, size in self._items)


@dataclass(frozen=True)
class TdmaSchedule:
    """Equal time slicing among nodes stuck on one channel."""

    num_nodes: int
    slot_duration_s: float = 1e-3

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError("need at least one node")
        if self.slot_duration_s <= 0:
            raise ValueError("slot duration must be positive")

    @property
    def frame_duration_s(self) -> float:
        """One full TDMA rotation."""
        return self.num_nodes * self.slot_duration_s

    def duty_cycle(self) -> float:
        """Fraction of airtime each node owns."""
        return 1.0 / self.num_nodes

    def owner_at(self, time_s: float) -> int:
        """Which node's slot covers an instant."""
        if time_s < 0:
            raise ValueError("time cannot be negative")
        slot = int(time_s / self.slot_duration_s)
        return slot % self.num_nodes

    def effective_rate_bps(self, channel_rate_bps: float) -> float:
        """Per-node throughput ceiling under the slicing."""
        if channel_rate_bps <= 0:
            raise ValueError("channel rate must be positive")
        return channel_rate_bps * self.duty_cycle()


@dataclass(frozen=True)
class UplinkStats:
    """Outcome of an uplink simulation run."""

    offered_packets: int
    delivered_packets: int
    dropped_packets: int
    """Packets lost outright: queue tail-drops plus ARQ exhaustion."""

    expired_packets: int
    """Packets that missed the deadline: still queued when the window
    closed, or whose (successful) transmission finished after it."""

    retransmissions: int
    mean_latency_s: float
    p99_latency_s: float
    goodput_bps: float

    @property
    def delivery_ratio(self) -> float:
        """Delivered / offered."""
        if self.offered_packets == 0:
            return 1.0
        return self.delivered_packets / self.offered_packets


class UplinkSimulator:
    """Periodic source -> queue -> lossy link, with ARQ retransmission.

    ``frame_success_probability`` is the per-transmission survival
    chance (from :mod:`repro.core.throughput` at the placement's SNR).
    Retransmission follows one of two disciplines:

    * default — the seed behaviour: immediate retry, up to
      ``max_retries``, then the packet is counted lost;
    * ``transport=`` an :class:`repro.transport.AdaptiveRetransmission`
      — each failed attempt waits out the policy's Jacobson RTO before
      the retransmission (the loss has to be *detected*), successful
      first attempts feed the estimator, and the attempt cap comes from
      the policy.  This is the end-to-end reliable-transport path.

    Transmission time = frame bits / link rate.
    """

    def __init__(self, link_rate_bps: float, frame_bits: int,
                 frame_success_probability: float,
                 queue: PacketQueue | None = None,
                 max_retries: int = 3,
                 rng: np.random.Generator | None = None,
                 transport=None,
                 telemetry: TelemetryRecorder | None = None):
        if link_rate_bps <= 0 or frame_bits <= 0:
            raise ValueError("link rate and frame size must be positive")
        if not 0.0 <= frame_success_probability <= 1.0:
            raise ValueError("success probability must be in [0, 1]")
        if max_retries < 0:
            raise ValueError("retries cannot be negative")
        self.link_rate_bps = link_rate_bps
        self.frame_bits = frame_bits
        self.p_success = frame_success_probability
        self.queue = queue or PacketQueue()
        self.max_retries = max_retries
        self.rng = ensure_rng(rng)
        self.transport = transport
        self.telemetry = telemetry if telemetry is not None \
            else NullRecorder()
        """Sink for the ``mac.*`` metric family (see
        docs/observability.md); the default :class:`NullRecorder`
        keeps the hot loop at seed-repo cost."""

    @property
    def frame_airtime_s(self) -> float:
        """Time to transmit one frame."""
        return self.frame_bits / self.link_rate_bps

    def run(self, duration_s: float, packet_interval_s: float,
            packet_bytes: int = 1024) -> UplinkStats:
        """Simulate a periodic source for ``duration_s`` seconds."""
        if duration_s <= 0 or packet_interval_s <= 0:
            raise ValueError("durations must be positive")
        tel = self.telemetry
        queue_drops_before = self.queue.dropped
        offered = 0
        delivered = 0
        arq_lost = 0
        retransmissions = 0
        latencies: list[float] = []
        goodput_bits = 0
        clock = 0.0
        next_arrival = 0.0
        # Transmissions stop at the end of the window: anything still
        # queued then counts as undelivered, so goodput can never
        # exceed the link rate.
        while (next_arrival < duration_s or len(self.queue)) \
                and clock < duration_s:
            # Admit every arrival that lands before the head transmission
            # completes.
            while next_arrival < duration_s and next_arrival <= clock:
                self.queue.offer(next_arrival, packet_bytes)
                offered += 1
                next_arrival += packet_interval_s
            if not len(self.queue):
                if next_arrival >= duration_s:
                    break
                clock = next_arrival
                continue
            arrival, size = self.queue.pop()
            start = max(clock, arrival)
            attempts = 0
            success = False
            if self.transport is not None:
                cap = self.transport.max_transmissions
                while attempts < cap:
                    attempts += 1
                    success = bool(self.rng.random() < self.p_success)
                    start += self.transport.attempt_cost_s(
                        self.frame_airtime_s, success,
                        first_attempt=(attempts == 1))
                    if success:
                        break
            else:
                while attempts <= self.max_retries:
                    attempts += 1
                    start += self.frame_airtime_s
                    if self.rng.random() < self.p_success:
                        success = True
                        break
            retransmissions += attempts - 1
            clock = start
            if tel.enabled:
                tel.count("mac.frame_attempts", attempts)
            if not success:
                arq_lost += 1
            elif clock <= duration_s:
                delivered += 1
                goodput_bits += size * 8
                latencies.append(clock - arrival)
                if tel.enabled:
                    tel.observe("mac.latency_s", clock - arrival)
        # Every offered packet lands in exactly one bucket: delivered,
        # dropped (tail-drop or ARQ exhaustion), or expired (missed the
        # deadline — still queued, or completed after the window).
        dropped = self.queue.dropped + arq_lost
        expired = offered - delivered - dropped
        if tel.enabled:
            # The uplink window just simulated advances the shared
            # telemetry timeline; counters use per-run deltas so a
            # reused queue's history is not double-counted.
            tel.clock.advance(duration_s)
            tel.count("mac.frames_offered", offered)
            tel.count("mac.frames_delivered", delivered)
            tel.count("mac.frames_arq_lost", arq_lost)
            tel.count("mac.frames_expired", expired)
            tel.count("mac.queue_drops",
                      self.queue.dropped - queue_drops_before)
            tel.count("mac.retransmissions", retransmissions)
            tel.event("mac.run", duration_s=duration_s,
                      offered=offered, delivered=delivered,
                      goodput_bps=goodput_bits / duration_s)
        return UplinkStats(
            offered_packets=offered,
            delivered_packets=delivered,
            dropped_packets=dropped,
            expired_packets=expired,
            retransmissions=retransmissions,
            mean_latency_s=(float(np.mean(latencies)) if latencies else 0.0),
            p99_latency_s=(float(np.percentile(latencies, 99))
                           if latencies else 0.0),
            goodput_bps=goodput_bits / duration_s,
        )
