"""Mall surveillance: planning a multi-AP mmX deployment (paper §1).

"It can also enable wireless connectivity to surveillance cameras in
public areas such as malls, banks, libraries, and parks."  A mall
corridor is far bigger than one AP cell, so this example:

1. lays out a 12 m x 60 m corridor with storefront reflectors,
2. scatters surveillance cameras along both sides,
3. greedily plans AP positions until every camera clears 10 dB,
4. reports the resulting per-AP load and per-camera link margins, and
5. applies rate adaptation: cameras at the cell edge switch to
   Hamming-coded frames, close-in cameras run uncoded.

Run:  python examples/surveillance_mall.py
"""

from __future__ import annotations

import numpy as np

from repro.core.throughput import RateAdapter
from repro.network.deployment import Deployment, plan_access_points
from repro.sim.environment import Room, Wall
from repro.sim.geometry import Point, Segment


def mall_corridor() -> Room:
    """A 12 m x 60 m corridor; storefront glass reflects strongly."""
    room = Room.rectangular(width_m=12.0, length_m=60.0,
                            reflection_loss_db=6.0)
    # Storefront display windows along both walls.
    for y in (5.0, 14.0, 23.0, 32.0, 41.0, 50.0):
        room.add_wall(Wall(Segment(Point(0.0, y), Point(0.0, y + 3.0)),
                           reflection_loss_db=4.0, name=f"glass-west-{y:.0f}",
                           occludes=False))
        room.add_wall(Wall(Segment(Point(12.0, y), Point(12.0, y + 3.0)),
                           reflection_loss_db=4.0, name=f"glass-east-{y:.0f}",
                           occludes=False))
    # Kiosks down the corridor spine block the long sight lines.
    for y in (15.0, 30.0, 45.0):
        room.add_wall(Wall(Segment(Point(4.5, y), Point(7.5, y)),
                           reflection_loss_db=6.0, name=f"kiosk-{y:.0f}"))
    return room


def camera_positions(rng: np.random.Generator, count: int = 18) -> list[Point]:
    """Cameras mounted along the storefronts, both sides."""
    cameras = []
    for i in range(count):
        side = 0.6 if i % 2 == 0 else 11.4
        y = float(rng.uniform(1.0, 59.0))
        cameras.append(Point(side, y))
    return cameras


def main() -> None:
    rng = np.random.default_rng(21)
    room = mall_corridor()
    cameras = camera_positions(rng)

    # Candidate AP mounts: ceiling drops along the corridor spine.
    candidates = [Point(6.0, y) for y in np.arange(4.0, 60.0, 6.0)]

    print(f"== planning APs for {len(cameras)} cameras "
          f"in a 12 m x 60 m corridor ==")
    chosen = plan_access_points(room, cameras, candidates,
                                threshold_db=14.0)
    print(f"greedy plan uses {len(chosen)} AP(s): "
          + ", ".join(f"({p.x:.0f}, {p.y:.0f})" for p in chosen))

    deployment = Deployment(room, chosen)
    assignments = deployment.assign(cameras)
    coverage = deployment.coverage(cameras, threshold_db=14.0)
    loads = deployment.load_per_ap(cameras)
    print(f"coverage at 14 dB: {coverage:.0%}; per-AP load: {loads}")

    print("\n== per-camera links and coding mode ==")
    adapter = RateAdapter(bit_rate_bps=10e6, payload_bytes=1024)
    print(f"  {'camera':>6} {'pos':>12} {'AP':>3} {'SNR':>7} "
          f"{'mode':>10} {'goodput':>9}")
    for i, assignment in enumerate(assignments):
        mode = adapter.select(assignment.snr_db)
        goodput = adapter.evaluate(assignment.snr_db)[mode.name]
        pos = assignment.node_position
        print(f"  {i:>6} ({pos.x:4.1f},{pos.y:5.1f}) "
              f"{assignment.ap_index:>3} {assignment.snr_db:6.1f}dB "
              f"{mode.name:>10} {goodput/1e6:7.2f} Mbps")

    edge = [a for a in assignments if a.snr_db < 12.0]
    print(f"\n{len(edge)} cell-edge camera(s) switched to coded frames; "
          "no beam searching anywhere, ever.")


if __name__ == "__main__":
    main()
