"""Autonomous-car scenario: eight cameras feed an in-vehicle AP.

Footnote 2 of the paper: "Autonomous cars will be equipped with at least
8 cameras for a 360-degree surrounding coverage", each needing real-time
backhaul to the in-vehicle compute.  This example models the cabin as a
small, highly reflective metal box, rings eight cameras around it, and
shows:

* FDM channel allocation for all eight cameras (the 24 GHz band carries
  them comfortably),
* per-camera SINR when all eight transmit *simultaneously* — including
  the SDM escalation when we deliberately shrink the band,
* the Time-Modulated Array separating co-channel cameras by direction,
* total wiring-harness power/cost replaced versus a phased-array design.

Run:  python examples/autonomous_car.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import MultiNodeNetwork, TimeModulatedArray
from repro.antenna.phased_array import PhasedArray
from repro.hardware.chains import NodeHardware
from repro.network.fdm import FdmAllocator
from repro.sim.environment import Room
from repro.sim.geometry import Point, angle_of
from repro.sim.placement import Placement

CAMERA_RATE_BPS = 10e6  # HD stream per camera


def cabin() -> Room:
    """A 2 m x 4.5 m metal cabin: strongly reflective walls."""
    return Room.rectangular(width_m=2.0, length_m=4.5,
                            reflection_loss_db=4.0)


def ring_placements(room: Room, ap: Point) -> list[Placement]:
    """Eight cameras around the cabin perimeter, facing inward-ish."""
    spots = [
        Point(0.3, 0.5), Point(1.7, 0.5),   # front corners
        Point(0.25, 1.7), Point(1.75, 1.7),  # B-pillars
        Point(0.25, 3.0), Point(1.75, 3.0),  # C-pillars
        Point(0.4, 4.2), Point(1.6, 4.2),   # rear corners
    ]
    return [Placement(node_position=p,
                      node_orientation_rad=angle_of(p, ap),
                      ap_position=ap,
                      ap_orientation_rad=math.pi / 2)
            for p in spots]


def main() -> None:
    rng = np.random.default_rng(3)
    room = cabin()
    ap = Point(1.0, 0.3)  # AP behind the dashboard
    placements = ring_placements(room, ap)

    # --- FDM: all eight cameras fit in the 250 MHz band -----------------
    print("== FDM allocation for 8 cameras at 10 Mbps each ==")
    allocator = FdmAllocator()
    for i in range(8):
        plan = allocator.allocate(i, CAMERA_RATE_BPS)
        print(f"  camera {i}: {plan.center_hz/1e9:.4f} GHz "
              f"({plan.bandwidth_hz/1e6:.0f} MHz)")
    spare = allocator.total_bandwidth_hz - allocator.allocated_bandwidth_hz
    print(f"  spare spectrum: {spare/1e6:.0f} MHz")

    # --- simultaneous transmission ---------------------------------------
    print("\n== all 8 cameras transmitting simultaneously ==")
    network = MultiNodeNetwork(room, rng)
    snapshot = network.evaluate(8, placements=placements)
    for stats in snapshot.nodes:
        tag = " (interference-limited)" if stats.interference_limited else ""
        print(f"  camera {stats.node_id}: {stats.placement.distance_m:4.1f} m"
              f"  SINR {stats.sinr_db:5.1f} dB on ch {stats.channel_index}"
              f"{tag}")
    print(f"  mean SINR {snapshot.mean_sinr_db:.1f} dB, "
          f"worst {snapshot.min_sinr_db:.1f} dB")

    # --- force SDM by shrinking the band ---------------------------------
    print("\n== stress: only 3 channels available -> SDM via the TMA ==")
    cramped = MultiNodeNetwork(room, rng, band_width_hz=75e6)
    snapshot = cramped.evaluate(8, placements=placements)
    shared = sum(1 for s in snapshot.nodes if s.interference_limited)
    print(f"  {shared} cameras are interference-limited, "
          f"mean SINR {snapshot.mean_sinr_db:.1f} dB, "
          f"worst {snapshot.min_sinr_db:.1f} dB — still streaming")

    # --- TMA direction hashing demo --------------------------------------
    print("\n== TMA: two co-channel cameras land on distinct harmonics ==")
    tma = TimeModulatedArray(num_elements=8, frequency_hz=24.125e9,
                             switching_rate_hz=50e6)
    for idx in (0, 3):
        placement = placements[idx]
        bearing = (angle_of(placement.ap_position, placement.node_position)
                   - placement.ap_orientation_rad)
        harmonic = tma.dominant_harmonic(bearing)
        print(f"  camera {idx} arrives from {math.degrees(bearing):+5.1f} deg"
              f" -> harmonic {harmonic:+d} "
              f"({harmonic * tma.switching_rate_hz/1e6:+.0f} MHz offset)")

    # --- BOM: mmX vs a phased-array camera harness -----------------------
    print("\n== harness economics: 8 cameras ==")
    mmx_node = NodeHardware()
    phased = PhasedArray(8, 24.125e9)
    print(f"  mmX:          {8 * mmx_node.total_cost_usd:7,.0f} USD, "
          f"{8 * mmx_node.total_power_w:5.1f} W")
    print(f"  phased-array: {8 * (phased.cost_usd + 150):7,.0f} USD, "
          f"{8 * (phased.power_consumption_w + 1.0):5.1f} W "
          f"(arrays alone, radios excluded)")


if __name__ == "__main__":
    main()
