"""Smart-home scenario: security cameras streaming HD video to a hub.

The paper's motivating deployment (section 1): low-cost cameras need
8-10 Mbps each, continuously, without loading the WiFi band.  This
example runs the whole mmX stack for a small home:

* the hub (mmX AP) admits each camera over the Bluetooth side channel
  and allocates it an FDM channel sized to its demanded rate,
* each camera streams framed video packets through its ray-traced
  channel with the joint ASK-FSK pipeline,
* a resident walks across the living room, repeatedly blocking
  line-of-sight paths — OTAM keeps the streams alive,
* per-camera energy and battery-life figures come from the hardware
  power models.

Run:  python examples/smart_home.py
"""

from __future__ import annotations

import numpy as np

from repro import MmxAccessPoint, MmxNode, OtamLink, default_lab_room
from repro.constants import HD_VIDEO_BITRATE_BPS
from repro.core.ask_fsk import AskFskConfig
from repro.hardware.power import EnergyModel
from repro.network.init_protocol import InitializationProtocol
from repro.phy.waveform import Waveform, awgn_noise
from repro.sim.geometry import Point, Segment
from repro.sim.mobility import LinearCrossing, WalkingBlocker, los_blocker_between
from repro.sim.placement import Placement
from repro.sim.geometry import angle_of

# A fast sample-level config keeps the demo snappy; the channel math is
# rate-independent, so SNR numbers match a full-rate deployment.
SIM_CONFIG = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)

CAMERA_SPOTS = [
    ("front-door cam", Point(0.6, 5.4)),
    ("living-room cam", Point(3.4, 4.2)),
    ("nursery cam", Point(0.8, 2.6)),
    ("garage cam", Point(3.3, 1.6)),
]


def camera_placement(position: Point, hub: Point) -> Placement:
    """Cameras are installed roughly facing the hub."""
    return Placement(
        node_position=position,
        node_orientation_rad=angle_of(position, hub),
        ap_position=hub,
        ap_orientation_rad=np.pi / 2,
    )


def main() -> None:
    rng = np.random.default_rng(11)
    room = default_lab_room()
    hub_position = Point(2.0, 0.15)

    # --- initialization phase over the Bluetooth side channel ----------
    hub = MmxAccessPoint()
    protocol = InitializationProtocol(hub)
    cameras = []
    print("== initialization phase (once, over the side channel) ==")
    for node_id, (name, position) in enumerate(CAMERA_SPOTS):
        camera = MmxNode(node_id=node_id, config=SIM_CONFIG)
        record = protocol.initialize(camera, HD_VIDEO_BITRATE_BPS,
                                     config=SIM_CONFIG)
        cameras.append((name, camera, camera_placement(position,
                                                       hub_position)))
        print(f"  {name:<16} -> channel {record.center_hz/1e9:.4f} GHz, "
              f"{record.bandwidth_hz/1e6:.0f} MHz wide "
              f"({record.attempts} side-channel attempt(s))")

    # --- transmission phase with a resident walking around --------------
    print("\n== streaming phase (resident crossing the room) ==")
    walker = WalkingBlocker(
        los_blocker_between(Point(0.6, 5.4), hub_position),
        LinearCrossing(Segment(Point(0.4, 2.8), Point(3.6, 2.8)),
                       speed_mps=1.2))
    delivered = {name: 0 for name, _, _ in cameras}
    attempts_per_camera = 8
    for step in range(attempts_per_camera):
        blocker = walker.step(0.5)
        room.clear_blockers()
        room.add_blocker(blocker)
        for name, camera, placement in cameras:
            link = OtamLink(placement=placement, room=room,
                            config=SIM_CONFIG)
            channel = link.channel_response()
            _, clean = camera.transmit(
                f"{name} frame {step}".encode(), channel)
            # Scale into the receiver's dBm-referenced units + noise.
            capture = Waveform(
                clean.samples + awgn_noise(
                    len(clean),
                    10 ** (link.snr_breakdown(channel).noise_dbm / 10.0)
                    * 10 ** (-1.0),  # demod integrates over the bit
                    rng),
                clean.sample_rate_hz)
            packet = hub.try_receive_packet(camera.node_id, capture)
            if packet is not None:
                delivered[name] += 1
    room.clear_blockers()
    for name, count in delivered.items():
        print(f"  {name:<16} delivered {count}/{attempts_per_camera} frames")

    # --- link quality and energy report ---------------------------------
    print("\n== per-camera link and energy report ==")
    print(f"  {'camera':<16} {'dist':>5} {'SNR':>6} {'BER est':>9} "
          f"{'avg power':>10} {'battery(10Wh)':>14}")
    for name, camera, placement in cameras:
        link = OtamLink(placement=placement, room=room, config=SIM_CONFIG)
        breakdown = link.snr_breakdown()
        energy = EnergyModel(
            active_power_w=camera.hardware.total_power_w,
            idle_power_w=0.25,
            bitrate_bps=camera.hardware.max_bitrate_bps)
        avg_power = energy.average_power_w(HD_VIDEO_BITRATE_BPS)
        battery_h = energy.battery_life_hours(10.0, HD_VIDEO_BITRATE_BPS)
        print(f"  {name:<16} {placement.distance_m:4.1f}m "
              f"{breakdown.otam_snr_db:5.1f}dB "
              f"{breakdown.ber_with_otam():9.1e} "
              f"{avg_power:8.2f} W {battery_h:11.1f} h")

    print("\nAll cameras stream HD video with zero beam searching and no "
          "WiFi spectrum used.")


if __name__ == "__main__":
    main()
