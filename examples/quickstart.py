"""Quickstart: one mmX node talks to one AP across a room.

Builds the paper's basic setup — a 6 m x 4 m furnished lab, an AP on one
side, a node at a random pose — then:

1. traces the mmWave channel both node beams see,
2. shows the analytic link budget (with/without OTAM),
3. transmits a packet sample-by-sample through the joint ASK-FSK
   pipeline and decodes it at the AP, and
4. repeats with a person blocking the line-of-sight to show OTAM's
   polarity flip and survival.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    OtamLink,
    Packet,
    PacketCodec,
    PlacementSampler,
    default_lab_room,
)
from repro.sim.mobility import los_blocker_between


def describe_channel(link: OtamLink, label: str) -> None:
    """Print the traced paths and the analytic SNR breakdown."""
    channel = link.channel_response()
    breakdown = link.snr_breakdown(channel)
    print(f"--- {label} ---")
    print(f"traced paths: {len(channel.paths)}")
    for path in channel.paths[:4]:
        print(f"  {path.kind:<12} length {path.length_m:5.2f} m  "
              f"excess {path.excess_loss_db:5.1f} dB")
    print(f"Beam 1 level: {breakdown.beam1_level_dbm:7.1f} dBm")
    print(f"Beam 0 level: {breakdown.beam0_level_dbm:7.1f} dBm")
    print(f"noise floor : {breakdown.noise_dbm:7.1f} dBm (25 MHz)")
    print(f"SNR with OTAM   : {breakdown.otam_snr_db:5.1f} dB  "
          f"(ASK {breakdown.ask_snr_db:.1f} / FSK {breakdown.fsk_snr_db:.1f})")
    print(f"SNR without OTAM: {breakdown.no_otam_snr_db:5.1f} dB")
    print(f"channel inverted (blocked LoS): {breakdown.inverted}")


def send_packet(link: OtamLink, payload: bytes,
                rng: np.random.Generator) -> None:
    """Frame, transmit over the air, decode, and report the outcome."""
    codec = PacketCodec()
    frame = codec.encode(Packet(payload=payload, sequence=0))
    report = link.simulate_transmission(frame, rng=rng)
    print(f"transmitted {report.num_bits} bits, "
          f"bit errors {report.bit_errors}, "
          f"decoded via the {report.demod.branch.upper()} branch"
          f"{' (polarity corrected)' if report.demod.inverted else ''}")
    try:
        packet = codec.decode(report.demod.bits)
        print(f"AP recovered payload: {packet.payload!r}")
    except Exception as exc:  # PacketError
        print(f"frame lost: {exc}")


def main() -> None:
    rng = np.random.default_rng(7)
    room = default_lab_room()
    placement = PlacementSampler(room, rng).sample()
    print(f"node at ({placement.node_position.x:.2f}, "
          f"{placement.node_position.y:.2f}), "
          f"{placement.distance_m:.2f} m from the AP, "
          f"oriented {np.degrees(placement.offset_from_ap_rad):+.0f} deg "
          f"off the AP direction\n")

    link = OtamLink(placement=placement, room=room)
    describe_channel(link, "clear room")
    send_packet(link, b"hello from an mmX node", rng)

    # Now a person stands in the line of sight (the paper's stress case).
    room.add_blocker(los_blocker_between(
        placement.node_position, placement.ap_position, fraction=0.5))
    blocked_link = OtamLink(placement=placement, room=room)
    print()
    describe_channel(blocked_link, "person blocking the LoS")
    send_packet(blocked_link, b"still getting through", rng)
    room.clear_blockers()


if __name__ == "__main__":
    main()
