"""Regenerate every table and figure of the paper's evaluation section.

Runs each experiment module in order and prints its rendered text
table/series — the terminal equivalent of the paper's Figs. 6-13 and
Table 1, plus the design-choice ablations.

Run:  python examples/reproduce_paper.py          (all experiments)
      python examples/reproduce_paper.py fig10    (just one)
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    ablations,
    extensions,
    fig06_tma,
    fig07_vco,
    fig08_patterns,
    fig09_waveforms,
    fig10_snr_map,
    fig11_ber_cdf,
    fig12_range,
    fig13_multinode,
    table1,
)

EXPERIMENTS = {
    "fig06": ("Fig. 6 — TMA direction hashing",
              lambda: fig06_tma.render(fig06_tma.run())),
    "fig07": ("Fig. 7 — VCO tuning curve + microbenchmarks",
              lambda: fig07_vco.render(fig07_vco.run())),
    "fig08": ("Fig. 8 — orthogonal beam patterns",
              lambda: fig08_patterns.render(fig08_patterns.run())),
    "fig09": ("Fig. 9 — joint ASK-FSK decoding",
              lambda: fig09_waveforms.render(fig09_waveforms.run())),
    "fig10": ("Fig. 10 — room SNR heatmaps",
              lambda: fig10_snr_map.render(fig10_snr_map.run())),
    "fig11": ("Fig. 11 — BER CDF",
              lambda: fig11_ber_cdf.render(fig11_ber_cdf.run())),
    "fig12": ("Fig. 12 — SNR vs distance",
              lambda: fig12_range.render(fig12_range.run())),
    "fig13": ("Fig. 13 — multi-node SNR",
              lambda: fig13_multinode.render(fig13_multinode.run())),
    "table1": ("Table 1 — platform comparison",
               lambda: table1.render(table1.run())),
    "ablations": ("Ablations — design choices",
                  lambda: "\n\n".join([
                      ablations.render(ablations.run_orthogonality(),
                                       ablations.run_modulation(),
                                       ablations.run_beam_search()),
                      ablations.render_oracle(
                          ablations.run_oracle_comparison()),
                  ])),
    "extensions": ("Extensions — mobility / scheduling / 60 GHz",
                   lambda: "\n\n".join([
                       extensions.render_mobility(
                           extensions.run_mobility(duration_s=30.0)),
                       extensions.render_scheduler(
                           extensions.run_scheduler(trials=10)),
                       extensions.render_60ghz(extensions.run_60ghz()),
            extensions.render_channel_stats(extensions.run_channel_stats()),
            extensions.render_streaming(extensions.run_streaming()),
                   ])),
}


def main() -> None:
    requested = sys.argv[1:] or list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment(s) {unknown}; "
                         f"choose from {sorted(EXPERIMENTS)}")
    for name in requested:
        title, runner = EXPERIMENTS[name]
        print("=" * 72)
        print(title)
        print("=" * 72)
        start = time.perf_counter()
        print(runner())
        print(f"\n[{name} regenerated in "
              f"{time.perf_counter() - start:.1f} s]\n")


if __name__ == "__main__":
    main()
